//! Per-run pipeline state shared by the O3 stage modules.
//!
//! Everything that lives exactly as long as one [`super::O3Core::run_warm`]
//! call sits here: the reorder buffer, issue queue, split load/store
//! queues, fetch/replay queues, the dependency-completion ring, the
//! writeback event heap, register-pool occupancy and the stall/redirect
//! clocks. The long-lived machine state (caches, TLBs, predictor, BTB)
//! stays on [`super::O3Core`] so it survives across runs and intervals.
//!
//! The in-flight window is stored as **struct-of-arrays ring buffers**
//! ([`RobRing`], [`LsqRing`]) instead of `VecDeque`s of per-op structs:
//! op indices in the ROB are always contiguous (`head_idx..head_idx+len`),
//! so a power-of-two ring indexed by `idx & mask` gives every stage O(1)
//! slot access with no per-op heap allocation, and the per-cycle scans
//! (issue readiness, store forwarding) walk dense primitive arrays.

use crate::cache::ServiceLevel;
use crate::config::CoreConfig;
use belenos_trace::{FnCategory, MicroOp, OpKind};
use std::collections::VecDeque;

/// Minimum dependency-tracking window (producer distances beyond the
/// window are treated as long-retired). The actual ring is sized from the
/// configured ROB in [`done_window_for`], so huge-ROB configurations can
/// never alias in-flight ops.
pub(crate) const DONE_WINDOW: usize = 8192;

/// Dependency-ring size for a configuration: comfortably larger than the
/// ROB (in-flight idx distances span the ROB plus fetch/replay queues),
/// never below the historical 8192 floor. Always a power of two, so ring
/// indexing is a mask, not a modulo.
pub(crate) fn done_window_for(cfg: &CoreConfig) -> usize {
    DONE_WINDOW.max((cfg.rob_entries.saturating_mul(4)).next_power_of_two())
}

/// Deadlock detector: cycles without a commit before the engine reports a
/// wedged pipeline (a simulator bug, not a workload condition).
pub(super) const STALL_LIMIT: u64 = 1_000_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum OpState {
    Waiting,
    Issued,
    Done,
}

/// In-flight op storage: one idx-keyed struct-of-arrays ring holding the
/// immutable fields of every op between fetch and commit.
///
/// Live trace indices (ROB occupants, the fetch queue and the replay
/// range) are contiguous — `[rob.head_idx, next_idx)` — and their count
/// is bounded by ROB capacity plus fetch-queue capacity (every live op
/// sits in exactly one of the three containers, and squash only
/// redistributes them). The ring is sized at twice that bound, so slot
/// lookup is `idx & mask` with no aliasing.
///
/// Each op's fields are written exactly once, when fetch first pulls it
/// from the trace; every later stage (dispatch hazards, issue address
/// rules, commit retirement, squash replay) reads the same slot instead
/// of copying a `MicroOp` from queue to queue.
pub(super) struct OpBuf {
    mask: u64,
    pub(super) kind: Vec<OpKind>,
    pub(super) pc: Vec<u32>,
    pub(super) addr: Vec<u64>,
    pub(super) size: Vec<u8>,
    pub(super) taken: Vec<bool>,
    pub(super) target: Vec<u32>,
    pub(super) dep1: Vec<u32>,
    pub(super) dep2: Vec<u32>,
    pub(super) cat: Vec<FnCategory>,
}

impl OpBuf {
    fn new(rob_entries: usize, fetchq_cap: usize) -> Self {
        let cap = ((rob_entries.next_power_of_two() + fetchq_cap) * 2)
            .next_power_of_two()
            .max(2);
        OpBuf {
            mask: (cap - 1) as u64,
            kind: vec![OpKind::IntAlu; cap],
            pc: vec![0; cap],
            addr: vec![0; cap],
            size: vec![0; cap],
            taken: vec![false; cap],
            target: vec![0; cap],
            dep1: vec![0; cap],
            dep2: vec![0; cap],
            cat: vec![FnCategory::Internal; cap],
        }
    }

    /// Ring slot for a trace index.
    #[inline]
    pub(super) fn slot(&self, idx: u64) -> usize {
        (idx & self.mask) as usize
    }

    /// Files the op fetched at trace index `idx`.
    #[inline]
    pub(super) fn insert(&mut self, idx: u64, op: &MicroOp) {
        let s = self.slot(idx);
        self.kind[s] = op.kind;
        self.pc[s] = op.pc;
        self.addr[s] = op.addr;
        self.size[s] = op.size;
        self.taken[s] = op.taken;
        self.target[s] = op.target;
        self.dep1[s] = op.dep1;
        self.dep2[s] = op.dep2;
        self.cat[s] = op.cat;
    }

    /// Reconstructs the full micro-op stored at a live trace index.
    pub(super) fn get(&self, idx: u64) -> MicroOp {
        let s = self.slot(idx);
        MicroOp {
            kind: self.kind[s],
            pc: self.pc[s],
            addr: self.addr[s],
            size: self.size[s],
            taken: self.taken[s],
            target: self.target[s],
            dep1: self.dep1[s],
            dep2: self.dep2[s],
            cat: self.cat[s],
        }
    }
}

/// The reorder buffer as a struct-of-arrays ring.
///
/// ROB occupants always carry contiguous trace indices (dispatch pushes
/// in index order; squash pops from the back; commit pops from the
/// front), so slot lookup is `idx & mask` with no position arithmetic
/// and no per-entry allocation. Only dispatch-time state lives here —
/// the op's immutable fields stay in the fetch-time [`OpBuf`] and are
/// never copied into the ROB.
pub(super) struct RobRing {
    mask: u64,
    /// Trace index of the oldest occupant (meaningful when `len > 0`;
    /// after a pop that empties the ring it stays one past the last
    /// popped op until the next push re-anchors it).
    pub(super) head_idx: u64,
    len: usize,
    pub(super) dispatch_id: Vec<u64>,
    pub(super) state: Vec<OpState>,
    /// Branch fetched with a wrong direction prediction.
    pub(super) mispredicted: Vec<bool>,
    /// Deepest level that serviced a memory op (TMA classification;
    /// kept as a parallel array alongside the other per-op state).
    pub(super) mem_level: Vec<Option<ServiceLevel>>,
    /// Physical load/store-queue slot of a memory op (`u32::MAX`
    /// otherwise), recorded at dispatch so issue and writeback reach
    /// the LSQ entry directly instead of binary-searching by index.
    pub(super) lsq_slot: Vec<u32>,
}

impl RobRing {
    pub(super) fn new(rob_entries: usize) -> Self {
        let cap = rob_entries.next_power_of_two().max(2);
        RobRing {
            mask: (cap - 1) as u64,
            head_idx: 0,
            len: 0,
            dispatch_id: vec![0; cap],
            state: vec![OpState::Waiting; cap],
            mispredicted: vec![false; cap],
            mem_level: vec![None; cap],
            lsq_slot: vec![u32::MAX; cap],
        }
    }

    /// Empties the ring (just-built state). Slot contents need no
    /// clearing: `push_back` writes every field of a slot before any
    /// stage reads it, and reads are bounded by `len`.
    pub(super) fn reset(&mut self) {
        self.head_idx = 0;
        self.len = 0;
    }

    pub(super) fn len(&self) -> usize {
        self.len
    }

    pub(super) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ring slot for a trace index.
    #[inline]
    pub(super) fn slot(&self, idx: u64) -> usize {
        (idx & self.mask) as usize
    }

    /// Trace index of the oldest occupant, or 0 when empty (the issue
    /// stage's neutral base; it never reads slots of an empty ring).
    pub(super) fn front_idx_or_zero(&self) -> u64 {
        if self.len == 0 {
            0
        } else {
            self.head_idx
        }
    }

    pub(super) fn push_back(&mut self, idx: u64, dispatch_id: u64, mispred: bool, lsq_slot: u32) {
        if self.len == 0 {
            self.head_idx = idx;
        }
        debug_assert_eq!(idx, self.head_idx + self.len as u64, "rob idx contiguity");
        debug_assert!(self.len <= self.mask as usize, "rob ring overflow");
        let s = self.slot(idx);
        self.dispatch_id[s] = dispatch_id;
        self.state[s] = OpState::Waiting;
        self.mispredicted[s] = mispred;
        self.mem_level[s] = None;
        self.lsq_slot[s] = lsq_slot;
        self.len += 1;
    }

    /// Drops the oldest occupant (commit).
    pub(super) fn pop_front(&mut self) {
        debug_assert!(self.len > 0);
        self.head_idx += 1;
        self.len -= 1;
    }

    /// Removes the youngest occupant (squash), returning its index.
    pub(super) fn pop_back(&mut self) -> u64 {
        debug_assert!(self.len > 0);
        self.len -= 1;
        self.head_idx + self.len as u64
    }
}

/// A load or store queue as a struct-of-arrays ring.
///
/// Entries arrive in trace-index order, retire from the front at commit
/// and truncate from the back on a squash, so the ring stays sorted by
/// index. `inflight` maintains the count of issued-but-incomplete
/// entries, replacing the old per-cycle `iter().any(...)` scan in the
/// commit stage's memory-bound classification.
pub(super) struct LsqRing {
    mask: usize,
    start: usize,
    len: usize,
    idx: Vec<u64>,
    addr: Vec<u64>,
    issued: Vec<bool>,
    done: Vec<bool>,
    inflight: usize,
    /// Counting filter over the 8-byte blocks of *issued* entries. A
    /// zero bucket proves no issued entry touches that block, letting
    /// `forward_from` skip its scan — the overwhelmingly common case
    /// for loads with no older matching store.
    filter: Vec<u16>,
}

/// Bucket count of the issued-address counting filter (2 KiB of u16s).
const LSQ_FILTER_BUCKETS: usize = 1024;

/// Filter bucket for an address's 8-byte block (Fibonacci hash).
#[inline]
fn lsq_filter_bucket(addr: u64) -> usize {
    (((addr >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 54) as usize
}

impl LsqRing {
    pub(super) fn new(entries: usize) -> Self {
        let cap = entries.next_power_of_two().max(2);
        LsqRing {
            mask: cap - 1,
            start: 0,
            len: 0,
            idx: vec![0; cap],
            addr: vec![0; cap],
            issued: vec![false; cap],
            done: vec![false; cap],
            inflight: 0,
            filter: vec![0; LSQ_FILTER_BUCKETS],
        }
    }

    pub(super) fn len(&self) -> usize {
        self.len
    }

    /// Empties the queue (just-built state); entry slots are fully
    /// rewritten by `push_back` before use.
    pub(super) fn reset(&mut self) {
        self.start = 0;
        self.len = 0;
        self.inflight = 0;
        self.filter.fill(0);
    }

    #[inline]
    fn slot(&self, i: usize) -> usize {
        (self.start + i) & self.mask
    }

    /// Appends an entry and returns its physical slot, which stays
    /// valid for the entry's whole lifetime (the ring only moves
    /// `start`/`len`, never entry contents).
    pub(super) fn push_back(&mut self, idx: u64, addr: u64) -> u32 {
        debug_assert!(self.len <= self.mask, "lsq ring overflow");
        let s = self.slot(self.len);
        self.idx[s] = idx;
        self.addr[s] = addr;
        self.issued[s] = false;
        self.done[s] = false;
        self.len += 1;
        s as u32
    }

    /// Pops the oldest entry, returning its trace index.
    pub(super) fn pop_front(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let s = self.slot(0);
        if self.issued[s] {
            if !self.done[s] {
                self.inflight -= 1;
            }
            self.filter[lsq_filter_bucket(self.addr[s])] -= 1;
        }
        self.start = (self.start + 1) & self.mask;
        self.len -= 1;
        Some(self.idx[s])
    }

    /// Logical position of the first entry with trace index >= `idx`.
    /// The live window is trace-order sorted (push_back appends rising
    /// indices; truncation drops a sorted suffix), so this is a binary
    /// search.
    #[inline]
    fn lower_bound(&self, idx: u64) -> usize {
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.idx[self.slot(mid)] < idx {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn find(&self, idx: u64) -> Option<usize> {
        let pos = self.lower_bound(idx);
        if pos < self.len {
            let s = self.slot(pos);
            if self.idx[s] == idx {
                return Some(s);
            }
        }
        None
    }

    /// Physical slot for a live entry given the slot hint the ROB
    /// recorded at dispatch. The hint is authoritative while the entry
    /// lives (slots never move); the identity check catches a stale
    /// hint after squash-and-replay and falls back to the search.
    #[inline]
    fn slot_for(&self, idx: u64, hint: u32) -> Option<usize> {
        let s = hint as usize;
        if s <= self.mask && self.idx[s] == idx {
            let pos = (s.wrapping_sub(self.start)) & self.mask;
            if pos < self.len {
                return Some(s);
            }
        }
        self.find(idx)
    }

    /// Marks an entry issued with its resolved address.
    pub(super) fn mark_issued(&mut self, idx: u64, addr: u64, hint: u32) {
        if let Some(s) = self.slot_for(idx, hint) {
            if !self.issued[s] && !self.done[s] {
                self.inflight += 1;
            }
            if self.issued[s] {
                self.filter[lsq_filter_bucket(self.addr[s])] -= 1;
            }
            self.issued[s] = true;
            self.addr[s] = addr;
            self.filter[lsq_filter_bucket(addr)] += 1;
        }
    }

    /// Marks an entry complete (loads at writeback).
    pub(super) fn mark_done(&mut self, idx: u64, hint: u32) {
        if let Some(s) = self.slot_for(idx, hint) {
            if self.issued[s] && !self.done[s] {
                self.inflight -= 1;
            }
            self.done[s] = true;
        }
    }

    /// True when any entry has issued but not completed (the commit
    /// stage's memory-bound signal).
    pub(super) fn has_inflight(&self) -> bool {
        self.inflight > 0
    }

    /// Youngest issued store older than `load_idx` to the same 8-byte
    /// block: `Some((store_idx, store_done))`.
    pub(super) fn forward_from(&self, load_idx: u64, load_addr: u64) -> Option<(u64, bool)> {
        // A zero filter bucket proves no issued store touches the
        // load's block — skip the scan outright (the common case).
        if self.filter[lsq_filter_bucket(load_addr)] == 0 {
            return None;
        }
        // Only entries older than the load can forward; start the
        // youngest-first scan just below its sorted position.
        for i in (0..self.lower_bound(load_idx)).rev() {
            let s = self.slot(i);
            if self.issued[s] && (self.addr[s] >> 3) == (load_addr >> 3) {
                return Some((self.idx[s], self.done[s]));
            }
        }
        None
    }

    /// Drops every entry younger than `keep_max_idx` (squash). Entries
    /// are index-sorted, so this is truncation from the back.
    pub(super) fn truncate_younger(&mut self, keep_max_idx: u64) {
        while self.len > 0 {
            let s = self.slot(self.len - 1);
            if self.idx[s] <= keep_max_idx {
                break;
            }
            if self.issued[s] {
                if !self.done[s] {
                    self.inflight -= 1;
                }
                self.filter[lsq_filter_bucket(self.addr[s])] -= 1;
            }
            self.len -= 1;
        }
    }
}

/// One issue-queue entry: the op's trace index, its producers'
/// *resolved* trace indices (`u64::MAX` = known ready), and its
/// functional-unit class. Producers are resolved once at dispatch and
/// memoized to the ready sentinel when first observed complete, which
/// is sound because readiness is monotone while the entry waits — a
/// producer is strictly older than its consumer, so no squash that
/// spares the consumer can undo the producer, and the done ring cannot
/// recycle the producer's slot while the consumer is still in flight
/// (the window is sized ≥ 4x the ROB).
#[derive(Debug, Clone, Copy)]
pub(super) struct IqEntry {
    pub(super) idx: u64,
    pub(super) dep1: u64,
    pub(super) dep2: u64,
    /// Execution latency in cycles, precomputed at dispatch so the
    /// issue scan never re-derives it from the op kind (fits the
    /// struct's padding; every real latency is far below 2^32).
    pub(super) lat: u32,
    /// Functional-unit class (index into `fu_counts`).
    pub(super) fu: u8,
}

const NO_NODE: u32 = u32::MAX;

/// Waiting half of the issue queue: entries whose producers have not
/// completed, parked on intrusive per-producer lists keyed by the
/// producer's done-ring slot (in-flight indices are always less than a
/// window apart, so slots are collision-free). The writeback stage
/// wakes a producer's list in O(waiters) instead of the issue stage
/// rescanning every waiting entry every cycle. An entry waits on
/// exactly one pending producer at a time; if its second producer is
/// still pending at wake time it re-parks on that one.
pub(super) struct WaitPool {
    /// Per done-ring slot: first waiter node, or `NO_NODE`.
    head: Vec<u32>,
    next: Vec<u32>,
    prev: Vec<u32>,
    /// Producer slot each node is parked under (to fix `head` on unlink).
    pslot: Vec<u32>,
    entry: Vec<IqEntry>,
    occupied: Vec<bool>,
    free: Vec<u32>,
    count: usize,
}

impl WaitPool {
    fn new(done_window: usize, iq_entries: usize) -> Self {
        WaitPool {
            head: vec![NO_NODE; done_window],
            next: Vec::with_capacity(iq_entries),
            prev: Vec::with_capacity(iq_entries),
            pslot: Vec::with_capacity(iq_entries),
            entry: Vec::with_capacity(iq_entries),
            occupied: Vec::with_capacity(iq_entries),
            free: Vec::new(),
            count: 0,
        }
    }

    pub(super) fn len(&self) -> usize {
        self.count
    }

    /// Unparks everything and clears all lists (just-built state). The
    /// slab vectors are truncated, not freed, so their capacity stays
    /// warm and node allocation order replays exactly as on a fresh
    /// pool.
    fn reset(&mut self) {
        self.head.fill(NO_NODE);
        self.next.clear();
        self.prev.clear();
        self.pslot.clear();
        self.entry.clear();
        self.occupied.clear();
        self.free.clear();
        self.count = 0;
    }

    /// Parks `e` on the waiter list of the producer occupying `pslot`.
    fn park(&mut self, pslot: usize, e: IqEntry) {
        let node = match self.free.pop() {
            Some(n) => n as usize,
            None => {
                self.next.push(NO_NODE);
                self.prev.push(NO_NODE);
                self.pslot.push(0);
                self.entry.push(e);
                self.occupied.push(false);
                self.next.len() - 1
            }
        };
        let old = self.head[pslot];
        self.next[node] = old;
        self.prev[node] = NO_NODE;
        self.pslot[node] = pslot as u32;
        self.entry[node] = e;
        self.occupied[node] = true;
        if old != NO_NODE {
            self.prev[old as usize] = node as u32;
        }
        self.head[pslot] = node as u32;
        self.count += 1;
    }

    fn unlink(&mut self, node: usize) -> IqEntry {
        let (nx, pv) = (self.next[node], self.prev[node]);
        if pv == NO_NODE {
            self.head[self.pslot[node] as usize] = nx;
        } else {
            self.next[pv as usize] = nx;
        }
        if nx != NO_NODE {
            self.prev[nx as usize] = pv;
        }
        self.occupied[node] = false;
        self.free.push(node as u32);
        self.count -= 1;
        self.entry[node]
    }

    /// Drains the waiter list of producer slot `pslot` into `out`.
    fn drain_slot(&mut self, pslot: usize, out: &mut Vec<IqEntry>) {
        let mut node = self.head[pslot];
        self.head[pslot] = NO_NODE;
        while node != NO_NODE {
            let n = node as usize;
            node = self.next[n];
            self.occupied[n] = false;
            self.free.push(n as u32);
            self.count -= 1;
            out.push(self.entry[n]);
        }
    }

    /// Removes every waiter younger than `keep_max_idx` (squash). The
    /// node slab is bounded by the issue-queue size, so this sweeps at
    /// most `iq_entries` slots however large the done window is.
    fn squash_younger(&mut self, keep_max_idx: u64) {
        for node in 0..self.occupied.len() {
            if self.occupied[node] && self.entry[node].idx > keep_max_idx {
                self.unlink(node);
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum FetchBlock {
    None,
    ICache,
    ITlb,
    Squash,
    QueueFull,
}

/// Wheel size in cycles. Worst-case completion delta is a TLB walk
/// plus a DRAM access behind a bandwidth-saturated channel — a few
/// hundred cycles; 2048 leaves generous slack, and anything farther
/// out parks on the overflow list.
const EVENT_WHEEL_SIZE: usize = 2048;
const EVENT_WHEEL_WORDS: usize = EVENT_WHEEL_SIZE / 64;

/// Completion-event queue: a timing wheel with one bucket per future
/// cycle, an occupancy bitmap, and a sorted due list.
///
/// Events pack into one `u128` as
/// `(cycle << 64) | (op idx << 32) | dispatch epoch`, ordering
/// lexicographically exactly like the former binary heap. Same-cycle
/// events always share a bucket (live wheel entries span less than one
/// wheel turn), so sorting a bucket when it comes due reproduces the
/// heap's pop order event-for-event — cycle, then op idx, then epoch —
/// which the digest pins observe through the writeback-width cap.
/// Pushes are O(1) (bucket append plus a bitmap bit) instead of a
/// sift-up, and fast-forwarded idle gaps cost a few bitmap word scans
/// instead of per-event compares.
pub(super) struct EventHeap {
    buckets: Vec<Vec<u128>>,
    bitmap: [u64; EVENT_WHEEL_WORDS],
    /// Next cycle not yet harvested; every wheel entry's time is in
    /// `[cursor, cursor + EVENT_WHEEL_SIZE)`.
    cursor: u64,
    /// Live events on the wheel (excludes due and overflow).
    wheel_len: usize,
    /// Harvested events in pop order; `due[due_head..]` is pending.
    due: Vec<u128>,
    due_head: usize,
    /// Events beyond the wheel horizon (DRAM queueing is not statically
    /// bounded). Expected to stay empty in practice; folded back as the
    /// cursor advances.
    overflow: Vec<u128>,
    /// Earliest time of any wheel or overflow event (`u64::MAX` when
    /// both are empty): the cached lower bound that lets the per-cycle
    /// pop skip the bitmap scan entirely until an event actually comes
    /// due. Maintained as a running min on push; recomputed by harvest.
    next_pending: u64,
}

impl EventHeap {
    fn new(capacity: usize) -> Self {
        EventHeap {
            buckets: (0..EVENT_WHEEL_SIZE).map(|_| Vec::new()).collect(),
            bitmap: [0; EVENT_WHEEL_WORDS],
            cursor: 0,
            wheel_len: 0,
            due: Vec::with_capacity(capacity),
            due_head: 0,
            overflow: Vec::new(),
            next_pending: u64::MAX,
        }
    }

    /// Files a completion for op `idx` (epoch `did`) at cycle `t`.
    /// Indices and epochs are bounded by the trace-prefix cap (far
    /// below 2^32), so the packing is lossless. Issue always schedules
    /// strictly past `now`, and writeback harvests due events before
    /// issue runs, so `t >= cursor` holds — the wheel mapping is
    /// unambiguous.
    #[inline]
    pub(super) fn push(&mut self, t: u64, idx: u64, did: u64) {
        debug_assert!(idx < (1 << 32) && did < (1 << 32));
        debug_assert!(t >= self.cursor);
        let e = ((t as u128) << 64) | ((idx as u128) << 32) | did as u128;
        if self.wheel_len == 0 && self.overflow.is_empty() {
            // Nothing constrains the cursor: re-home it so a long
            // harvest-free stretch (the cursor lags `now` while no event
            // is due) cannot push fresh events off the wheel horizon.
            self.cursor = self
                .cursor
                .max(t.saturating_sub(EVENT_WHEEL_SIZE as u64 - 1));
        }
        self.next_pending = self.next_pending.min(t);
        if t - self.cursor >= EVENT_WHEEL_SIZE as u64 {
            self.overflow.push(e);
            return;
        }
        let b = (t as usize) & (EVENT_WHEEL_SIZE - 1);
        self.buckets[b].push(e);
        self.bitmap[b >> 6] |= 1 << (b & 63);
        self.wheel_len += 1;
    }

    /// Pops the earliest event if it is due at or before `now`,
    /// returning `(op idx, dispatch epoch)`.
    ///
    /// Pending due entries always precede everything still on the wheel
    /// (their times are below the cursor, wheel times are at or above
    /// it), so the due list serves first and the wheel is only scanned
    /// when the cached `next_pending` bound says an event has actually
    /// come due — the common dead cycle costs two compares.
    #[inline]
    pub(super) fn pop_due(&mut self, now: u64) -> Option<(u64, u64)> {
        if self.due_head == self.due.len() {
            if self.next_pending > now {
                return None;
            }
            self.harvest(now);
            if self.due_head == self.due.len() {
                return None;
            }
        }
        let e = self.due[self.due_head];
        self.due_head += 1;
        Some(((e >> 32) as u32 as u64, e as u32 as u64))
    }

    /// Moves every bucket due at or before `now` onto the due list,
    /// sorting each so packed order (cycle, idx, epoch) is preserved,
    /// then folds in any overflow events that came within the horizon,
    /// and refreshes the cached `next_pending` bound.
    fn harvest(&mut self, now: u64) {
        self.next_pending = u64::MAX;
        while self.wheel_len > 0 {
            let Some(t) = self.scan_wheel(self.cursor) else {
                break;
            };
            if t > now {
                self.cursor = now + 1;
                self.next_pending = t;
                break;
            }
            let b = (t as usize) & (EVENT_WHEEL_SIZE - 1);
            self.bitmap[b >> 6] &= !(1u64 << (b & 63));
            if self.due_head == self.due.len() {
                self.due.clear();
                self.due_head = 0;
            }
            let mut bucket = std::mem::take(&mut self.buckets[b]);
            bucket.sort_unstable();
            self.wheel_len -= bucket.len();
            self.due.extend_from_slice(&bucket);
            bucket.clear();
            self.buckets[b] = bucket;
            self.cursor = t + 1;
        }
        if self.cursor <= now {
            self.cursor = now + 1;
        }
        if !self.overflow.is_empty() {
            // Folding can re-home overflow events onto the wheel below
            // the bound cached above: recompute from scratch (cold — the
            // horizon exceeds every realistic completion latency).
            self.fold_overflow(now);
            self.next_pending = self.scan_wheel(self.cursor).unwrap_or(u64::MAX);
            for &e in &self.overflow {
                self.next_pending = self.next_pending.min((e >> 64) as u64);
            }
        }
    }

    /// Re-homes overflow events that now fit on the wheel, and merges
    /// any already due into the pending due list. Cold: the horizon
    /// exceeds every realistic completion latency.
    #[cold]
    fn fold_overflow(&mut self, now: u64) {
        let mut i = 0;
        let mut merged = false;
        while i < self.overflow.len() {
            let e = self.overflow[i];
            let t = (e >> 64) as u64;
            if t <= now {
                self.overflow.swap_remove(i);
                self.due.push(e);
                merged = true;
            } else if t - self.cursor < EVENT_WHEEL_SIZE as u64 {
                self.overflow.swap_remove(i);
                let b = (t as usize) & (EVENT_WHEEL_SIZE - 1);
                self.buckets[b].push(e);
                self.bitmap[b >> 6] |= 1 << (b & 63);
                self.wheel_len += 1;
            } else {
                i += 1;
            }
        }
        if merged {
            let head = self.due_head;
            self.due[head..].sort_unstable();
        }
    }

    /// Earliest event time at or after `from` on the wheel, found by
    /// scanning the occupancy bitmap a word at a time (wrapping once).
    fn scan_wheel(&self, from: u64) -> Option<u64> {
        if self.wheel_len == 0 {
            return None;
        }
        let mask = EVENT_WHEEL_SIZE as u64 - 1;
        let start = (from & mask) as usize;
        let sw = start >> 6;
        let mut w = sw;
        let mut bits = self.bitmap[sw] & (!0u64 << (start & 63));
        loop {
            if bits != 0 {
                let pos = ((w << 6) | bits.trailing_zeros() as usize) as u64;
                return Some(from + (pos.wrapping_sub(from) & mask));
            }
            w = (w + 1) & (EVENT_WHEEL_WORDS - 1);
            if w == sw {
                // Full circle: only the start word's low bits (times
                // just before the horizon wraps) remain unexamined.
                bits = self.bitmap[sw] & !(!0u64 << (start & 63));
                if bits != 0 {
                    let pos = ((sw << 6) | bits.trailing_zeros() as usize) as u64;
                    return Some(from + (pos.wrapping_sub(from) & mask));
                }
                return None;
            }
            bits = self.bitmap[w];
        }
    }

    /// Cycle of the earliest pending event (the fast-forward's wake
    /// candidate). O(1): the due list is sorted and `next_pending`
    /// already bounds the wheel and overflow exactly.
    pub(super) fn next_time(&self) -> Option<u64> {
        let mut best = self.next_pending;
        if self.due_head < self.due.len() {
            best = best.min((self.due[self.due_head] >> 64) as u64);
        }
        (best != u64::MAX).then_some(best)
    }

    /// Drops all events, keeping bucket allocations. The occupancy
    /// bitmap names exactly the non-empty buckets, so a reset touches
    /// only those.
    fn clear(&mut self) {
        for (wi, word) in self.bitmap.iter_mut().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let b = (wi << 6) | bits.trailing_zeros() as usize;
                self.buckets[b].clear();
                bits &= bits - 1;
            }
            *word = 0;
        }
        self.wheel_len = 0;
        self.cursor = 0;
        self.due.clear();
        self.due_head = 0;
        self.overflow.clear();
        self.next_pending = u64::MAX;
    }
}

/// The per-run pipeline state; one instance per `run_warm` invocation.
pub(super) struct Pipeline {
    /// Effective front-end width: decode/rename/dispatch bottleneck.
    pub(super) fe_width: usize,
    pub(super) fetchq_cap: usize,
    pub(super) now: u64,
    pub(super) next_idx: u64,
    pub(super) dispatch_counter: u64,
    pub(super) rob: RobRing,
    /// Ready half of the issue queue: entries whose producers have all
    /// completed, sorted by trace index (dispatch appends in order;
    /// wakeups insert sorted), compacted in place each cycle.
    pub(super) ready_q: Vec<IqEntry>,
    /// Per functional-unit-class population of `ready_q`, letting the
    /// issue scan stop as soon as every represented class is saturated.
    pub(super) ready_fu_count: [usize; 5],
    /// Waiting half of the issue queue (see [`WaitPool`]).
    pub(super) waiters: WaitPool,
    /// Scratch buffer for draining waiter lists (reused, never freed).
    wake_buf: Vec<IqEntry>,
    /// Immutable fields of every live op, written once when the op is
    /// first read from the trace (see [`OpBuf`]).
    pub(super) ops: OpBuf,
    pub(super) lq: LsqRing,
    pub(super) sq: LsqRing,
    /// Fetched, not yet dispatched: (idx, predicted-taken). The op's
    /// fields live in `ops` — nothing is copied through the queue.
    pub(super) fetchq: VecDeque<(u64, bool)>,
    /// The replay queue as a cursor: ops with indices in
    /// `[replay_next, next_idx)` have been read from the trace (their
    /// fields are in `ops`) but await (re-)fetch. Live ops are
    /// contiguous in trace order — ROB, then fetch queue, then this
    /// range, then the unread trace — so a squash at branch `b` makes
    /// the correct path exactly `[b + 1, next_idx)`: one cursor store
    /// replaces the old wrong-path/refetch `VecDeque` shuffle.
    pub(super) replay_next: u64,
    pub(super) done_window: u64,
    /// `done_window - 1`; the window is always a power of two.
    pub(super) done_mask: u64,
    pub(super) done_ring: Vec<bool>,
    /// Writeback events: (completion cycle, op idx, dispatch epoch).
    pub(super) events: EventHeap,
    pub(super) serializers: VecDeque<u64>,
    pub(super) int_regs_used: usize,
    pub(super) fp_regs_used: usize,
    pub(super) int_pool: usize,
    pub(super) fp_pool: usize,
    pub(super) fetch_stall_until: u64,
    pub(super) fetch_block: FetchBlock,
    pub(super) squash_recovery_until: u64,
    pub(super) icache_pending_until: u64,
    pub(super) cur_fetch_line: u64,
    pub(super) fpdiv_busy_until: u64,
    pub(super) last_commit_cycle: u64,
    /// Peak ROB-ring occupancy over the run (telemetry).
    pub(super) rob_peak: usize,
    /// Cycles the event-driven fast-forward skipped (telemetry).
    pub(super) ff_cycles_skipped: u64,
}

impl Pipeline {
    pub(super) fn new(cfg: &CoreConfig) -> Self {
        let fe_width = cfg
            .decode_width
            .min(cfg.rename_width)
            .min(cfg.dispatch_width);
        let fetchq_cap = (cfg.fetch_width * cfg.frontend_depth as usize).max(16);
        let done_window = done_window_for(cfg) as u64;
        Pipeline {
            fe_width,
            fetchq_cap,
            now: 0,
            next_idx: 0,
            dispatch_counter: 0,
            rob: RobRing::new(cfg.rob_entries),
            ready_q: Vec::with_capacity(cfg.iq_entries),
            ready_fu_count: [0; 5],
            waiters: WaitPool::new(done_window as usize, cfg.iq_entries),
            wake_buf: Vec::new(),
            ops: OpBuf::new(cfg.rob_entries, fetchq_cap),
            lq: LsqRing::new(cfg.lq_entries),
            sq: LsqRing::new(cfg.sq_entries),
            fetchq: VecDeque::with_capacity(fetchq_cap),
            replay_next: 0,
            done_window,
            done_mask: done_window - 1,
            done_ring: vec![false; done_window as usize],
            events: EventHeap::new(cfg.rob_entries),
            serializers: VecDeque::new(),
            int_regs_used: 0,
            fp_regs_used: 0,
            int_pool: cfg.int_regs.saturating_sub(32),
            fp_pool: cfg.fp_regs.saturating_sub(32),
            fetch_stall_until: 0,
            fetch_block: FetchBlock::None,
            squash_recovery_until: 0,
            icache_pending_until: 0,
            cur_fetch_line: u64::MAX,
            fpdiv_busy_until: 0,
            last_commit_cycle: 0,
            rob_peak: 0,
            ff_cycles_skipped: 0,
        }
    }

    /// Returns the pipeline to the state [`Pipeline::new`] would build
    /// for the same configuration, reusing every allocation. The run
    /// driver resets a retained scratch pipeline instead of building a
    /// fresh one, which removes the dominant per-run cost the profiler
    /// found: re-allocating (and re-page-faulting) the ring buffers on
    /// every simulation call. Sound only for an unchanged `CoreConfig` —
    /// the owning core's configuration is fixed at construction.
    pub(super) fn reset(&mut self) {
        self.now = 0;
        self.next_idx = 0;
        self.dispatch_counter = 0;
        self.rob.reset();
        self.ready_q.clear();
        self.ready_fu_count = [0; 5];
        self.waiters.reset();
        self.wake_buf.clear();
        // `ops` needs no clearing: a slot is always written (at the
        // trace read) before any stage reads it, and the capacity
        // exceeds the maximum live-index span.
        self.lq.reset();
        self.sq.reset();
        self.fetchq.clear();
        self.replay_next = 0;
        self.done_ring.fill(false);
        self.events.clear();
        self.serializers.clear();
        self.int_regs_used = 0;
        self.fp_regs_used = 0;
        self.fetch_stall_until = 0;
        self.fetch_block = FetchBlock::None;
        self.squash_recovery_until = 0;
        self.icache_pending_until = 0;
        self.cur_fetch_line = u64::MAX;
        self.fpdiv_busy_until = 0;
        self.last_commit_cycle = 0;
        self.rob_peak = 0;
        self.ff_cycles_skipped = 0;
    }

    /// Resolves a dependency distance to the producer's trace index, or
    /// the always-ready sentinel (`u64::MAX`) when there is no producer
    /// to wait for: distance zero, a producer preceding the trace
    /// start, or one beyond the dependency window (long retired).
    pub(super) fn resolve_dep(&self, idx: u64, dep: u32) -> u64 {
        if dep == 0 {
            return u64::MAX;
        }
        let dep = dep as u64;
        if dep > idx || dep >= self.done_window {
            return u64::MAX;
        }
        idx - dep
    }

    /// True when the resolved producer `*dep` has completed or retired;
    /// memoizes a positive answer into the ready sentinel so later
    /// cycles skip the done-ring load (readiness is monotone — see
    /// [`IqEntry`]).
    #[inline]
    pub(super) fn dep_ready(&self, dep: &mut u64, head_idx: u64) -> bool {
        let d = *dep;
        if d == u64::MAX {
            return true;
        }
        if d < head_idx || self.done_ring[(d & self.done_mask) as usize] {
            *dep = u64::MAX;
            return true;
        }
        false
    }

    /// Total issue-queue occupancy (ready + waiting), gating dispatch.
    pub(super) fn iq_len(&self) -> usize {
        self.ready_q.len() + self.waiters.len()
    }

    /// Inserts a dep-satisfied entry into the ready queue, keeping it
    /// sorted by trace index. Dispatch-time entries always append (the
    /// newest index); only wakeups pay the sorted insert.
    fn ready_insert(&mut self, e: IqEntry) {
        self.ready_fu_count[e.fu as usize] += 1;
        if self.ready_q.last().is_none_or(|l| l.idx < e.idx) {
            self.ready_q.push(e);
            return;
        }
        let pos = self.ready_q.partition_point(|x| x.idx < e.idx);
        self.ready_q.insert(pos, e);
    }

    /// Routes a new or woken entry: to the ready queue when both
    /// producers have completed, else parked on the first still-pending
    /// producer's waiter list.
    pub(super) fn classify(&mut self, mut e: IqEntry) {
        let head_idx = self.rob.head_idx;
        if !self.dep_ready(&mut e.dep1, head_idx) {
            let pslot = (e.dep1 & self.done_mask) as usize;
            self.waiters.park(pslot, e);
        } else if !self.dep_ready(&mut e.dep2, head_idx) {
            let pslot = (e.dep2 & self.done_mask) as usize;
            self.waiters.park(pslot, e);
        } else {
            self.ready_insert(e);
        }
    }

    /// Wakes every entry parked on completed producer `idx`,
    /// re-classifying each (an entry whose other producer is still
    /// pending re-parks on that one). Called by writeback right after
    /// the done ring is set.
    pub(super) fn wake_waiters(&mut self, idx: u64) {
        let pslot = (idx & self.done_mask) as usize;
        let mut buf = std::mem::take(&mut self.wake_buf);
        buf.clear();
        self.waiters.drain_slot(pslot, &mut buf);
        for e in buf.drain(..) {
            self.classify(e);
        }
        self.wake_buf = buf;
    }

    /// Drops every issue-queue entry younger than `keep_max_idx`
    /// (squash), from both halves.
    pub(super) fn iq_squash_younger(&mut self, keep_max_idx: u64) {
        while let Some(last) = self.ready_q.last() {
            if last.idx <= keep_max_idx {
                break;
            }
            self.ready_fu_count[last.fu as usize] -= 1;
            self.ready_q.pop();
        }
        self.waiters.squash_younger(keep_max_idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rob_ring_roundtrips_and_pops_both_ends() {
        let mut rob = RobRing::new(4);
        for i in 0..4u64 {
            rob.push_back(i, i + 1, false, u32::MAX);
        }
        assert_eq!(rob.len(), 4);
        assert_eq!(rob.head_idx, 0);
        assert_eq!(rob.dispatch_id[rob.slot(2)], 3);
        assert_eq!(rob.pop_back(), 3);
        rob.pop_front();
        assert_eq!(rob.head_idx, 1);
        assert_eq!(rob.len(), 2);
        // Wrap-around: ring capacity is 4, indices keep climbing.
        rob.push_back(3, 9, true, u32::MAX);
        rob.push_back(4, 10, false, u32::MAX);
        assert_eq!(rob.dispatch_id[rob.slot(4)], 10);
        assert!(rob.mispredicted[rob.slot(3)]);
        assert_eq!(
            rob.dispatch_id[rob.slot(1)],
            2,
            "old entries survive the wrap"
        );
    }

    #[test]
    fn op_buf_reconstructs_ops_across_wrap() {
        let mut ops = OpBuf::new(4, 4);
        for i in 0..40u64 {
            let op = MicroOp::int(0x100 + i as u32, i as u32 % 3, 0, FnCategory::Internal);
            ops.insert(i, &op);
            assert_eq!(ops.get(i).pc, 0x100 + i as u32);
        }
        // The last window of indices stays intact after the wrap.
        for i in 30..40u64 {
            assert_eq!(ops.get(i).pc, 0x100 + i as u32);
            assert_eq!(ops.get(i).dep1, i as u32 % 3);
        }
    }

    #[test]
    fn lsq_ring_tracks_inflight_and_truncates_sorted() {
        let mut lq = LsqRing::new(4);
        lq.push_back(10, 0x40);
        lq.push_back(12, 0x80);
        lq.push_back(15, 0xc0);
        assert!(!lq.has_inflight());
        lq.mark_issued(12, 0x88, u32::MAX);
        lq.mark_issued(15, 0xc8, u32::MAX);
        assert!(lq.has_inflight());
        lq.mark_done(12, u32::MAX);
        assert!(lq.has_inflight(), "15 still outstanding");
        // Squash everything younger than 12: drops 15, inflight clears.
        lq.truncate_younger(12);
        assert_eq!(lq.len(), 2);
        assert!(!lq.has_inflight());
        assert_eq!(lq.pop_front(), Some(10));
        assert_eq!(lq.pop_front(), Some(12));
        assert_eq!(lq.pop_front(), None);
    }

    #[test]
    fn store_forwarding_finds_youngest_older_match() {
        let mut sq = LsqRing::new(8);
        sq.push_back(1, 0x100);
        sq.push_back(3, 0x100);
        sq.push_back(5, 0x200);
        sq.mark_issued(1, 0x100, u32::MAX);
        sq.mark_issued(3, 0x100, u32::MAX);
        // Load at idx 4, addr in the same 8-byte block as 0x100.
        assert_eq!(sq.forward_from(4, 0x104), Some((3, false)));
        sq.mark_done(3, u32::MAX);
        assert_eq!(sq.forward_from(4, 0x104), Some((3, true)));
        // Nothing older matches block 0x200 (store 5 is younger).
        assert_eq!(sq.forward_from(4, 0x200), None);
    }
}

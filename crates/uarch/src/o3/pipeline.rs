//! Per-run pipeline state shared by the O3 stage modules.
//!
//! Everything that lives exactly as long as one [`super::O3Core::run_warm`]
//! call sits here: the reorder buffer, issue queue, split load/store
//! queues, fetch/replay queues, the dependency-completion ring, the
//! writeback event heap, register-pool occupancy and the stall/redirect
//! clocks. The long-lived machine state (caches, TLBs, predictor, BTB)
//! stays on [`super::O3Core`] so it survives across runs and intervals.

use crate::cache::ServiceLevel;
use crate::config::CoreConfig;
use belenos_trace::MicroOp;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Minimum dependency-tracking window (producer distances beyond the
/// window are treated as long-retired). The actual ring is sized from the
/// configured ROB in [`done_window_for`], so huge-ROB configurations can
/// never alias in-flight ops.
pub(crate) const DONE_WINDOW: usize = 8192;

/// Dependency-ring size for a configuration: comfortably larger than the
/// ROB (in-flight idx distances span the ROB plus fetch/replay queues),
/// never below the historical 8192 floor.
pub(crate) fn done_window_for(cfg: &CoreConfig) -> usize {
    DONE_WINDOW.max((cfg.rob_entries.saturating_mul(4)).next_power_of_two())
}

/// Deadlock detector: cycles without a commit before the engine reports a
/// wedged pipeline (a simulator bug, not a workload condition).
pub(super) const STALL_LIMIT: u64 = 1_000_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum OpState {
    Waiting,
    Issued,
    Done,
}

#[derive(Debug, Clone)]
pub(super) struct InFlight {
    pub(super) op: MicroOp,
    pub(super) idx: u64,
    pub(super) dispatch_id: u64,
    pub(super) state: OpState,
    /// Branch fetched with a wrong direction prediction.
    pub(super) mispredicted: bool,
    /// Deepest level that serviced a memory op (TMA classification).
    pub(super) mem_level: Option<ServiceLevel>,
}

#[derive(Debug, Clone, Copy)]
pub(super) struct LsqEntry {
    pub(super) idx: u64,
    pub(super) addr: u64,
    pub(super) issued: bool,
    pub(super) done: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum FetchBlock {
    None,
    ICache,
    ITlb,
    Squash,
    QueueFull,
}

/// The per-run pipeline state; one instance per `run_warm` invocation.
pub(super) struct Pipeline {
    /// Effective front-end width: decode/rename/dispatch bottleneck.
    pub(super) fe_width: usize,
    pub(super) fetchq_cap: usize,
    pub(super) now: u64,
    pub(super) next_idx: u64,
    pub(super) dispatch_counter: u64,
    pub(super) rob: VecDeque<InFlight>,
    pub(super) iq: VecDeque<u64>,
    pub(super) lq: VecDeque<LsqEntry>,
    pub(super) sq: VecDeque<LsqEntry>,
    /// Fetched, not yet dispatched: (op, idx, predicted-taken).
    pub(super) fetchq: VecDeque<(MicroOp, u64, bool)>,
    /// Correct-path ops awaiting re-fetch after a squash.
    pub(super) replayq: VecDeque<(MicroOp, u64)>,
    pub(super) done_window: u64,
    pub(super) done_ring: Vec<bool>,
    /// Writeback events: (completion cycle, op idx, dispatch epoch).
    pub(super) events: BinaryHeap<Reverse<(u64, u64, u64)>>,
    pub(super) serializers: VecDeque<u64>,
    pub(super) int_regs_used: usize,
    pub(super) fp_regs_used: usize,
    pub(super) int_pool: usize,
    pub(super) fp_pool: usize,
    pub(super) fetch_stall_until: u64,
    pub(super) fetch_block: FetchBlock,
    pub(super) squash_recovery_until: u64,
    pub(super) icache_pending_until: u64,
    pub(super) cur_fetch_line: u64,
    pub(super) fpdiv_busy_until: u64,
    pub(super) last_commit_cycle: u64,
}

impl Pipeline {
    pub(super) fn new(cfg: &CoreConfig) -> Self {
        let fe_width = cfg
            .decode_width
            .min(cfg.rename_width)
            .min(cfg.dispatch_width);
        let fetchq_cap = (cfg.fetch_width * cfg.frontend_depth as usize).max(16);
        let done_window = done_window_for(cfg) as u64;
        Pipeline {
            fe_width,
            fetchq_cap,
            now: 0,
            next_idx: 0,
            dispatch_counter: 0,
            rob: VecDeque::with_capacity(cfg.rob_entries),
            iq: VecDeque::with_capacity(cfg.iq_entries),
            lq: VecDeque::with_capacity(cfg.lq_entries),
            sq: VecDeque::with_capacity(cfg.sq_entries),
            fetchq: VecDeque::with_capacity(fetchq_cap),
            replayq: VecDeque::new(),
            done_window,
            done_ring: vec![false; done_window as usize],
            events: BinaryHeap::new(),
            serializers: VecDeque::new(),
            int_regs_used: 0,
            fp_regs_used: 0,
            int_pool: cfg.int_regs.saturating_sub(32),
            fp_pool: cfg.fp_regs.saturating_sub(32),
            fetch_stall_until: 0,
            fetch_block: FetchBlock::None,
            squash_recovery_until: 0,
            icache_pending_until: 0,
            cur_fetch_line: u64::MAX,
            fpdiv_busy_until: 0,
            last_commit_cycle: 0,
        }
    }

    /// True when `idx`'s producer at distance `dep` has completed (or is
    /// long retired / precedes the trace).
    pub(super) fn ready(&self, idx: u64, dep: u32, head_idx: u64) -> bool {
        if dep == 0 {
            return true;
        }
        let dep = dep as u64;
        if dep > idx {
            return true; // producer precedes the trace start
        }
        let p = idx - dep;
        if dep >= self.done_window || p < head_idx {
            return true; // long retired
        }
        self.done_ring[(p % self.done_window) as usize]
    }
}

//! DRAM model: fixed random-access latency plus a peak-bandwidth channel
//! that queues transfers.
//!
//! The paper's eye model saturates its platform near 60 GB/s; this model
//! reproduces that behaviour: once line transfers arrive faster than the
//! channel drains them, queueing delay grows and effective latency climbs.

/// Bandwidth-limited, fixed-latency DRAM channel.
#[derive(Debug, Clone)]
pub struct Dram {
    latency_cycles: u64,
    cycles_per_line: f64,
    /// Next cycle at which the channel is free.
    next_free: f64,
    /// Total lines transferred (reads + writebacks).
    pub lines_transferred: u64,
    /// Total read (demand miss) accesses.
    pub reads: u64,
    /// Total writeback accesses.
    pub writebacks: u64,
    /// Accumulated queueing delay in cycles (bandwidth pressure metric).
    pub queue_delay_cycles: u64,
}

impl Dram {
    /// Builds a channel from latency (already in core cycles), peak
    /// bandwidth in GB/s, core frequency and line size.
    ///
    /// # Panics
    ///
    /// Panics on non-positive bandwidth or frequency.
    pub fn new(latency_cycles: u64, bandwidth_gbps: f64, freq_ghz: f64, line_bytes: usize) -> Self {
        assert!(
            bandwidth_gbps > 0.0 && freq_ghz > 0.0,
            "invalid dram parameters"
        );
        // bytes/cycle = GB/s / GHz; cycles per line = line / (bytes/cycle).
        let bytes_per_cycle = bandwidth_gbps / freq_ghz;
        Dram {
            latency_cycles,
            cycles_per_line: line_bytes as f64 / bytes_per_cycle,
            next_free: 0.0,
            lines_transferred: 0,
            reads: 0,
            writebacks: 0,
            queue_delay_cycles: 0,
        }
    }

    /// Issues a line read at `now`; returns the completion cycle.
    pub fn read(&mut self, now: u64) -> u64 {
        self.reads += 1;
        self.transfer(now)
    }

    /// Issues a writeback at `now`; returns the completion cycle (the
    /// requester does not wait, but the channel time is consumed).
    pub fn writeback(&mut self, now: u64) -> u64 {
        self.writebacks += 1;
        self.transfer(now)
    }

    /// Forgets the channel-occupancy timestamp (counters are kept).
    /// Called when a new timed run starts at cycle 0 on a warm hierarchy,
    /// so a stale `next_free` from a previous run cannot queue the first
    /// transfers behind phantom traffic.
    pub fn reset_timing(&mut self) {
        self.next_free = 0.0;
    }

    /// Returns the channel to its just-built state: occupancy and all
    /// traffic counters cleared.
    pub fn reset(&mut self) {
        self.next_free = 0.0;
        self.lines_transferred = 0;
        self.reads = 0;
        self.writebacks = 0;
        self.queue_delay_cycles = 0;
    }

    fn transfer(&mut self, now: u64) -> u64 {
        self.lines_transferred += 1;
        let start = (now as f64).max(self.next_free);
        let queue = (start - now as f64).max(0.0);
        self.queue_delay_cycles += queue as u64;
        self.next_free = start + self.cycles_per_line;
        now + self.latency_cycles + queue as u64 + self.cycles_per_line.ceil() as u64
    }

    /// Average achieved bandwidth in bytes/cycle over `cycles`.
    pub fn achieved_bytes_per_cycle(&self, cycles: u64, line_bytes: usize) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            (self.lines_transferred * line_bytes as u64) as f64 / cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_latency_is_base_plus_transfer() {
        let mut d = Dram::new(180, 38.4, 3.0, 64);
        // 38.4/3.0 = 12.8 B/cycle -> 5 cycles per 64 B line.
        let done = d.read(1000);
        assert_eq!(done, 1000 + 180 + 5);
        assert_eq!(d.reads, 1);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut d = Dram::new(100, 32.0, 4.0, 64);
        // 8 B/cycle -> 8 cycles per line.
        let a = d.read(0);
        let b = d.read(0);
        let c = d.read(0);
        assert!(b > a && c > b, "queueing must serialize transfers");
        assert!(d.queue_delay_cycles > 0);
    }

    #[test]
    fn spaced_requests_do_not_queue() {
        let mut d = Dram::new(100, 32.0, 4.0, 64);
        let a = d.read(0);
        let b = d.read(1000);
        assert_eq!(b - 1000, a);
        assert_eq!(d.queue_delay_cycles, 0);
    }

    #[test]
    fn writebacks_consume_bandwidth() {
        let mut d = Dram::new(100, 32.0, 4.0, 64);
        d.writeback(0);
        let read_done = d.read(0);
        assert!(read_done > 100 + 8, "writeback should delay the read");
        assert_eq!(d.writebacks, 1);
    }

    #[test]
    fn achieved_bandwidth() {
        let mut d = Dram::new(10, 64.0, 1.0, 64);
        for i in 0..100 {
            d.read(i * 2);
        }
        let bpc = d.achieved_bytes_per_cycle(200, 64);
        assert!(bpc > 30.0, "achieved {bpc} B/cycle");
    }
}

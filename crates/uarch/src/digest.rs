//! Stable content hashing for machine configurations.
//!
//! [`Fnv64`] is a minimal FNV-1a 64-bit hasher whose output depends only
//! on the byte stream fed to it — unlike `std::hash`, it is stable across
//! processes, platforms and compiler versions, so it can key on-disk
//! caches. [`crate::CoreConfig::stable_digest`] folds every configuration
//! field through it; two configs digest equal iff they simulate
//! identically.

/// FNV-1a 64-bit streaming hasher with a stable, process-independent
/// output.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Feeds a `usize` widened to 64 bits.
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Feeds an `f64` by its exact bit pattern.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Feeds a string (length-prefixed so `"ab","c"` ≠ `"a","bc"`).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes())
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(
            Fnv64::new().write_bytes(b"a").finish(),
            0xaf63_dc4c_8601_ec8c
        );
        assert_eq!(
            Fnv64::new().write_bytes(b"foobar").finish(),
            0x85944171f73967e8
        );
    }

    #[test]
    fn length_prefix_disambiguates_strings() {
        let ab_c = Fnv64::new().write_str("ab").write_str("c").finish();
        let a_bc = Fnv64::new().write_str("a").write_str("bc").finish();
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn f64_bits_distinguish_negative_zero() {
        let pos = Fnv64::new().write_f64(0.0).finish();
        let neg = Fnv64::new().write_f64(-0.0).finish();
        assert_ne!(pos, neg);
    }
}

//! The out-of-order core: fetch → decode/rename/dispatch → issue →
//! writeback → commit over a micro-op trace, with squash-and-replay branch
//! misprediction recovery and TMA slot accounting.
//!
//! Structure follows gem5's `X86O3CPU`: a reorder buffer bounded by
//! `rob_entries`, an issue queue, split load/store queues, physical
//! register pools, per-class functional units, and a front end that fights
//! the icache, iTLB, BTB and branch predictor.

use crate::branch::{build, BranchPredictor, Btb};
use crate::cache::{Hierarchy, ServiceLevel};
use crate::config::CoreConfig;
use crate::stats::SimStats;
use crate::tlb::Tlb;
use belenos_trace::{MicroOp, OpKind};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Minimum dependency-tracking window (producer distances beyond the
/// window are treated as long-retired). The actual ring is sized from the
/// configured ROB in [`done_window_for`], so huge-ROB configurations can
/// never alias in-flight ops.
const DONE_WINDOW: usize = 8192;

/// Dependency-ring size for a configuration: comfortably larger than the
/// ROB (in-flight idx distances span the ROB plus fetch/replay queues),
/// never below the historical 8192 floor.
fn done_window_for(cfg: &CoreConfig) -> usize {
    DONE_WINDOW.max((cfg.rob_entries.saturating_mul(4)).next_power_of_two())
}
/// Deadlock detector: cycles without a commit before the engine reports a
/// wedged pipeline (a simulator bug, not a workload condition).
const STALL_LIMIT: u64 = 1_000_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpState {
    Waiting,
    Issued,
    Done,
}

#[derive(Debug, Clone)]
struct InFlight {
    op: MicroOp,
    idx: u64,
    dispatch_id: u64,
    state: OpState,
    /// Branch fetched with a wrong direction prediction.
    mispredicted: bool,
    /// Deepest level that serviced a memory op (TMA classification).
    mem_level: Option<ServiceLevel>,
}

#[derive(Debug, Clone, Copy)]
struct LsqEntry {
    idx: u64,
    addr: u64,
    issued: bool,
    done: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchBlock {
    None,
    ICache,
    ITlb,
    Squash,
    QueueFull,
}

/// The out-of-order core simulator.
pub struct O3Core {
    cfg: CoreConfig,
    hierarchy: Hierarchy,
    itlb: Tlb,
    dtlb: Tlb,
    predictor: Box<dyn BranchPredictor>,
    btb: Btb,
}

impl std::fmt::Debug for O3Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("O3Core")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl O3Core {
    /// Builds a core for one configuration.
    pub fn new(cfg: CoreConfig) -> Self {
        O3Core {
            hierarchy: Hierarchy::new(&cfg),
            itlb: Tlb::new(cfg.tlb_entries),
            dtlb: Tlb::new(cfg.tlb_entries),
            predictor: build(cfg.predictor),
            btb: Btb::new(cfg.btb_entries),
            cfg,
        }
    }

    /// Runs the trace to completion and returns the statistics.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline wedges (no commit for a very long time),
    /// which indicates a simulator bug.
    pub fn run<I: Iterator<Item = MicroOp>>(&mut self, trace: I) -> SimStats {
        self.run_warm(trace, 0)
    }

    /// Runs the trace, discarding the first `warmup_ops` committed ops
    /// from the reported statistics (cache/predictor state persists — this
    /// is measurement warmup, exactly like gem5's stats reset after
    /// checkpoint restore).
    ///
    /// # Panics
    ///
    /// As in [`O3Core::run`].
    pub fn run_warm<I: Iterator<Item = MicroOp>>(&mut self, trace: I, warmup_ops: u64) -> SimStats {
        let mut stats = SimStats {
            freq_ghz: self.cfg.freq_ghz,
            ..SimStats::default()
        };
        // A warm core (interval sampling reuses one core across runs) may
        // carry completion timestamps from an earlier run; this run's
        // clock restarts at zero, and memory counters report deltas.
        self.hierarchy.reset_timing();
        let base = MemCounters::capture(&self.hierarchy);
        let cfg = self.cfg.clone();
        let fe_width = cfg
            .decode_width
            .min(cfg.rename_width)
            .min(cfg.dispatch_width);
        let fetchq_cap = (cfg.fetch_width * cfg.frontend_depth as usize).max(16);

        let mut trace = trace.fuse();
        let mut now: u64 = 0;
        let mut next_idx: u64 = 0;
        let mut dispatch_counter: u64 = 0;

        let mut rob: VecDeque<InFlight> = VecDeque::with_capacity(cfg.rob_entries);
        let mut iq: VecDeque<u64> = VecDeque::with_capacity(cfg.iq_entries);
        let mut lq: VecDeque<LsqEntry> = VecDeque::with_capacity(cfg.lq_entries);
        let mut sq: VecDeque<LsqEntry> = VecDeque::with_capacity(cfg.sq_entries);
        let mut fetchq: VecDeque<(MicroOp, u64, bool)> = VecDeque::with_capacity(fetchq_cap);
        let mut replayq: VecDeque<(MicroOp, u64)> = VecDeque::new();
        let done_window = done_window_for(&cfg) as u64;
        let mut done_ring = vec![false; done_window as usize];
        let mut events: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
        let mut serializers: VecDeque<u64> = VecDeque::new();

        let mut int_regs_used = 0usize;
        let mut fp_regs_used = 0usize;
        let int_pool = cfg.int_regs.saturating_sub(32);
        let fp_pool = cfg.fp_regs.saturating_sub(32);

        let mut fetch_stall_until: u64 = 0;
        let mut fetch_block = FetchBlock::None;
        let mut squash_recovery_until: u64 = 0;
        let mut icache_pending_until: u64 = 0;
        let mut cur_fetch_line: u64 = u64::MAX;
        let mut fpdiv_busy_until: u64 = 0;
        let mut last_commit_cycle: u64 = 0;
        let mut warm_snapshot: Option<SimStats> = None;

        let ready = |idx: u64, dep: u32, ring: &[bool], head_idx: u64| -> bool {
            if dep == 0 {
                return true;
            }
            let dep = dep as u64;
            if dep > idx {
                return true; // producer precedes the trace start
            }
            let p = idx - dep;
            if dep >= done_window || p < head_idx {
                return true; // long retired
            }
            ring[(p % done_window) as usize]
        };

        loop {
            // ---------------- commit ----------------
            let mut committed_this_cycle = 0usize;
            while committed_this_cycle < cfg.commit_width {
                let Some(head) = rob.front() else { break };
                if head.state != OpState::Done {
                    break;
                }
                let head = rob.pop_front().expect("checked non-empty");
                match head.op.kind {
                    OpKind::Store => {
                        // Drain the store to the cache at commit.
                        let entry = sq.pop_front();
                        debug_assert_eq!(entry.map(|e| e.idx), Some(head.idx));
                        self.hierarchy.data_access(head.op.addr, true, now);
                        fp_regs_used = fp_regs_used.saturating_sub(0);
                    }
                    OpKind::Load => {
                        let entry = lq.pop_front();
                        debug_assert_eq!(entry.map(|e| e.idx), Some(head.idx));
                        fp_regs_used = fp_regs_used.saturating_sub(1);
                    }
                    OpKind::Branch => {
                        self.predictor.update(head.op.pc, head.op.taken);
                        if head.op.taken {
                            self.btb.install(head.op.pc, head.op.target);
                        }
                        stats.branches += 1;
                        if head.mispredicted {
                            stats.mispredicts += 1;
                        }
                    }
                    OpKind::IntAlu | OpKind::IntMul => {
                        int_regs_used = int_regs_used.saturating_sub(1);
                    }
                    OpKind::FpAdd | OpKind::FpMul | OpKind::FpDiv => {
                        fp_regs_used = fp_regs_used.saturating_sub(1);
                    }
                    OpKind::Pause | OpKind::Serialize => {}
                }
                stats.commit_mix.count(head.op.kind);
                stats.slots_by_category[crate::stats::category_index(head.op.cat)] += 1;
                stats.committed_ops += 1;
                committed_this_cycle += 1;
                last_commit_cycle = now;
            }
            // TMA slot accounting at the commit boundary.
            stats.slots_retiring += committed_this_cycle as u64;
            let missing = (cfg.commit_width - committed_this_cycle) as u64;
            if missing > 0 {
                if let Some(head) = rob.front() {
                    stats.slots_backend += missing;
                    stats.slots_by_category[crate::stats::category_index(head.op.cat)] += missing;
                    let memory_bound = match head.op.kind {
                        OpKind::Load | OpKind::Store => true,
                        _ => lq.iter().any(|e| e.issued && !e.done),
                    };
                    if memory_bound {
                        stats.slots_be_memory += missing;
                    } else {
                        stats.slots_be_core += missing;
                    }
                } else if now < squash_recovery_until {
                    stats.slots_bad_speculation += missing;
                } else {
                    stats.slots_frontend += missing;
                    match fetch_block {
                        FetchBlock::ICache | FetchBlock::ITlb => stats.slots_fe_latency += missing,
                        _ => stats.slots_fe_bandwidth += missing,
                    }
                }
            }

            // ---------------- writeback / branch resolve ----------------
            let mut written_back = 0usize;
            while written_back < cfg.writeback_width {
                let Some(&Reverse((t, idx, did))) = events.peek() else {
                    break;
                };
                if t > now {
                    break;
                }
                events.pop();
                let Some(front) = rob.front() else { continue };
                let head_idx = front.idx;
                if idx < head_idx {
                    continue; // stale (already committed or squashed)
                }
                let pos = (idx - head_idx) as usize;
                if pos >= rob.len() {
                    continue;
                }
                let entry = &mut rob[pos];
                if entry.dispatch_id != did || entry.state != OpState::Issued {
                    continue; // stale epoch after squash
                }
                entry.state = OpState::Done;
                done_ring[(idx % done_window) as usize] = true;
                written_back += 1;
                if entry.op.kind == OpKind::Load {
                    if let Some(e) = lq.iter_mut().find(|e| e.idx == idx) {
                        e.done = true;
                    }
                }
                if matches!(entry.op.kind, OpKind::Pause | OpKind::Serialize)
                    && serializers.front() == Some(&idx)
                {
                    serializers.pop_front();
                }
                let mispredicted = entry.op.kind == OpKind::Branch && entry.mispredicted;
                if mispredicted {
                    // Squash everything younger than the branch.
                    let mut younger: Vec<(MicroOp, u64)> = Vec::new();
                    while rob.len() > pos + 1 {
                        let victim = rob.pop_back().expect("len checked");
                        done_ring[(victim.idx % done_window) as usize] = false;
                        match victim.op.kind {
                            OpKind::IntAlu | OpKind::IntMul => {
                                int_regs_used = int_regs_used.saturating_sub(1)
                            }
                            OpKind::FpAdd | OpKind::FpMul | OpKind::FpDiv | OpKind::Load => {
                                fp_regs_used = fp_regs_used.saturating_sub(1)
                            }
                            _ => {}
                        }
                        stats.squashed_ops += 1;
                        younger.push((victim.op, victim.idx));
                    }
                    younger.reverse();
                    let squash_count = younger.len() + fetchq.len();
                    iq.retain(|&i| i <= idx);
                    lq.retain(|e| e.idx <= idx);
                    sq.retain(|e| e.idx <= idx);
                    serializers.retain(|&i| i <= idx);
                    // Re-fetch correct-path ops in original order.
                    for (op, i) in fetchq.drain(..).map(|(op, i, _)| (op, i)).rev() {
                        replayq.push_front((op, i));
                    }
                    for (op, i) in younger.into_iter().rev() {
                        replayq.push_front((op, i));
                    }
                    let squash_cycles = (squash_count as u64).div_ceil(cfg.squash_width as u64);
                    fetch_stall_until = fetch_stall_until.max(now + 1 + squash_cycles);
                    squash_recovery_until = now + cfg.frontend_depth + 1 + squash_cycles;
                    fetch_block = FetchBlock::Squash;
                    cur_fetch_line = u64::MAX;
                }
            }

            // ---------------- issue ----------------
            let mut issued = 0usize;
            let mut fu_used = [0usize; 5];
            if !iq.is_empty() {
                let head_idx = rob.front().map(|e| e.idx).unwrap_or(0);
                let barrier = serializers.front().copied();
                let mut keep: VecDeque<u64> = VecDeque::with_capacity(iq.len());
                let mut blocked_by_barrier = false;
                for &idx in iq.iter() {
                    if issued >= cfg.issue_width || blocked_by_barrier {
                        keep.push_back(idx);
                        continue;
                    }
                    // Serialization: ops younger than an in-flight
                    // pause/serialize cannot issue.
                    if let Some(b) = barrier {
                        if idx > b {
                            keep.push_back(idx);
                            blocked_by_barrier = true;
                            continue;
                        }
                    }
                    let pos = (idx - head_idx) as usize;
                    if pos >= rob.len() {
                        continue; // squashed
                    }
                    let (deps_ok, kind, addr, pc, is_head) = {
                        let e = &rob[pos];
                        (
                            ready(idx, e.op.dep1, &done_ring, head_idx)
                                && ready(idx, e.op.dep2, &done_ring, head_idx),
                            e.op.kind,
                            e.op.addr,
                            e.op.pc,
                            pos == 0,
                        )
                    };
                    let _ = pc;
                    if !deps_ok {
                        keep.push_back(idx);
                        continue;
                    }
                    // Functional-unit mapping: [int alu, int mul, fp add,
                    // fp mul/div, mem ports].
                    let (fu, latency): (usize, u64) = match kind {
                        OpKind::IntAlu => (0, 1),
                        OpKind::IntMul => (1, 3),
                        OpKind::FpAdd => (2, 3),
                        OpKind::FpMul => (3, 4),
                        OpKind::FpDiv => (3, 18),
                        OpKind::Load | OpKind::Store => (4, 1),
                        OpKind::Branch => (0, 1),
                        OpKind::Pause | OpKind::Serialize => (0, cfg.pause_latency),
                    };
                    if fu_used[fu] >= cfg.fu_counts[fu] {
                        keep.push_back(idx);
                        continue;
                    }
                    if kind == OpKind::FpDiv && fpdiv_busy_until > now {
                        keep.push_back(idx);
                        continue;
                    }
                    if matches!(kind, OpKind::Pause | OpKind::Serialize) && !is_head {
                        keep.push_back(idx);
                        blocked_by_barrier = true;
                        continue;
                    }
                    // Memory-op issue rules.
                    let mut done_at = now + latency;
                    let mut mem_level = None;
                    match kind {
                        OpKind::Load => {
                            // Memory-dependence prediction (store sets in
                            // gem5): loads issue past older stores with
                            // unknown addresses; known matching stores
                            // forward.
                            let fwd = sq
                                .iter()
                                .rfind(|s| s.idx < idx && s.issued && (s.addr >> 3) == (addr >> 3));
                            if let Some(s) = fwd {
                                if !s.done && !done_ring[(s.idx % done_window) as usize] {
                                    keep.push_back(idx);
                                    continue;
                                }
                                done_at = now + 1;
                                mem_level = Some(ServiceLevel::L1);
                            } else {
                                if !self.hierarchy.l1d.mshr_available(now) {
                                    keep.push_back(idx);
                                    continue;
                                }
                                let mut penalty = 0;
                                if !self.dtlb.access(addr) {
                                    penalty = cfg.tlb_miss_penalty;
                                    stats.dtlb_misses += 1;
                                }
                                let r = self.hierarchy.data_access(addr, false, now + penalty);
                                done_at = r.done;
                                mem_level = Some(r.level);
                            }
                            if let Some(e) = lq.iter_mut().find(|e| e.idx == idx) {
                                e.issued = true;
                                e.addr = addr;
                            }
                        }
                        OpKind::Store => {
                            if let Some(e) = sq.iter_mut().find(|e| e.idx == idx) {
                                e.issued = true;
                                e.addr = addr;
                            }
                        }
                        OpKind::FpDiv => {
                            fpdiv_busy_until = now + 12; // unpipelined window
                        }
                        _ => {}
                    }
                    fu_used[fu] += 1;
                    let e = &mut rob[pos];
                    e.state = OpState::Issued;
                    e.mem_level = mem_level;
                    stats.exec_mix.count(kind);
                    events.push(Reverse((done_at.max(now + 1), idx, e.dispatch_id)));
                    issued += 1;
                }
                iq = keep;
            }

            // ---------------- dispatch ----------------
            for _ in 0..fe_width {
                let Some(&(op, _, _)) = fetchq.front() else {
                    break;
                };
                if rob.len() >= cfg.rob_entries || iq.len() >= cfg.iq_entries {
                    break;
                }
                match op.kind {
                    OpKind::Load if lq.len() >= cfg.lq_entries => break,
                    OpKind::Store if sq.len() >= cfg.sq_entries => break,
                    OpKind::IntAlu | OpKind::IntMul if int_regs_used >= int_pool => break,
                    OpKind::FpAdd | OpKind::FpMul | OpKind::FpDiv | OpKind::Load
                        if fp_regs_used >= fp_pool =>
                    {
                        break
                    }
                    _ => {}
                }
                let (op, idx, pred_taken) = fetchq.pop_front().expect("checked");
                dispatch_counter += 1;
                match op.kind {
                    OpKind::Load => {
                        lq.push_back(LsqEntry {
                            idx,
                            addr: op.addr,
                            issued: false,
                            done: false,
                        });
                        fp_regs_used += 1;
                    }
                    OpKind::Store => {
                        sq.push_back(LsqEntry {
                            idx,
                            addr: op.addr,
                            issued: false,
                            done: false,
                        });
                    }
                    OpKind::IntAlu | OpKind::IntMul => int_regs_used += 1,
                    OpKind::FpAdd | OpKind::FpMul | OpKind::FpDiv => fp_regs_used += 1,
                    OpKind::Pause | OpKind::Serialize => serializers.push_back(idx),
                    OpKind::Branch => {}
                }
                done_ring[(idx % done_window) as usize] = false;
                rob.push_back(InFlight {
                    mispredicted: op.kind == OpKind::Branch && pred_taken != op.taken,
                    op,
                    idx,
                    dispatch_id: dispatch_counter,
                    state: OpState::Waiting,
                    mem_level: None,
                });
                iq.push_back(idx);
            }

            // ---------------- fetch ----------------
            let mut fetched = 0usize;
            if now < fetch_stall_until {
                if fetch_block != FetchBlock::Squash {
                    fetch_block = FetchBlock::Squash;
                }
                stats.squash_cycles += 1;
            } else if now < icache_pending_until {
                match fetch_block {
                    FetchBlock::ITlb => stats.tlb_stall_cycles += 1,
                    _ => stats.icache_stall_cycles += 1,
                }
            } else if fetchq.len() + cfg.fetch_width > fetchq_cap {
                // Downstream back-pressure: the fetch stage still ran this
                // cycle (gem5 counts these as fetch cycles, not stalls).
                fetch_block = FetchBlock::QueueFull;
                stats.active_fetch_cycles += 1;
            } else {
                fetch_block = FetchBlock::None;
                while fetched < cfg.fetch_width {
                    let next = replayq.pop_front().or_else(|| {
                        trace.next().map(|op| {
                            let i = next_idx;
                            next_idx += 1;
                            (op, i)
                        })
                    });
                    let Some((op, idx)) = next else { break };
                    // Instruction-side cache/TLB on line crossings.
                    let line = (op.pc as u64) >> 6;
                    if line != cur_fetch_line {
                        if !self.itlb.access(op.pc as u64) {
                            icache_pending_until = now + cfg.tlb_miss_penalty;
                            fetch_block = FetchBlock::ITlb;
                            replayq.push_front((op, idx));
                            break;
                        }
                        let r = self.hierarchy.inst_access(op.pc as u64, now);
                        if r.level != ServiceLevel::L1 {
                            icache_pending_until = r.done;
                            fetch_block = FetchBlock::ICache;
                            replayq.push_front((op, idx));
                            break;
                        }
                        cur_fetch_line = line;
                    }
                    let mut pred_taken = false;
                    let mut end_group = false;
                    if op.kind == OpKind::Branch {
                        pred_taken = self.predictor.predict(op.pc);
                        if pred_taken {
                            if self.btb.lookup(op.pc).is_none() {
                                // Unknown target: bubble until decode fixes it.
                                fetch_stall_until = now + cfg.btb_miss_penalty;
                                stats.btb_misses += 1;
                            }
                            end_group = true;
                        }
                        if op.taken {
                            end_group = true;
                            cur_fetch_line = u64::MAX;
                        }
                    }
                    fetchq.push_back((op, idx, pred_taken));
                    fetched += 1;
                    if end_group {
                        break;
                    }
                }
                if fetched > 0 {
                    stats.active_fetch_cycles += 1;
                } else if !fetchq.is_empty() || !rob.is_empty() {
                    stats.misc_stall_cycles += 1;
                }
            }

            if warm_snapshot.is_none() && warmup_ops > 0 && stats.committed_ops >= warmup_ops {
                let mut snap = stats.clone();
                snap.cycles = now;
                base.delta_into(&mut snap, &self.hierarchy);
                warm_snapshot = Some(snap);
            }

            now += 1;

            // ---------------- termination & wedge detection ----------------
            if rob.is_empty() && fetchq.is_empty() && replayq.is_empty() {
                // Peek the trace: if exhausted, we are done.
                match trace.next() {
                    Some(op) => {
                        let i = next_idx;
                        next_idx += 1;
                        replayq.push_front((op, i));
                    }
                    None => break,
                }
            }
            if now - last_commit_cycle > STALL_LIMIT && stats.committed_ops > 0 {
                panic!(
                    "pipeline wedged at cycle {now}: rob={}, iq={}, lq={}, sq={}",
                    rob.len(),
                    iq.len(),
                    lq.len(),
                    sq.len()
                );
            }
            if now > STALL_LIMIT && stats.committed_ops == 0 && !rob.is_empty() {
                panic!("pipeline never committed; head {:?}", rob.front());
            }
        }

        stats.cycles = now;
        base.delta_into(&mut stats, &self.hierarchy);
        if warmup_ops > 0 {
            // Clamp the warmup to the observed trace: when the trace
            // commits fewer ops than `warmup_ops` the whole run was
            // warmup, and the reported measurement window is empty (it
            // must never silently fall back to unwarmed full-run stats).
            let snap = warm_snapshot.unwrap_or_else(|| stats.clone());
            stats.subtract(&snap);
        }
        stats
    }

    /// Functionally warms the long-lived microarchitectural state from
    /// the next `max_ops` ops of `trace` at zero pipeline cost: caches
    /// and TLBs observe every memory and fetch access, the branch
    /// predictor and BTB observe every branch outcome, but no cycles are
    /// simulated and no statistics are produced.
    ///
    /// This is the SMARTS-style "functional warming" between detailed
    /// measurement intervals; follow with [`O3Core::run_warm`] on the
    /// same iterator to measure. Returns the number of ops consumed
    /// (fewer than `max_ops` only when the trace ends).
    pub fn warm_only<I: Iterator<Item = MicroOp>>(&mut self, trace: &mut I, max_ops: u64) -> u64 {
        let mut consumed = 0u64;
        let mut now = 0u64;
        let mut cur_line = u64::MAX;
        while consumed < max_ops {
            let Some(op) = trace.next() else { break };
            consumed += 1;
            let line = (op.pc as u64) >> 6;
            if line != cur_line {
                self.itlb.access(op.pc as u64);
                self.hierarchy.inst_access(op.pc as u64, now);
                cur_line = line;
            }
            match op.kind {
                OpKind::Load => {
                    self.dtlb.access(op.addr);
                    self.hierarchy.data_access(op.addr, false, now);
                }
                OpKind::Store => {
                    self.dtlb.access(op.addr);
                    self.hierarchy.data_access(op.addr, true, now);
                }
                OpKind::Branch => {
                    self.predictor.update(op.pc, op.taken);
                    if op.taken {
                        self.btb.install(op.pc, op.target);
                        cur_line = u64::MAX;
                    }
                }
                _ => {}
            }
            now += 1;
            // Warming never reads completion timestamps, but every miss
            // records one (`note_miss_outstanding`); drop them regularly
            // so a long warm gap cannot accumulate millions of them.
            if consumed.is_multiple_of(65_536) {
                self.hierarchy.reset_timing();
            }
        }
        self.hierarchy.reset_timing();
        consumed
    }
}

/// Snapshot of the hierarchy's cumulative memory counters; reports
/// per-run deltas when one core runs several measurement intervals (the
/// counters on the cache structs are process-cumulative).
#[derive(Debug, Clone, Copy)]
struct MemCounters {
    l1i_accesses: u64,
    l1i_misses: u64,
    l1d_accesses: u64,
    l1d_misses: u64,
    l2_accesses: u64,
    l2_misses: u64,
    dram_lines: u64,
}

impl MemCounters {
    fn capture(h: &Hierarchy) -> Self {
        MemCounters {
            l1i_accesses: h.l1i.accesses,
            l1i_misses: h.l1i.misses,
            l1d_accesses: h.l1d.accesses,
            l1d_misses: h.l1d.misses,
            l2_accesses: h.l2.accesses,
            l2_misses: h.l2.misses,
            dram_lines: h.dram.lines_transferred,
        }
    }

    /// Writes `current - baseline` memory counters into `stats`.
    fn delta_into(&self, stats: &mut SimStats, h: &Hierarchy) {
        stats.l1i_accesses = h.l1i.accesses - self.l1i_accesses;
        stats.l1i_misses = h.l1i.misses - self.l1i_misses;
        stats.l1d_accesses = h.l1d.accesses - self.l1d_accesses;
        stats.l1d_misses = h.l1d.misses - self.l1d_misses;
        stats.l2_accesses = h.l2.accesses - self.l2_accesses;
        stats.l2_misses = h.l2.misses - self.l2_misses;
        stats.dram_lines = h.dram.lines_transferred - self.dram_lines;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use belenos_trace::FnCategory;

    const CAT: FnCategory = FnCategory::Internal;

    fn run_ops(ops: Vec<MicroOp>, cfg: CoreConfig) -> SimStats {
        let mut core = O3Core::new(cfg);
        core.run(ops.into_iter())
    }

    fn int_stream(n: usize) -> Vec<MicroOp> {
        (0..n)
            .map(|i| MicroOp::int(0x1000 + (i as u32 % 16) * 4, 0, 0, CAT))
            .collect()
    }

    #[test]
    fn commits_every_op_exactly_once() {
        let stats = run_ops(int_stream(1000), CoreConfig::gem5_baseline());
        assert_eq!(stats.committed_ops, 1000);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn independent_ops_achieve_wide_ipc() {
        let stats = run_ops(int_stream(20_000), CoreConfig::gem5_baseline());
        // 4 int ALUs, commit width 4: IPC should approach 4.
        assert!(stats.ipc() > 2.5, "ipc {}", stats.ipc());
    }

    #[test]
    fn dependent_chain_limits_ipc_to_one() {
        let ops: Vec<MicroOp> = (0..5000)
            .map(|i| MicroOp::int(0x1000, if i == 0 { 0 } else { 1 }, 0, CAT))
            .collect();
        let stats = run_ops(ops, CoreConfig::gem5_baseline());
        assert!(stats.ipc() < 1.2, "serial chain ipc {}", stats.ipc());
        assert!(stats.ipc() > 0.5, "serial chain ipc {}", stats.ipc());
    }

    #[test]
    fn fp_div_chain_is_slow() {
        let ops: Vec<MicroOp> = (0..500)
            .map(|i| MicroOp::fp(OpKind::FpDiv, 0x2000, if i == 0 { 0 } else { 1 }, 0, CAT))
            .collect();
        let stats = run_ops(ops, CoreConfig::gem5_baseline());
        assert!(stats.cpi() > 10.0, "fpdiv chain cpi {}", stats.cpi());
    }

    #[test]
    fn cold_loads_stall_the_backend() {
        // Strided loads over a large footprint: every access misses.
        let ops: Vec<MicroOp> = (0..4000)
            .map(|i| MicroOp::load(0x3000, 0x100_0000 + i as u64 * 4096, 8, 0, CAT))
            .collect();
        let stats = run_ops(ops, CoreConfig::gem5_baseline());
        assert!(stats.l1d_mpki() > 500.0, "mpki {}", stats.l1d_mpki());
        let (_, _, _, be) = stats.topdown();
        assert!(be > 0.4, "backend fraction {be}");
        assert!(stats.slots_be_memory > stats.slots_be_core);
    }

    #[test]
    fn cache_resident_loads_are_fast() {
        // 128 hot lines, revisited: after warmup everything hits L1.
        let ops: Vec<MicroOp> = (0..20_000)
            .map(|i| MicroOp::load(0x3000, (i % 128) as u64 * 64, 8, 0, CAT))
            .collect();
        let stats = run_ops(ops, CoreConfig::gem5_baseline());
        assert!(stats.l1d_mpki() < 20.0, "mpki {}", stats.l1d_mpki());
        assert!(stats.ipc() > 1.0, "ipc {}", stats.ipc());
    }

    #[test]
    fn pause_ops_serialize_and_count_core_bound() {
        let mut ops = Vec::new();
        for _ in 0..200 {
            ops.push(MicroOp::pause(0x4000, CAT));
            ops.push(MicroOp::int(0x4004, 0, 0, CAT));
        }
        let stats = run_ops(ops, CoreConfig::gem5_baseline());
        let (retiring, _, _, be) = stats.topdown();
        assert!(be > 0.6, "pause stream backend {be}");
        assert!(stats.slots_be_core > stats.slots_be_memory);
        assert!(retiring < 0.2);
        // Each pause costs ~pause_latency serialized cycles.
        assert!(stats.cycles > 200 * 20, "cycles {}", stats.cycles);
    }

    #[test]
    fn mispredicted_branches_squash_and_replay() {
        // Alternating branch direction defeats most predictors early on;
        // all ops must still commit exactly once.
        let mut ops = Vec::new();
        for i in 0..500 {
            ops.push(MicroOp::int(0x5000, 0, 0, CAT));
            ops.push(MicroOp::branch(0x5010, 0x5000, i % 2 == 0, 0, CAT));
            ops.push(MicroOp::int(0x5020, 0, 0, CAT));
        }
        let total = ops.len() as u64;
        let stats = run_ops(ops, CoreConfig::gem5_baseline());
        assert_eq!(stats.committed_ops, total);
        assert!(
            stats.mispredicts > 0,
            "alternation must mispredict sometimes"
        );
        assert!(stats.branches == 500);
    }

    #[test]
    fn predictable_loops_have_low_mispredicts() {
        let mut ops = Vec::new();
        for i in 0..3000 {
            ops.push(MicroOp::int(0x6000, 0, 0, CAT));
            ops.push(MicroOp::branch(0x6010, 0x6000, i % 100 != 99, 0, CAT));
        }
        let stats = run_ops(ops, CoreConfig::gem5_baseline());
        assert!(
            stats.mispredict_rate() < 0.1,
            "loop branches should predict well: {}",
            stats.mispredict_rate()
        );
    }

    #[test]
    fn store_to_load_forwarding_works() {
        // Store then immediately load the same address, repeatedly: loads
        // must not pay miss latency every time.
        let mut ops = Vec::new();
        for i in 0..2000 {
            let addr = 0x9000 + (i % 4) * 8;
            ops.push(MicroOp::store(0x7000, addr, 8, 0, CAT));
            ops.push(MicroOp::load(0x7004, addr, 8, 0, CAT));
        }
        let stats = run_ops(ops, CoreConfig::gem5_baseline());
        assert!(stats.ipc() > 0.5, "forwarding ipc {}", stats.ipc());
        assert_eq!(stats.committed_ops, 4000);
    }

    #[test]
    fn icache_pressure_from_large_code_footprint() {
        // Jump through 4096 distinct lines of code (256 kB footprint >
        // 32 kB L1I).
        let ops: Vec<MicroOp> = (0..40_000)
            .map(|i| MicroOp::int(((i * 64) % (4096 * 64)) as u32, 0, 0, CAT))
            .collect();
        let stats = run_ops(ops, CoreConfig::gem5_baseline());
        assert!(stats.l1i_mpki() > 100.0, "l1i mpki {}", stats.l1i_mpki());
        assert!(stats.icache_stall_cycles > 0);
    }

    #[test]
    fn narrower_pipeline_is_slower() {
        let ops = int_stream(20_000);
        let wide = run_ops(ops.clone(), CoreConfig::gem5_baseline());
        let narrow = run_ops(ops, CoreConfig::gem5_baseline().with_pipeline_width(2));
        assert!(
            narrow.cycles > wide.cycles,
            "narrow {} vs wide {}",
            narrow.cycles,
            wide.cycles
        );
    }

    #[test]
    fn higher_frequency_does_not_scale_memory_bound_code() {
        let ops: Vec<MicroOp> = (0..3000)
            .map(|i| MicroOp::load(0x3000, 0x100_0000 + i as u64 * 4096, 8, 0, CAT))
            .collect();
        let slow = run_ops(ops.clone(), CoreConfig::gem5_baseline().with_frequency(1.0));
        let fast = run_ops(ops, CoreConfig::gem5_baseline().with_frequency(4.0));
        let speedup = slow.seconds() / fast.seconds();
        assert!(
            speedup < 3.0,
            "memory-bound code must scale sublinearly: {speedup}x at 4x clock"
        );
        assert!(fast.ipc() < slow.ipc(), "ipc must drop with frequency");
    }

    #[test]
    fn tma_slots_account_every_cycle() {
        let stats = run_ops(int_stream(5000), CoreConfig::gem5_baseline());
        let expected = stats.cycles * CoreConfig::gem5_baseline().commit_width as u64;
        assert_eq!(stats.total_slots(), expected);
    }

    #[test]
    fn lsq_pressure_slows_memory_bursts() {
        let ops: Vec<MicroOp> = (0..8000)
            .map(|i| MicroOp::load(0x3000, (i as u64 * 64) % (1 << 22), 8, 0, CAT))
            .collect();
        let big = run_ops(ops.clone(), CoreConfig::gem5_baseline());
        let small = run_ops(ops, CoreConfig::gem5_baseline().with_lsq(8, 8));
        assert!(
            small.cycles > big.cycles,
            "tiny lsq {} should be slower than baseline {}",
            small.cycles,
            big.cycles
        );
    }

    #[test]
    fn empty_trace_terminates() {
        let stats = run_ops(Vec::new(), CoreConfig::gem5_baseline());
        assert_eq!(stats.committed_ops, 0);
    }

    #[test]
    fn warmup_discard_reports_the_measured_remainder() {
        let mut core = O3Core::new(CoreConfig::gem5_baseline());
        let stats = core.run_warm(int_stream(1000).into_iter(), 200);
        // The snapshot lands on a commit-group boundary at or just past
        // the requested warmup.
        assert!(stats.committed_ops <= 800);
        assert!(stats.committed_ops >= 800 - 8, "{}", stats.committed_ops);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn warmup_longer_than_trace_reports_empty_measurement() {
        // Regression: the trace commits fewer ops than `warmup_ops`, so
        // the warmup snapshot used to never be taken and the full
        // unwarmed run leaked out as if it were a measurement. The
        // warmup must clamp to the observed trace instead.
        let mut core = O3Core::new(CoreConfig::gem5_baseline());
        let stats = core.run_warm(int_stream(100).into_iter(), 1_000_000);
        assert_eq!(stats.committed_ops, 0);
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.total_slots(), 0);
        assert_eq!(stats.l1d_accesses, 0);
    }

    #[test]
    fn huge_rob_does_not_corrupt_dependency_tracking() {
        // Regression: DONE_WINDOW = 8192 was a comment-only invariant; a
        // ROB at or above it silently aliased dependency slots. The ring
        // is now sized from the configuration.
        let cfg = CoreConfig::gem5_baseline().with_rob_iq(16_384, 512);
        // Long dependency chains keep the window full while older ops
        // retire, exercising ring wrap-around.
        let ops: Vec<MicroOp> = (0..40_000)
            .map(|i| MicroOp::int(0x1000 + (i as u32 % 64) * 4, u32::from(i > 0), 0, CAT))
            .collect();
        let stats = run_ops(ops, cfg);
        assert_eq!(stats.committed_ops, 40_000);
        assert!(stats.ipc() < 1.2, "serial chain must stay serial");
    }

    #[test]
    fn warm_only_consumes_and_warms_without_stats() {
        let mut core = O3Core::new(CoreConfig::gem5_baseline());
        // 64 hot lines, touched twice during warming.
        let ops: Vec<MicroOp> = (0..8192)
            .map(|i| MicroOp::load(0x3000, (i % 64) as u64 * 64, 8, 0, CAT))
            .collect();
        let mut it = ops.clone().into_iter();
        let consumed = core.warm_only(&mut it, 4096);
        assert_eq!(consumed, 4096);
        assert_eq!(it.clone().count(), 8192 - 4096, "iterator shared");
        // A detailed run over the same lines now starts warm: every load
        // hits L1 and the reported counters cover only the detailed run.
        let stats = core.run_warm(it, 0);
        assert_eq!(stats.committed_ops, 4096);
        assert_eq!(stats.l1d_accesses, 4096);
        assert!(
            stats.l1d_mpki() < 1.0,
            "warmed cache must hit: mpki {}",
            stats.l1d_mpki()
        );
        // Trace shorter than the warming budget: consumption stops.
        let mut core = O3Core::new(CoreConfig::gem5_baseline());
        let mut short = ops.into_iter().take(10);
        assert_eq!(core.warm_only(&mut short, 100), 10);
    }

    #[test]
    fn rerun_on_a_warm_core_matches_a_controlled_clock() {
        // After an interval, a reused core's second run restarts its
        // clock; stale MSHR/DRAM timestamps must not leak in.
        let mut core = O3Core::new(CoreConfig::gem5_baseline());
        let first = core.run(int_stream(5000).into_iter());
        let second = core.run(int_stream(5000).into_iter());
        assert_eq!(first.committed_ops, second.committed_ops);
        // Warm icache can only help; stale timestamps would balloon this.
        assert!(second.cycles <= first.cycles);
        assert!(second.cycles * 2 > first.cycles, "rerun must stay sane");
    }
}

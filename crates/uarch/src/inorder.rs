//! Scalar in-order core backend.
//!
//! Reuses the exact same cache hierarchy, TLBs, branch predictor and BTB
//! component models as the out-of-order core, but issues exactly one op
//! per cycle in program order and **stalls at issue**: an op waits for
//! its producers' results, the front end, and the (unpipelined) FP
//! divider before the next op may issue. Completion may overlap —
//! a load's consumer stalls, an independent successor does not — which
//! makes this a classic scoreboard machine rather than a blocking one.
//!
//! The model runs as a single pass over the trace (no wrong-path fetch:
//! a mispredicted branch costs a front-end redirect bubble instead of
//! squash-and-replay), so it is typically ~10-20x faster than the O3
//! backend while still exercising every memory-system and
//! branch-predictor effect. TMA slots are accounted on the 1-wide issue
//! clock: every cycle is either a retire slot or a stall attributed to
//! the resource that bound it, so `total_slots() == cycles` exactly.

use crate::branch::{build, BranchPredictor, Btb};
use crate::cache::{Hierarchy, ServiceLevel};
use crate::config::CoreConfig;
use crate::model::{functional_warm, CoreModel, MemCounters, ModelKind};
use crate::o3::{done_window_for, fu_and_latency, FPDIV_BUSY};
use crate::stats::SimStats;
use crate::tlb::Tlb;
use belenos_trace::{FlatTrace, MicroOp, OpKind};

/// The scalar in-order core simulator.
pub struct InOrderCore {
    cfg: CoreConfig,
    hierarchy: Hierarchy,
    itlb: Tlb,
    dtlb: Tlb,
    predictor: Box<dyn BranchPredictor>,
    btb: Btb,
}

impl std::fmt::Debug for InOrderCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InOrderCore")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

/// Completion record of a recent op: (cycle its result is ready, whether
/// the producer was a load — used to attribute dependent stalls to
/// memory vs core).
type Completion = (u64, bool);

impl InOrderCore {
    /// Builds an in-order core for one configuration.
    pub fn new(cfg: CoreConfig) -> Self {
        InOrderCore {
            hierarchy: Hierarchy::new(&cfg),
            itlb: Tlb::new(cfg.tlb_entries),
            dtlb: Tlb::new(cfg.tlb_entries),
            predictor: build(cfg.predictor),
            btb: Btb::new(cfg.btb_entries),
            cfg,
        }
    }

    /// Runs the trace to completion and returns the statistics.
    pub fn run<I: Iterator<Item = MicroOp>>(&mut self, trace: I) -> SimStats {
        self.run_warm(trace, 0)
    }

    /// Runs the trace, discarding the first `warmup_ops` committed ops
    /// from the reported statistics (machine state persists, as in
    /// [`crate::o3::O3Core::run_warm`]). Generic so the flat-trace path
    /// monomorphizes over [`belenos_trace::FlatIter`] with no per-op
    /// virtual dispatch.
    pub fn run_warm<I: Iterator<Item = MicroOp>>(&mut self, trace: I, warmup_ops: u64) -> SimStats {
        let mut stats = SimStats {
            freq_ghz: self.cfg.freq_ghz,
            ..SimStats::default()
        };
        self.hierarchy.reset_timing();
        let base = MemCounters::capture(&self.hierarchy);
        let window = done_window_for(&self.cfg) as u64;
        // `done_window_for` is always a power of two: ring indexing is a
        // mask, never a modulo.
        let wmask = window - 1;
        let mut done_at: Vec<Completion> = vec![(0, false); window as usize];
        let mut warm_snapshot: Option<SimStats> = None;

        // The issue clock: cycle the previous op issued (scalar machine,
        // at most one issue per cycle).
        let mut issue_clock: u64 = 0;
        let mut started = false;
        let mut last_done: u64 = 0;
        let mut last_was_load = false;
        // Front-end readiness (icache/iTLB fills) vs mispredict redirect
        // are tracked separately so their stalls attribute differently.
        let mut fe_ready: u64 = 0;
        let mut fe_is_tlb = false;
        let mut redirect_ready: u64 = 0;
        let mut fpdiv_busy_until: u64 = 0;
        let mut cur_line = u64::MAX;
        for (idx, op) in (0_u64..).zip(trace) {
            // ---------------- frontend ----------------
            let line = (op.pc as u64) >> 6;
            if line != cur_line {
                let fetch_at = fe_ready.max(if started { issue_clock + 1 } else { 0 });
                let mut at = fetch_at;
                if !self.itlb.access(op.pc as u64) {
                    at += self.cfg.tlb_miss_penalty;
                    fe_is_tlb = true;
                } else {
                    fe_is_tlb = false;
                }
                let r = self.hierarchy.inst_access(op.pc as u64, at);
                if r.level != ServiceLevel::L1 {
                    at = r.done;
                }
                fe_ready = at;
                cur_line = line;
            }

            // ---------------- issue (the stall point) ----------------
            let base_cycle = if started { issue_clock + 1 } else { 0 };
            let mut at = base_cycle;
            if redirect_ready > at {
                let stall = redirect_ready - at;
                stats.slots_bad_speculation += stall;
                stats.squash_cycles += stall;
                at = redirect_ready;
            }
            if fe_ready > at {
                let stall = fe_ready - at;
                stats.slots_frontend += stall;
                stats.slots_fe_latency += stall;
                if fe_is_tlb {
                    stats.tlb_stall_cycles += stall;
                } else {
                    stats.icache_stall_cycles += stall;
                }
                at = fe_ready;
            }
            let dep = |d: u32| -> Completion {
                if d == 0 || d as u64 > idx || d as u64 >= window {
                    return (0, false);
                }
                done_at[((idx - d as u64) & wmask) as usize]
            };
            let (d1, m1) = dep(op.dep1);
            let (d2, m2) = dep(op.dep2);
            let (dep_t, dep_mem) = if d1 >= d2 { (d1, m1) } else { (d2, m2) };
            if dep_t > at {
                let stall = dep_t - at;
                if dep_mem {
                    stats.slots_be_memory += stall;
                } else {
                    stats.slots_be_core += stall;
                }
                stats.slots_backend += stall;
                at = dep_t;
            }
            if op.kind == OpKind::FpDiv && fpdiv_busy_until > at {
                let stall = fpdiv_busy_until - at;
                stats.slots_be_core += stall;
                stats.slots_backend += stall;
                at = fpdiv_busy_until;
            }

            // ---------------- execute ----------------
            let (_, latency) = fu_and_latency(op.kind, self.cfg.pause_latency);
            let mut done = at + latency;
            let mut is_load = false;
            match op.kind {
                OpKind::Load => {
                    let mut penalty = 0;
                    if !self.dtlb.access(op.addr) {
                        penalty = self.cfg.tlb_miss_penalty;
                        stats.dtlb_misses += 1;
                    }
                    let r = self.hierarchy.data_access(op.addr, false, at + penalty);
                    done = r.done;
                    is_load = true;
                }
                OpKind::Store => {
                    // Stores retire into the cache immediately at issue
                    // (no store queue to drain on a scalar machine).
                    self.hierarchy.data_access(op.addr, true, at);
                    done = at + 1;
                }
                OpKind::Branch => {
                    let pred = self.predictor.predict(op.pc);
                    self.predictor.update(op.pc, op.taken);
                    stats.branches += 1;
                    if op.taken {
                        if self.btb.lookup(op.pc).is_none() {
                            stats.btb_misses += 1;
                        }
                        self.btb.install(op.pc, op.target);
                        cur_line = u64::MAX;
                    }
                    if pred != op.taken {
                        stats.mispredicts += 1;
                        // Redirect bubble: the front end restarts once the
                        // branch resolves and the pipeline refills.
                        redirect_ready = done + self.cfg.frontend_depth;
                        cur_line = u64::MAX;
                    }
                }
                OpKind::FpDiv => {
                    fpdiv_busy_until = at + FPDIV_BUSY;
                }
                OpKind::Pause | OpKind::Serialize => {
                    // Serializing: nothing younger may issue before the
                    // pause drains — model as a front-end hold.
                    fe_ready = fe_ready.max(done);
                }
                _ => {}
            }
            done_at[(idx & wmask) as usize] = (done, is_load);
            issue_clock = at;
            started = true;
            if done > last_done {
                last_done = done;
                last_was_load = is_load;
            }

            // ---------------- retire accounting ----------------
            stats.exec_mix.count(op.kind);
            stats.commit_mix.count(op.kind);
            stats.slots_by_category[crate::stats::category_index(op.cat)] += 1;
            stats.slots_retiring += 1;
            stats.committed_ops += 1;
            stats.active_fetch_cycles += 1;

            if warm_snapshot.is_none() && warmup_ops > 0 && stats.committed_ops >= warmup_ops {
                let mut snap = stats.clone();
                snap.cycles = issue_clock + 1;
                base.delta_into(&mut snap, &self.hierarchy);
                warm_snapshot = Some(snap);
            }
        }

        // Drain: cycles until the last op's result lands, attributed to
        // the resource that held it.
        let issue_cycles = if started { issue_clock + 1 } else { 0 };
        let drain = last_done.saturating_sub(issue_cycles);
        if drain > 0 {
            if last_was_load {
                stats.slots_be_memory += drain;
            } else {
                stats.slots_be_core += drain;
            }
            stats.slots_backend += drain;
        }
        stats.cycles = issue_cycles + drain;
        base.delta_into(&mut stats, &self.hierarchy);
        if warmup_ops > 0 {
            // As in the O3 model: a trace shorter than the warmup reports
            // an empty measurement window, never unwarmed full stats.
            let snap = warm_snapshot.unwrap_or_else(|| stats.clone());
            stats.subtract(&snap);
        }
        stats
    }
}

impl CoreModel for InOrderCore {
    fn kind(&self) -> ModelKind {
        ModelKind::InOrder
    }

    fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    fn reset(&mut self) {
        self.hierarchy.reset();
        self.itlb.reset();
        self.dtlb.reset();
        self.predictor.reset();
        self.btb.reset();
    }

    fn run_warm(&mut self, trace: &mut dyn Iterator<Item = MicroOp>, warmup_ops: u64) -> SimStats {
        InOrderCore::run_warm(self, trace, warmup_ops)
    }

    fn warm_only(&mut self, trace: &mut dyn Iterator<Item = MicroOp>, max_ops: u64) -> u64 {
        functional_warm(
            &mut self.hierarchy,
            &mut self.itlb,
            &mut self.dtlb,
            self.predictor.as_mut(),
            &mut self.btb,
            trace,
            max_ops,
        )
    }

    fn run_warm_flat(
        &mut self,
        trace: &FlatTrace,
        start: usize,
        end: usize,
        warmup_ops: u64,
    ) -> SimStats {
        InOrderCore::run_warm(self, trace.range(start, end), warmup_ops)
    }

    fn warm_only_flat(&mut self, trace: &FlatTrace, start: usize, end: usize, max_ops: u64) -> u64 {
        functional_warm(
            &mut self.hierarchy,
            &mut self.itlb,
            &mut self.dtlb,
            self.predictor.as_mut(),
            &mut self.btb,
            &mut trace.range(start, end),
            max_ops,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::o3::O3Core;
    use belenos_trace::FnCategory;

    const CAT: FnCategory = FnCategory::Internal;

    fn run_ops(ops: Vec<MicroOp>, cfg: CoreConfig) -> SimStats {
        let mut core = InOrderCore::new(cfg);
        core.run(&mut ops.into_iter())
    }

    fn int_stream(n: usize) -> Vec<MicroOp> {
        (0..n)
            .map(|i| MicroOp::int(0x1000 + (i as u32 % 16) * 4, 0, 0, CAT))
            .collect()
    }

    #[test]
    fn scalar_issue_caps_ipc_at_one() {
        let stats = run_ops(int_stream(10_000), CoreConfig::gem5_baseline());
        assert_eq!(stats.committed_ops, 10_000);
        assert!(stats.ipc() <= 1.0, "scalar ipc {}", stats.ipc());
        assert!(
            stats.ipc() > 0.9,
            "independent ints ~1 ipc: {}",
            stats.ipc()
        );
    }

    #[test]
    fn slots_partition_the_scalar_cycle_budget() {
        let ops: Vec<MicroOp> = (0..4000)
            .map(|i| MicroOp::load(0x3000, 0x100_0000 + i as u64 * 4096, 8, 0, CAT))
            .collect();
        let stats = run_ops(ops, CoreConfig::gem5_baseline());
        assert_eq!(
            stats.total_slots(),
            stats.cycles,
            "1-wide issue: slots == cycles"
        );
        assert_eq!(
            stats.slots_backend,
            stats.slots_be_core + stats.slots_be_memory
        );
    }

    #[test]
    fn in_order_is_slower_than_out_of_order() {
        // Independent loads: the O3 core overlaps misses, the in-order
        // consumer chain cannot overlap dependent work.
        let ops: Vec<MicroOp> = (0..3000)
            .flat_map(|i| {
                [
                    MicroOp::load(0x3000, 0x100_0000 + i as u64 * 4096, 8, 0, CAT),
                    MicroOp::int(0x3008, 1, 0, CAT), // consumes the load
                ]
            })
            .collect();
        let io = run_ops(ops.clone(), CoreConfig::gem5_baseline());
        let mut o3 = O3Core::new(CoreConfig::gem5_baseline());
        let ooo = o3.run(ops.into_iter());
        assert!(
            io.cycles > ooo.cycles,
            "in-order {} must be slower than o3 {}",
            io.cycles,
            ooo.cycles
        );
        assert_eq!(io.committed_ops, ooo.committed_ops);
    }

    #[test]
    fn dependent_loads_stall_on_memory() {
        let ops: Vec<MicroOp> = (0..2000)
            .flat_map(|i| {
                [
                    MicroOp::load(0x3000, 0x200_0000 + i as u64 * 4096, 8, 0, CAT),
                    MicroOp::int(0x3008, 1, 0, CAT),
                ]
            })
            .collect();
        let stats = run_ops(ops, CoreConfig::gem5_baseline());
        assert!(
            stats.slots_be_memory > stats.slots_be_core,
            "miss-bound stream must be memory bound: mem {} core {}",
            stats.slots_be_memory,
            stats.slots_be_core
        );
    }

    #[test]
    fn mispredicts_cost_redirect_bubbles() {
        let mut ops = Vec::new();
        for i in 0..2000 {
            ops.push(MicroOp::int(0x5000, 0, 0, CAT));
            ops.push(MicroOp::branch(0x5010, 0x5000, i % 2 == 0, 0, CAT));
        }
        let stats = run_ops(ops, CoreConfig::gem5_baseline());
        assert_eq!(stats.committed_ops, 4000);
        assert!(stats.mispredicts > 0);
        assert!(stats.slots_bad_speculation > 0);
    }

    #[test]
    fn warmup_clamps_to_short_traces() {
        let mut core = InOrderCore::new(CoreConfig::gem5_baseline());
        let stats = core.run_warm(&mut int_stream(100).into_iter(), 1_000_000);
        assert_eq!(stats.committed_ops, 0);
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.l1d_accesses, 0);
    }

    #[test]
    fn flat_trace_run_is_bit_identical_to_streaming() {
        let ops: Vec<MicroOp> = (0..5000)
            .map(|i| match i % 4 {
                0 => MicroOp::load(0x3000, (i as u64 * 64) % (1 << 20), 8, 1, CAT),
                1 => MicroOp::store(0x3004, (i as u64 * 64) % (1 << 18), 8, 0, CAT),
                2 => MicroOp::branch(0x3008, 0x3000, i % 3 == 0, 0, CAT),
                _ => MicroOp::int(0x300c, 1, 2, CAT),
            })
            .collect();
        let flat: FlatTrace = ops.iter().copied().collect();
        let a = run_ops(ops, CoreConfig::gem5_baseline());
        let mut core = InOrderCore::new(CoreConfig::gem5_baseline());
        let b = CoreModel::run_warm_flat(&mut core, &flat, 0, flat.len(), 0);
        assert_eq!(a, b, "flat replay must be bit-identical");
    }

    #[test]
    fn reruns_on_one_core_are_deterministic_and_warm() {
        let mut core = InOrderCore::new(CoreConfig::gem5_baseline());
        let first = core.run(&mut int_stream(5000).into_iter());
        let second = core.run(&mut int_stream(5000).into_iter());
        assert_eq!(first.committed_ops, second.committed_ops);
        assert!(second.cycles <= first.cycles, "warm icache can only help");
    }
}

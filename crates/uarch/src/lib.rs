//! # belenos-uarch
//!
//! CPU, cache-hierarchy and DRAM simulation — the gem5 substitute of the
//! Belenos reproduction — with **pluggable core-model backends** behind
//! the [`model::CoreModel`] trait.
//!
//! The default backend ([`o3::O3Core`]) mirrors gem5's `X86O3CPU`
//! structure at the fidelity the paper's sensitivity studies need:
//! parameterized fetch/decode/rename/dispatch/issue/commit widths, ROB /
//! issue-queue / load-store-queue capacities, physical register pools,
//! functional-unit latencies, set-associative L1I/L1D/L2 caches with
//! MSHRs, a bandwidth/latency DRAM model, iTLB/dTLB, and four branch
//! predictors (LocalBP, TournamentBP, LTAGE,
//! MultiperspectivePerceptron) behind a BTB. Two cheaper backends — a
//! scalar in-order core ([`inorder::InOrderCore`]) and an analytical
//! bound model ([`analytic::AnalyticCore`]) — share the same component
//! models, so bottleneck diagnoses can be cross-validated across
//! modeling fidelities exactly as the paper cross-validates gem5 against
//! VTune. Select with [`CoreConfig::with_model`] / `BELENOS_MODEL`.
//!
//! Every backend executes the micro-op streams produced by
//! `belenos-trace` and produces gem5-style pipeline-stage counters plus
//! Top-Down Microarchitecture Analysis slot accounting (the VTune
//! taxonomy), which the `belenos-profiler` crate turns into the paper's
//! figures.
//!
//! ```
//! use belenos_uarch::{config::CoreConfig, o3::O3Core};
//! use belenos_trace::{PhaseLog, KernelCall, expand::Expander};
//!
//! let mut log = PhaseLog::new();
//! log.record(KernelCall::Dot { n: 256 });
//! let mut core = O3Core::new(CoreConfig::gem5_baseline());
//! let stats = core.run(Expander::new(&log));
//! assert!(stats.committed_ops > 0);
//! assert!(stats.ipc() > 0.1);
//! ```

// Index-based loops over CSR/row-pointer structures are the idiomatic
// form for these numeric kernels; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod analytic;
pub mod branch;
pub mod cache;
pub mod config;
pub mod digest;
pub mod dram;
pub mod inorder;
pub mod json;
pub mod model;
pub mod o3;
pub mod stats;
pub mod tlb;

pub use analytic::AnalyticCore;
pub use config::{CoreConfig, SamplingConfig};
pub use digest::Fnv64;
pub use inorder::InOrderCore;
pub use model::{build_model, CoreModel, ModelKind};
pub use o3::O3Core;
pub use stats::SimStats;

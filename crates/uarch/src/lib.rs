//! # belenos-uarch
//!
//! Cycle-level out-of-order CPU, cache-hierarchy and DRAM simulator — the
//! gem5 substitute of the Belenos reproduction.
//!
//! The model mirrors gem5's `X86O3CPU` structure at the fidelity the
//! paper's sensitivity studies need: parameterized fetch/decode/rename/
//! dispatch/issue/commit widths, ROB / issue-queue / load-store-queue
//! capacities, physical register pools, functional-unit latencies,
//! set-associative L1I/L1D/L2 caches with MSHRs, a bandwidth/latency DRAM
//! model, iTLB/dTLB, and four branch predictors (LocalBP, TournamentBP,
//! LTAGE, MultiperspectivePerceptron) behind a BTB.
//!
//! It executes the micro-op streams produced by `belenos-trace` and
//! produces gem5-style pipeline-stage counters plus Top-Down
//! Microarchitecture Analysis slot accounting (the VTune taxonomy), which
//! the `belenos-profiler` crate turns into the paper's figures.
//!
//! ```
//! use belenos_uarch::{config::CoreConfig, core::O3Core};
//! use belenos_trace::{PhaseLog, KernelCall, expand::Expander};
//!
//! let mut log = PhaseLog::new();
//! log.record(KernelCall::Dot { n: 256 });
//! let mut core = O3Core::new(CoreConfig::gem5_baseline());
//! let stats = core.run(Expander::new(&log));
//! assert!(stats.committed_ops > 0);
//! assert!(stats.ipc() > 0.1);
//! ```

// Index-based loops over CSR/row-pointer structures are the idiomatic
// form for these numeric kernels; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod branch;
pub mod cache;
pub mod config;
pub mod core;
pub mod digest;
pub mod dram;
pub mod stats;
pub mod tlb;

pub use config::{CoreConfig, SamplingConfig};
pub use core::O3Core;
pub use digest::Fnv64;
pub use stats::SimStats;

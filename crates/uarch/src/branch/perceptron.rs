//! Simplified `MultiperspectivePerceptron`: a hashed perceptron summing
//! weights selected by several history "perspectives" (global-history
//! segments of different lengths plus the PC itself).

use super::BranchPredictor;

const NUM_FEATURES: usize = 4;
const TABLE_BITS: usize = 9;
const TABLE_ENTRIES: usize = 1 << TABLE_BITS;
/// Training threshold (scaled for 8 features, ~1.93 * h + 14 heuristic).
const THETA: i32 = 24;
const WEIGHT_MAX: i8 = 63;
const WEIGHT_MIN: i8 = -64;

/// Hashed multiperspective perceptron predictor.
#[derive(Debug, Clone)]
pub struct PerceptronBp {
    /// One weight table per feature.
    weights: Vec<Vec<i8>>,
    ghr: u64,
}

impl PerceptronBp {
    /// Compact hashed perceptron (4 feature tables x 512 weights).
    pub fn new() -> Self {
        PerceptronBp {
            weights: vec![vec![0; TABLE_ENTRIES]; NUM_FEATURES],
            ghr: 0,
        }
    }

    /// Feature hash for table `f` at `pc`: mixes a history segment whose
    /// length grows with `f` (0 = pure PC bias weight).
    fn index(&self, f: usize, pc: u32) -> usize {
        let seg_len = [0usize, 6, 14, 28][f];
        let seg = if seg_len == 0 {
            0
        } else {
            (self.ghr & ((1u64 << seg_len) - 1)) as usize
        };
        let h = seg.wrapping_mul(0x9E37_79B9) ^ ((pc >> 2) as usize).wrapping_mul(0x85EB_CA6B);
        (h ^ (f << 7)) & (TABLE_ENTRIES - 1)
    }

    fn sum(&self, pc: u32) -> i32 {
        (0..NUM_FEATURES)
            .map(|f| self.weights[f][self.index(f, pc)] as i32)
            .sum()
    }
}

impl Default for PerceptronBp {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchPredictor for PerceptronBp {
    fn predict(&mut self, pc: u32) -> bool {
        self.sum(pc) >= 0
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let s = self.sum(pc);
        let pred = s >= 0;
        // Perceptron rule: train on mispredict or low confidence.
        if pred != taken || s.abs() < THETA {
            for f in 0..NUM_FEATURES {
                let idx = self.index(f, pc);
                let w = &mut self.weights[f][idx];
                if taken {
                    *w = (*w).saturating_add(1).min(WEIGHT_MAX);
                } else {
                    *w = (*w).saturating_sub(1).max(WEIGHT_MIN);
                }
            }
        }
        self.ghr = (self.ghr << 1) | taken as u64;
    }

    fn reset(&mut self) {
        for table in &mut self.weights {
            table.fill(0);
        }
        self.ghr = 0;
    }

    fn name(&self) -> &'static str {
        "MultiperspectivePerceptron64KB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(pattern: &[bool], reps: usize) -> f64 {
        let mut p = PerceptronBp::new();
        let mut correct = 0usize;
        let mut total = 0usize;
        for _ in 0..reps {
            for &b in pattern {
                if p.predict(0x2000) == b {
                    correct += 1;
                }
                p.update(0x2000, b);
                total += 1;
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn learns_bias() {
        assert!(run(&[true], 300) > 0.98);
    }

    #[test]
    fn learns_linearly_separable_history_patterns() {
        // Strict alternation is linearly separable on 1 history bit.
        let acc = run(&[true, false], 500);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn loop_pattern_reasonable() {
        let pattern: Vec<bool> = (0..12).map(|i| i != 11).collect();
        let acc = run(&pattern, 200);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn weights_saturate_without_overflow() {
        let mut p = PerceptronBp::new();
        for _ in 0..10_000 {
            p.update(0x30, true);
        }
        assert!(p.predict(0x30));
        for _ in 0..10_000 {
            p.update(0x30, false);
        }
        assert!(!p.predict(0x30));
    }
}

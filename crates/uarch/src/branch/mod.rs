//! Branch predictors and the branch target buffer.
//!
//! The four predictors the paper sweeps (Fig. 12), implemented after their
//! gem5 namesakes: `LocalBP`, `TournamentBP` (baseline), `LTAGE` and a
//! simplified `MultiperspectivePerceptron`.

mod local;
mod ltage;
mod perceptron;
mod tournament;

pub use local::LocalBp;
pub use ltage::LtageBp;
pub use perceptron::PerceptronBp;
pub use tournament::TournamentBp;

use crate::config::BranchPredictorKind;

/// A conditional-branch direction predictor.
///
/// `Send` so core models holding a boxed predictor can be pooled and
/// handed between worker threads by the experiment layer.
pub trait BranchPredictor: Send {
    /// Predicts the direction of the branch at `pc`.
    fn predict(&mut self, pc: u32) -> bool;

    /// Trains with the resolved outcome (called at commit, in order).
    fn update(&mut self, pc: u32, taken: bool);

    /// Forgets all training, returning the predictor to its just-built
    /// state without releasing its tables. Must be indistinguishable
    /// from a freshly constructed instance.
    fn reset(&mut self);

    /// Predictor display name.
    fn name(&self) -> &'static str;
}

/// Instantiates the predictor selected by a configuration.
pub fn build(kind: BranchPredictorKind) -> Box<dyn BranchPredictor> {
    match kind {
        BranchPredictorKind::Local => Box::new(LocalBp::new(2048)),
        BranchPredictorKind::Tournament => Box::new(TournamentBp::new()),
        BranchPredictorKind::Ltage => Box::new(LtageBp::new()),
        BranchPredictorKind::Perceptron => Box::new(PerceptronBp::new()),
    }
}

/// Direct-mapped branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<(u32, u32)>, // (tag pc, target)
    mask: usize,
    /// Lookups.
    pub accesses: u64,
    /// Target misses (taken branch with unknown target).
    pub misses: u64,
}

impl Btb {
    /// A BTB with `entries` slots (rounded down to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "btb must have entries");
        let n = entries.next_power_of_two() / if entries.is_power_of_two() { 1 } else { 2 };
        Btb {
            entries: vec![(u32::MAX, 0); n],
            mask: n - 1,
            accesses: 0,
            misses: 0,
        }
    }

    /// Looks up the target for `pc`; `None` means BTB miss.
    pub fn lookup(&mut self, pc: u32) -> Option<u32> {
        self.accesses += 1;
        let idx = (pc as usize >> 2) & self.mask;
        let (tag, target) = self.entries[idx];
        if tag == pc {
            Some(target)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Installs/updates the target of a taken branch.
    pub fn install(&mut self, pc: u32, target: u32) {
        let idx = (pc as usize >> 2) & self.mask;
        self.entries[idx] = (pc, target);
    }

    /// Empties the buffer and zeroes its counters (just-built state),
    /// keeping the entry array allocated.
    pub fn reset(&mut self) {
        self.entries.fill((u32::MAX, 0));
        self.accesses = 0;
        self.misses = 0;
    }
}

/// Saturating 2-bit counter helpers shared by the predictors.
#[inline]
pub(crate) fn ctr_up(c: &mut u8, max: u8) {
    if *c < max {
        *c += 1;
    }
}

#[inline]
pub(crate) fn ctr_down(c: &mut u8) {
    if *c > 0 {
        *c -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives `pred` with `pattern` repeated `reps` times; returns accuracy.
    pub(crate) fn accuracy(
        pred: &mut dyn BranchPredictor,
        pc: u32,
        pattern: &[bool],
        reps: usize,
    ) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for _ in 0..reps {
            for &taken in pattern {
                if pred.predict(pc) == taken {
                    correct += 1;
                }
                pred.update(pc, taken);
                total += 1;
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn all_predictors_learn_always_taken() {
        for kind in [
            BranchPredictorKind::Local,
            BranchPredictorKind::Tournament,
            BranchPredictorKind::Ltage,
            BranchPredictorKind::Perceptron,
        ] {
            let mut p = build(kind);
            let acc = accuracy(p.as_mut(), 0x400, &[true], 500);
            assert!(acc > 0.95, "{} only {acc}", p.name());
        }
    }

    #[test]
    fn loop_exit_pattern_separates_predictors() {
        // taken x7, not-taken x1 (classic loop): history-based predictors
        // must beat the local 2-bit counter.
        let pattern: Vec<bool> = (0..8).map(|i| i != 7).collect();
        let mut local = build(BranchPredictorKind::Local);
        let mut ltage = build(BranchPredictorKind::Ltage);
        let acc_local = accuracy(local.as_mut(), 0x800, &pattern, 200);
        let acc_ltage = accuracy(ltage.as_mut(), 0x800, &pattern, 200);
        assert!(
            acc_ltage > acc_local + 0.05,
            "ltage {acc_ltage} should beat local {acc_local}"
        );
        assert!(
            acc_ltage > 0.95,
            "ltage should nail a loop pattern: {acc_ltage}"
        );
    }

    #[test]
    fn tournament_beats_local_on_alternation() {
        let pattern = [true, false];
        let mut local = build(BranchPredictorKind::Local);
        let mut tour = build(BranchPredictorKind::Tournament);
        let acc_local = accuracy(local.as_mut(), 0xc00, &pattern, 400);
        let acc_tour = accuracy(tour.as_mut(), 0xc00, &pattern, 400);
        assert!(acc_tour > 0.9, "tournament {acc_tour}");
        assert!(acc_tour > acc_local, "{acc_tour} vs {acc_local}");
    }

    #[test]
    fn btb_miss_then_hit() {
        let mut btb = Btb::new(1024);
        assert_eq!(btb.lookup(0x1234), None);
        btb.install(0x1234, 0x5678);
        assert_eq!(btb.lookup(0x1234), Some(0x5678));
        assert_eq!(btb.misses, 1);
        assert_eq!(btb.accesses, 2);
    }

    #[test]
    fn btb_conflicts_evict() {
        let mut btb = Btb::new(16);
        btb.install(0x0, 0x100);
        // Same index (pc >> 2 & 15): pc = 16*4 = 0x40.
        btb.install(0x40, 0x200);
        assert_eq!(btb.lookup(0x0), None);
        assert_eq!(btb.lookup(0x40), Some(0x200));
    }
}

//! gem5 `LTAGE` (simplified): a bimodal base predictor plus tagged tables
//! indexed by geometrically increasing global-history lengths, with
//! useful-bit replacement — the strongest predictor in the paper's sweep.

use super::{ctr_down, ctr_up, BranchPredictor};

const NUM_TABLES: usize = 6;
const HIST_LENGTHS: [usize; NUM_TABLES] = [4, 8, 16, 32, 64, 128];
const TABLE_BITS: usize = 12;
const TABLE_ENTRIES: usize = 1 << TABLE_BITS;
const TAG_BITS: u32 = 10;
const BASE_ENTRIES: usize = 4096;

/// Sentinel for an unoccupied entry; real tags are 10-bit (< 1024).
const INVALID_TAG: u16 = u16::MAX;

/// Fixed xorshift seed for the allocation tie-breaker (deterministic
/// across runs and across [`BranchPredictor::reset`]).
const RNG_SEED: u64 = 0x2545_F491_4F6C_DD1D;

#[derive(Debug, Clone, Copy)]
struct TageEntry {
    tag: u16,
    /// 3-bit signed counter stored biased (0..7; >=4 = taken).
    ctr: u8,
    /// Useful bit(s).
    useful: u8,
}

/// Simplified TAGE with 6 tagged tables over a 128-bit global history.
#[derive(Debug, Clone)]
pub struct LtageBp {
    base: Vec<u8>,
    tables: Vec<Vec<TageEntry>>,
    ghr: u128,
    /// Allocation tie-breaker (gem5 uses a similar LFSR).
    rng: u64,
}

impl LtageBp {
    /// Standard-size LTAGE.
    pub fn new() -> Self {
        LtageBp {
            base: vec![1; BASE_ENTRIES],
            tables: vec![
                vec![
                    TageEntry {
                        tag: INVALID_TAG,
                        ctr: 3,
                        useful: 0
                    };
                    TABLE_ENTRIES
                ];
                NUM_TABLES
            ],
            ghr: 0,
            rng: RNG_SEED,
        }
    }

    fn fold_history(&self, bits: usize, out_bits: usize) -> usize {
        let mut acc = 0usize;
        let mut h = self.ghr;
        let mut remaining = bits;
        while remaining > 0 {
            let take = remaining.min(out_bits);
            acc ^= (h as usize) & ((1 << take) - 1);
            h >>= take;
            remaining -= take;
        }
        acc & ((1 << out_bits) - 1)
    }

    fn index(&self, t: usize, pc: u32) -> usize {
        let h = self.fold_history(HIST_LENGTHS[t], TABLE_BITS);
        (((pc >> 2) as usize) ^ h ^ (t << 3)) & (TABLE_ENTRIES - 1)
    }

    fn tag(&self, t: usize, pc: u32) -> u16 {
        let h = self.fold_history(HIST_LENGTHS[t], TAG_BITS as usize);
        ((((pc >> 2) as usize) ^ (h << 1)) & ((1 << TAG_BITS) - 1)) as u16
    }

    /// Longest-history matching table, if any.
    fn provider(&self, pc: u32) -> Option<usize> {
        (0..NUM_TABLES)
            .rev()
            .find(|&t| self.tables[t][self.index(t, pc)].tag == self.tag(t, pc))
    }

    fn base_index(pc: u32) -> usize {
        ((pc >> 2) as usize) % BASE_ENTRIES
    }

    /// Alternate prediction: the next-longest matching table below
    /// `provider`, else the bimodal base.
    fn alt_predict(&self, provider: usize, pc: u32) -> bool {
        for t in (0..provider).rev() {
            let e = &self.tables[t][self.index(t, pc)];
            if e.tag == self.tag(t, pc) {
                return e.ctr >= 4;
            }
        }
        self.base[Self::base_index(pc)] >= 2
    }

    fn next_rand(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }
}

impl Default for LtageBp {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchPredictor for LtageBp {
    fn predict(&mut self, pc: u32) -> bool {
        match self.provider(pc) {
            Some(t) => {
                let e = &self.tables[t][self.index(t, pc)];
                // TAGE altpred policy: a freshly allocated, weak entry is
                // less reliable than the alternate prediction.
                if e.useful == 0 && (e.ctr == 3 || e.ctr == 4) {
                    self.alt_predict(t, pc)
                } else {
                    e.ctr >= 4
                }
            }
            None => self.base[Self::base_index(pc)] >= 2,
        }
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let provider = self.provider(pc);
        let pred = match provider {
            Some(t) => self.tables[t][self.index(t, pc)].ctr >= 4,
            None => self.base[Self::base_index(pc)] >= 2,
        };
        // Train the provider (or base).
        match provider {
            Some(t) => {
                let idx = self.index(t, pc);
                let e = &mut self.tables[t][idx];
                if taken {
                    ctr_up(&mut e.ctr, 7);
                } else {
                    ctr_down(&mut e.ctr);
                }
                if pred == taken {
                    ctr_up(&mut e.useful, 3);
                } else {
                    ctr_down(&mut e.useful);
                }
            }
            None => {
                let b = &mut self.base[Self::base_index(pc)];
                if taken {
                    ctr_up(b, 3);
                } else {
                    ctr_down(b);
                }
            }
        }
        // On a misprediction, allocate in a longer-history table.
        if pred != taken {
            let start = provider.map_or(0, |t| t + 1);
            if start < NUM_TABLES {
                // Pick the first not-useful entry among the longer tables;
                // decay a random candidate if all are useful.
                let mut allocated = false;
                for t in start..NUM_TABLES {
                    let idx = self.index(t, pc);
                    if self.tables[t][idx].useful == 0 {
                        let tag = self.tag(t, pc);
                        self.tables[t][idx] = TageEntry {
                            tag,
                            ctr: if taken { 4 } else { 3 },
                            useful: 0,
                        };
                        allocated = true;
                        break;
                    }
                }
                if !allocated {
                    let t = start + (self.next_rand() as usize) % (NUM_TABLES - start);
                    let idx = self.index(t, pc);
                    ctr_down(&mut self.tables[t][idx].useful);
                }
            }
        }
        self.ghr = (self.ghr << 1) | taken as u128;
    }

    fn reset(&mut self) {
        self.base.fill(1);
        for table in &mut self.tables {
            table.fill(TageEntry {
                tag: INVALID_TAG,
                ctr: 3,
                useful: 0,
            });
        }
        self.ghr = 0;
        self.rng = RNG_SEED;
    }

    fn name(&self) -> &'static str {
        "LTAGE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(pattern: &[bool], reps: usize) -> f64 {
        let mut p = LtageBp::new();
        let mut correct = 0usize;
        let mut total = 0usize;
        for _ in 0..reps {
            for &b in pattern {
                if p.predict(0x1000) == b {
                    correct += 1;
                }
                p.update(0x1000, b);
                total += 1;
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn nails_long_loop_patterns() {
        // 31-iteration loop: beyond local-history reach, within TAGE's.
        let pattern: Vec<bool> = (0..32).map(|i| i != 31).collect();
        let acc = run(&pattern, 80);
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn handles_biased_branches() {
        assert!(run(&[true], 500) > 0.99);
        assert!(run(&[false], 500) > 0.99);
    }

    #[test]
    fn short_period_patterns() {
        let acc = run(&[true, false, false, true, true, false], 300);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn allocation_recovers_from_aliasing() {
        // Two branches with conflicting behaviour at different pcs.
        let mut p = LtageBp::new();
        let mut correct = 0;
        let total = 2000;
        for i in 0..total {
            let pc = if i % 2 == 0 { 0x4000 } else { 0x8000 };
            let taken = (i % 2 == 0) ^ (i % 6 < 3);
            if p.predict(pc) == taken {
                correct += 1;
            }
            p.update(pc, taken);
        }
        assert!(correct as f64 / total as f64 > 0.8, "{correct}/{total}");
    }
}

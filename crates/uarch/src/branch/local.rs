//! gem5 `LocalBP`: a table of per-PC 2-bit saturating counters.

use super::{ctr_down, ctr_up, BranchPredictor};

/// Simple bimodal predictor indexed by PC.
#[derive(Debug, Clone)]
pub struct LocalBp {
    counters: Vec<u8>,
    mask: usize,
}

impl LocalBp {
    /// A predictor with `entries` counters (power of two recommended).
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0);
        let n = entries.next_power_of_two();
        LocalBp {
            counters: vec![1; n],
            mask: n - 1,
        }
    }

    fn index(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & self.mask
    }
}

impl BranchPredictor for LocalBp {
    fn predict(&mut self, pc: u32) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let i = self.index(pc);
        if taken {
            ctr_up(&mut self.counters[i], 3);
        } else {
            ctr_down(&mut self.counters[i]);
        }
    }

    fn reset(&mut self) {
        self.counters.fill(1);
    }

    fn name(&self) -> &'static str {
        "LocalBP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_taken() {
        let mut p = LocalBp::new(64);
        for _ in 0..4 {
            p.update(0x10, true);
        }
        assert!(p.predict(0x10));
        // One not-taken must not flip a saturated counter.
        p.update(0x10, false);
        assert!(p.predict(0x10));
        p.update(0x10, false);
        assert!(!p.predict(0x10));
    }

    #[test]
    fn distinct_pcs_do_not_interfere_without_aliasing() {
        let mut p = LocalBp::new(1024);
        for _ in 0..4 {
            p.update(0x100, true);
            p.update(0x200, false);
        }
        assert!(p.predict(0x100));
        assert!(!p.predict(0x200));
    }

    #[test]
    fn alternating_pattern_confuses_two_bit_counter() {
        let mut p = LocalBp::new(64);
        let mut correct = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            if p.predict(0x40) == taken {
                correct += 1;
            }
            p.update(0x40, taken);
        }
        // 2-bit counters hover around chance on strict alternation.
        assert!(correct <= 120, "local bp should struggle: {correct}/200");
    }
}

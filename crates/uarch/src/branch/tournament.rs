//! gem5 `TournamentBP`: local-history + global-history predictors with a
//! choice table (Alpha 21264 style). The paper's Table II baseline.

use super::{ctr_down, ctr_up, BranchPredictor};

const LOCAL_HIST_BITS: usize = 10;
const LOCAL_HIST_ENTRIES: usize = 1024;
const LOCAL_CTR_ENTRIES: usize = 1 << LOCAL_HIST_BITS;
const GLOBAL_BITS: usize = 12;
const GLOBAL_ENTRIES: usize = 1 << GLOBAL_BITS;

/// Tournament predictor: chooses between a local two-level predictor and
/// a global (gshare-style) predictor per branch.
#[derive(Debug, Clone)]
pub struct TournamentBp {
    local_hist: Vec<u16>,
    local_ctrs: Vec<u8>,
    global_ctrs: Vec<u8>,
    choice: Vec<u8>,
    ghr: u32,
}

impl TournamentBp {
    /// Standard-size tournament predictor.
    pub fn new() -> Self {
        TournamentBp {
            local_hist: vec![0; LOCAL_HIST_ENTRIES],
            local_ctrs: vec![1; LOCAL_CTR_ENTRIES],
            global_ctrs: vec![1; GLOBAL_ENTRIES],
            choice: vec![1; GLOBAL_ENTRIES],
            ghr: 0,
        }
    }

    fn local_index(&self, pc: u32) -> usize {
        (self.local_hist[((pc >> 2) as usize) % LOCAL_HIST_ENTRIES] as usize) % LOCAL_CTR_ENTRIES
    }

    fn global_index(&self, pc: u32) -> usize {
        ((self.ghr as usize) ^ ((pc >> 2) as usize)) % GLOBAL_ENTRIES
    }

    fn choice_index(&self) -> usize {
        (self.ghr as usize) % GLOBAL_ENTRIES
    }
}

impl Default for TournamentBp {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchPredictor for TournamentBp {
    fn predict(&mut self, pc: u32) -> bool {
        let local = self.local_ctrs[self.local_index(pc)] >= 2;
        let global = self.global_ctrs[self.global_index(pc)] >= 2;
        let use_global = self.choice[self.choice_index()] >= 2;
        if use_global {
            global
        } else {
            local
        }
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let li = self.local_index(pc);
        let gi = self.global_index(pc);
        let ci = self.choice_index();
        let local_pred = self.local_ctrs[li] >= 2;
        let global_pred = self.global_ctrs[gi] >= 2;
        // Train the chooser toward whichever component was right.
        if local_pred != global_pred {
            if global_pred == taken {
                ctr_up(&mut self.choice[ci], 3);
            } else {
                ctr_down(&mut self.choice[ci]);
            }
        }
        // Train both components.
        if taken {
            ctr_up(&mut self.local_ctrs[li], 3);
            ctr_up(&mut self.global_ctrs[gi], 3);
        } else {
            ctr_down(&mut self.local_ctrs[li]);
            ctr_down(&mut self.global_ctrs[gi]);
        }
        // Update histories.
        let h = &mut self.local_hist[((pc >> 2) as usize) % LOCAL_HIST_ENTRIES];
        *h = ((*h << 1) | taken as u16) & ((1 << LOCAL_HIST_BITS) - 1) as u16;
        self.ghr = ((self.ghr << 1) | taken as u32) & ((1 << GLOBAL_BITS) - 1) as u32;
    }

    fn reset(&mut self) {
        self.local_hist.fill(0);
        self.local_ctrs.fill(1);
        self.global_ctrs.fill(1);
        self.choice.fill(1);
        self.ghr = 0;
    }

    fn name(&self) -> &'static str {
        "TournamentBP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_local_period_patterns() {
        // Period-4 pattern is captured by 10-bit local history.
        let mut p = TournamentBp::new();
        let pattern = [true, true, false, true];
        let mut correct = 0;
        let total = 400;
        for i in 0..total {
            let taken = pattern[i % 4];
            if p.predict(0x100) == taken {
                correct += 1;
            }
            p.update(0x100, taken);
        }
        assert!(correct as f64 / total as f64 > 0.85, "{correct}/{total}");
    }

    #[test]
    fn learns_correlated_branches_via_global_history() {
        // Branch B always equals the last outcome of branch A: only the
        // global component can see that.
        let mut p = TournamentBp::new();
        let mut correct = 0;
        let mut last_a = false;
        let total = 500;
        for i in 0..total {
            let a = (i / 3) % 2 == 0;
            p.update(0x10, a);
            let b = last_a;
            if p.predict(0x20) == b {
                correct += 1;
            }
            p.update(0x20, b);
            last_a = a;
        }
        assert!(correct as f64 / total as f64 > 0.7, "{correct}/{total}");
    }

    #[test]
    fn chooser_moves_toward_better_component() {
        let mut p = TournamentBp::new();
        // Strongly biased branch: both components learn; chooser stays sane.
        for _ in 0..100 {
            p.update(0x40, true);
        }
        assert!(p.predict(0x40));
    }
}

//! Machine configurations.
//!
//! [`CoreConfig::gem5_baseline`] reproduces the paper's Table II verbatim;
//! [`CoreConfig::host_like`] approximates the i9-14900K workstation used
//! for the VTune experiments. Every sweep in the paper (frequency, cache
//! sizes, pipeline width, LQ/SQ depth, branch predictor) is a plain field
//! edit on this struct.

/// Branch-predictor selection (the paper's Fig. 12 sweep axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchPredictorKind {
    /// gem5 `LocalBP`: per-PC 2-bit counters.
    Local,
    /// gem5 `TournamentBP`: local + global + choice (Table II baseline).
    Tournament,
    /// gem5 `LTAGE`: bimodal base + tagged geometric-history tables.
    Ltage,
    /// gem5 `MultiperspectivePerceptron64KB` (simplified hashed perceptron).
    Perceptron,
}

impl BranchPredictorKind {
    /// Display name matching the paper's figure labels.
    pub fn label(self) -> &'static str {
        match self {
            BranchPredictorKind::Local => "LocalBP",
            BranchPredictorKind::Tournament => "TournamentBP",
            BranchPredictorKind::Ltage => "LTAGE",
            BranchPredictorKind::Perceptron => "MultiperspectivePerceptron64KB",
        }
    }

    /// Every predictor, in the paper's Fig. 12 order.
    pub const ALL: [BranchPredictorKind; 4] = [
        BranchPredictorKind::Tournament,
        BranchPredictorKind::Local,
        BranchPredictorKind::Ltage,
        BranchPredictorKind::Perceptron,
    ];

    /// Parses a predictor label (case-insensitive; accepts the paper's
    /// figure labels plus short aliases).
    pub fn parse(s: &str) -> Option<BranchPredictorKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "localbp" | "local" => Some(BranchPredictorKind::Local),
            "tournamentbp" | "tournament" => Some(BranchPredictorKind::Tournament),
            "ltage" => Some(BranchPredictorKind::Ltage),
            "multiperspectiveperceptron64kb" | "perceptron" | "mpp64kb" => {
                Some(BranchPredictorKind::Perceptron)
            }
            _ => None,
        }
    }
}

/// Trace-sampling strategy for op-budgeted simulations.
///
/// With sampling **off**, a budgeted run simulates only the *first*
/// `max_ops` micro-ops of the trace (prefix truncation) — cheap but
/// biased toward assembly and early solver iterations. With SMARTS-style
/// systematic sampling ([`SamplingConfig::smarts`]), the op budget is
/// split into `intervals` detailed measurement windows spread evenly
/// across the whole trace; between windows the microarchitectural state
/// (caches, TLBs, BTB, branch predictor) is *functionally warmed* at
/// zero pipeline cost, and the merged window statistics are extrapolated
/// to whole-trace estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingConfig {
    /// Number of measured intervals; `0` disables sampling entirely
    /// (prefix truncation, the historical behavior).
    pub intervals: usize,
    /// Fraction of each measured interval discarded as detailed warmup
    /// (measurement starts with warm pipeline-adjacent state, as gem5
    /// does after a checkpoint restore).
    pub warmup_frac: f64,
}

impl SamplingConfig {
    /// Sampling disabled: budgeted runs truncate the trace prefix.
    pub fn off() -> Self {
        SamplingConfig {
            intervals: 0,
            warmup_frac: 0.0,
        }
    }

    /// SMARTS-style systematic sampling with `intervals` measurement
    /// windows and a 25% per-window detailed-warmup discard (mirroring
    /// the prefix mode's quarter-budget warmup). `smarts(0)` is
    /// equivalent to [`SamplingConfig::off`].
    ///
    /// Prefer *many small* windows: few large intervals alias with the
    /// periodic phase structure of solver traces (assemble → factor →
    /// solve per Newton iteration) and can be badly biased; around a
    /// hundred or more intervals the estimate converges tightly.
    pub fn smarts(intervals: usize) -> Self {
        SamplingConfig {
            intervals,
            warmup_frac: if intervals == 0 { 0.0 } else { 0.25 },
        }
    }

    /// True when sampling is disabled (prefix-truncation mode).
    pub fn is_off(&self) -> bool {
        self.intervals == 0
    }

    /// Stable content digest, mixed into simulation-result cache keys so
    /// a sampled run can never alias a prefix-truncated (or differently
    /// sampled) run of the same workload/config/budget.
    pub fn stable_digest(&self) -> u64 {
        let mut h = crate::digest::Fnv64::new();
        h.write_str("SamplingConfig-v1");
        h.write_usize(self.intervals);
        h.write_f64(self.warmup_frac);
        h.finish()
    }
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// One cache level's parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways).
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
    /// Miss-status holding registers (outstanding-miss limit).
    pub mshrs: usize,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible by
    /// `assoc * line`).
    pub fn sets(&self) -> usize {
        let sets = self.size_bytes / (self.assoc * self.line_bytes);
        assert!(
            sets > 0 && sets * self.assoc * self.line_bytes == self.size_bytes,
            "inconsistent cache geometry: {} B / ({} ways x {} B)",
            self.size_bytes,
            self.assoc,
            self.line_bytes
        );
        sets
    }
}

/// Full machine configuration for one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Which core-model backend replays the trace (`BELENOS_MODEL`);
    /// part of [`CoreConfig::stable_digest`] so backends never alias in
    /// result caches.
    pub model: crate::model::ModelKind,
    /// Core clock in GHz (scales DRAM latency in cycles).
    pub freq_ghz: f64,
    /// Fetch width (ops/cycle).
    pub fetch_width: usize,
    /// Decode width.
    pub decode_width: usize,
    /// Rename width.
    pub rename_width: usize,
    /// Dispatch width.
    pub dispatch_width: usize,
    /// Issue width.
    pub issue_width: usize,
    /// Writeback width.
    pub writeback_width: usize,
    /// Squash width (ops removed per cycle on a flush; affects recovery).
    pub squash_width: usize,
    /// Commit width.
    pub commit_width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Issue-queue entries.
    pub iq_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Integer physical registers.
    pub int_regs: usize,
    /// Floating-point physical registers.
    pub fp_regs: usize,
    /// Front-end depth in cycles (fetch-to-dispatch; squash refill cost).
    pub frontend_depth: u64,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// DRAM random-access latency in nanoseconds.
    pub dram_latency_ns: f64,
    /// DRAM peak bandwidth in GB/s.
    pub dram_bandwidth_gbps: f64,
    /// TLB entries (both i and d side).
    pub tlb_entries: usize,
    /// TLB miss (page-walk) penalty in cycles.
    pub tlb_miss_penalty: u64,
    /// Branch predictor.
    pub predictor: BranchPredictorKind,
    /// BTB entries.
    pub btb_entries: usize,
    /// Taken-branch redirect bubble when the BTB misses.
    pub btb_miss_penalty: u64,
    /// Effective PAUSE latency in cycles (spin-wait serialization cost).
    pub pause_latency: u64,
    /// Per-class functional-unit counts: (int ALU, int mul, FP add, FP
    /// mul/div units, memory ports).
    pub fu_counts: [usize; 5],
}

impl CoreConfig {
    /// The paper's Table II gem5 baseline (X86O3CPU, DDR4-2400).
    pub fn gem5_baseline() -> Self {
        CoreConfig {
            model: crate::model::ModelKind::O3,
            freq_ghz: 3.0,
            fetch_width: 4,
            decode_width: 6,
            rename_width: 6,
            dispatch_width: 6,
            issue_width: 6,
            writeback_width: 8,
            squash_width: 6,
            commit_width: 4,
            rob_entries: 224,
            iq_entries: 128,
            lq_entries: 72,
            sq_entries: 56,
            int_regs: 280,
            fp_regs: 168,
            frontend_depth: 6,
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 8,
                line_bytes: 64,
                hit_latency: 1,
                mshrs: 32,
            },
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 8,
                line_bytes: 64,
                hit_latency: 4,
                mshrs: 32,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                assoc: 16,
                line_bytes: 64,
                hit_latency: 14,
                mshrs: 48,
            },
            dram_latency_ns: 60.0,
            dram_bandwidth_gbps: 38.4, // dual-channel DDR4-2400
            tlb_entries: 64,
            tlb_miss_penalty: 40,
            predictor: BranchPredictorKind::Tournament,
            btb_entries: 4096,
            btb_miss_penalty: 2,
            pause_latency: 24,
            fu_counts: [4, 1, 2, 2, 2],
        }
    }

    /// Approximation of the paper's VTune workstation (i9-14900K P-core,
    /// DDR5-6000, ~60 GB/s platform ceiling as measured in the paper).
    pub fn host_like() -> Self {
        CoreConfig {
            model: crate::model::ModelKind::O3,
            freq_ghz: 3.2, // fixed frequency as pinned in the paper
            fetch_width: 8,
            decode_width: 8,
            rename_width: 8,
            dispatch_width: 8,
            issue_width: 8,
            writeback_width: 8,
            squash_width: 8,
            commit_width: 8,
            rob_entries: 512,
            iq_entries: 192,
            lq_entries: 128,
            sq_entries: 96,
            int_regs: 384,
            fp_regs: 320,
            frontend_depth: 8,
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 8,
                line_bytes: 64,
                hit_latency: 1,
                mshrs: 32,
            },
            l1d: CacheConfig {
                size_bytes: 48 * 1024,
                assoc: 12,
                line_bytes: 64,
                hit_latency: 5,
                mshrs: 48,
            },
            l2: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                assoc: 16,
                line_bytes: 64,
                hit_latency: 16,
                mshrs: 64,
            },
            dram_latency_ns: 50.0,
            dram_bandwidth_gbps: 60.0,
            tlb_entries: 128,
            tlb_miss_penalty: 40,
            predictor: BranchPredictorKind::Ltage,
            btb_entries: 8192,
            btb_miss_penalty: 2,
            pause_latency: 48, // PAUSE grew expensive on recent Intel cores
            fu_counts: [6, 2, 4, 3, 3],
        }
    }

    /// Uniformly sets fetch/decode/rename/dispatch/issue widths (the
    /// paper's Fig. 10 "pipeline width" sweep keeps commit at min(width,
    /// commit) as gem5 does; we scale commit alongside, capped at 8).
    pub fn with_pipeline_width(mut self, width: usize) -> Self {
        assert!(width > 0, "width must be positive");
        self.fetch_width = width.clamp(2, 8);
        self.decode_width = width;
        self.rename_width = width;
        self.dispatch_width = width;
        self.issue_width = width;
        self.commit_width = width.clamp(2, 6);
        self
    }

    /// Sets LQ/SQ depths (Fig. 11 sweep).
    pub fn with_lsq(mut self, lq: usize, sq: usize) -> Self {
        assert!(lq > 0 && sq > 0, "queue depths must be positive");
        self.lq_entries = lq;
        self.sq_entries = sq;
        self
    }

    /// Sets the core frequency (Fig. 8 sweep).
    pub fn with_frequency(mut self, ghz: f64) -> Self {
        assert!(ghz > 0.0, "frequency must be positive");
        self.freq_ghz = ghz;
        self
    }

    /// Sets the L1 cache sizes, keeping 8-way associativity (Fig. 9a-c).
    pub fn with_l1_size(mut self, bytes: usize) -> Self {
        self.l1i.size_bytes = bytes;
        self.l1d.size_bytes = bytes;
        self
    }

    /// Sets the L2 capacity (Fig. 9d-e).
    pub fn with_l2_size(mut self, bytes: usize) -> Self {
        self.l2.size_bytes = bytes;
        self
    }

    /// Sets ROB and IQ capacities (the paper's instruction-windowing
    /// ablation: "less than 4 % improvement" from growing them).
    pub fn with_rob_iq(mut self, rob: usize, iq: usize) -> Self {
        assert!(rob > 0 && iq > 0, "window sizes must be positive");
        self.rob_entries = rob;
        self.iq_entries = iq;
        self
    }

    /// Sets the branch predictor (Fig. 12).
    pub fn with_predictor(mut self, p: BranchPredictorKind) -> Self {
        self.predictor = p;
        self
    }

    /// Selects the core-model backend that replays the trace (see
    /// [`crate::model::CoreModel`] for the trade-offs).
    pub fn with_model(mut self, model: crate::model::ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Converts a nanosecond latency to core cycles at this frequency.
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * self.freq_ghz).round().max(1.0) as u64
    }

    /// Stable content digest of the full configuration.
    ///
    /// Two configurations digest equal iff every simulation-relevant field
    /// is equal, and the value is identical across processes and builds —
    /// `belenos-runner` keys its content-addressed result cache on it.
    /// The leading version tag must be bumped whenever a field is added so
    /// stale on-disk entries can never alias a new configuration.
    pub fn stable_digest(&self) -> u64 {
        let mut h = crate::digest::Fnv64::new();
        h.write_str("CoreConfig-v2");
        h.write_str(self.model.label());
        h.write_f64(self.freq_ghz);
        for w in [
            self.fetch_width,
            self.decode_width,
            self.rename_width,
            self.dispatch_width,
            self.issue_width,
            self.writeback_width,
            self.squash_width,
            self.commit_width,
            self.rob_entries,
            self.iq_entries,
            self.lq_entries,
            self.sq_entries,
            self.int_regs,
            self.fp_regs,
        ] {
            h.write_usize(w);
        }
        h.write_u64(self.frontend_depth);
        for c in [&self.l1i, &self.l1d, &self.l2] {
            h.write_usize(c.size_bytes);
            h.write_usize(c.assoc);
            h.write_usize(c.line_bytes);
            h.write_u64(c.hit_latency);
            h.write_usize(c.mshrs);
        }
        h.write_f64(self.dram_latency_ns);
        h.write_f64(self.dram_bandwidth_gbps);
        h.write_usize(self.tlb_entries);
        h.write_u64(self.tlb_miss_penalty);
        h.write_str(self.predictor.label());
        h.write_usize(self.btb_entries);
        h.write_u64(self.btb_miss_penalty);
        h.write_u64(self.pause_latency);
        for n in self.fu_counts {
            h.write_usize(n);
        }
        h.finish()
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::gem5_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_values() {
        let c = CoreConfig::gem5_baseline();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.dispatch_width, 6);
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.commit_width, 4);
        assert_eq!(c.rename_width, 6);
        assert_eq!(c.writeback_width, 8);
        assert_eq!(c.squash_width, 6);
        assert_eq!(c.rob_entries, 224);
        assert_eq!(c.iq_entries, 128);
        assert_eq!(c.lq_entries, 72);
        assert_eq!(c.sq_entries, 56);
        assert_eq!(c.int_regs, 280);
        assert_eq!(c.fp_regs, 168);
        assert_eq!(c.l1i.size_bytes, 32 * 1024);
        assert_eq!(c.l1d.assoc, 8);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
        assert_eq!(c.l2.assoc, 16);
        assert_eq!(c.l1d.line_bytes, 64);
        assert_eq!(c.predictor, BranchPredictorKind::Tournament);
        assert_eq!(c.freq_ghz, 3.0);
    }

    #[test]
    fn sampling_config_digests_separate() {
        let off = SamplingConfig::off();
        let s4 = SamplingConfig::smarts(4);
        let s8 = SamplingConfig::smarts(8);
        assert!(off.is_off());
        assert!(!s4.is_off());
        assert_ne!(off.stable_digest(), s4.stable_digest());
        assert_ne!(s4.stable_digest(), s8.stable_digest());
        assert_eq!(
            s4.stable_digest(),
            SamplingConfig::smarts(4).stable_digest()
        );
        assert!(SamplingConfig::smarts(0).is_off());
    }

    #[test]
    fn cache_geometry() {
        let c = CoreConfig::gem5_baseline().l1d;
        assert_eq!(c.sets(), 64); // 32 kB / (8 x 64 B)
    }

    #[test]
    fn sweep_builders() {
        let c = CoreConfig::gem5_baseline().with_pipeline_width(2);
        assert_eq!(c.issue_width, 2);
        assert_eq!(c.dispatch_width, 2);
        let c = CoreConfig::gem5_baseline().with_lsq(32, 24);
        assert_eq!(c.lq_entries, 32);
        let c = CoreConfig::gem5_baseline().with_frequency(4.0);
        assert_eq!(c.freq_ghz, 4.0);
        let c = CoreConfig::gem5_baseline().with_l1_size(8 * 1024);
        assert_eq!(c.l1d.sets(), 16);
        let c = CoreConfig::gem5_baseline().with_predictor(BranchPredictorKind::Ltage);
        assert_eq!(c.predictor.label(), "LTAGE");
    }

    #[test]
    fn ns_conversion_scales_with_frequency() {
        let slow = CoreConfig::gem5_baseline().with_frequency(1.0);
        let fast = CoreConfig::gem5_baseline().with_frequency(4.0);
        assert_eq!(slow.ns_to_cycles(60.0), 60);
        assert_eq!(fast.ns_to_cycles(60.0), 240);
    }

    #[test]
    fn stable_digest_separates_configs() {
        let base = CoreConfig::gem5_baseline();
        assert_eq!(
            base.stable_digest(),
            CoreConfig::gem5_baseline().stable_digest()
        );
        // Every sweep axis must move the digest.
        let variants = [
            base.clone().with_frequency(1.0),
            base.clone().with_pipeline_width(2),
            base.clone().with_lsq(32, 24),
            base.clone().with_l1_size(8 * 1024),
            base.clone().with_l2_size(256 * 1024),
            base.clone().with_rob_iq(448, 256),
            base.clone().with_predictor(BranchPredictorKind::Ltage),
            base.clone().with_model(crate::model::ModelKind::InOrder),
            base.clone().with_model(crate::model::ModelKind::Analytic),
            CoreConfig::host_like(),
        ];
        for v in &variants {
            assert_ne!(v.stable_digest(), base.stable_digest(), "{v:?}");
        }
        // Sweep points that reproduce the baseline digest equal.
        assert_eq!(
            base.clone().with_frequency(3.0).stable_digest(),
            base.stable_digest()
        );
        assert_eq!(
            base.clone().with_lsq(72, 56).stable_digest(),
            base.stable_digest()
        );
    }

    #[test]
    #[should_panic(expected = "inconsistent cache geometry")]
    fn bad_geometry_panics() {
        let mut c = CoreConfig::gem5_baseline().l1d;
        c.size_bytes = 1000; // not divisible
        let _ = c.sets();
    }
}

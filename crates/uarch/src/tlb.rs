//! A small fully-associative TLB with LRU replacement.

/// Fully-associative translation lookaside buffer over 4 KiB pages.
///
/// Entries live in a flat `(page, stamp)` array scanned linearly: at
/// TLB sizes (tens of entries) that is markedly faster than a hash map
/// on the simulator's hottest path, and the hit/miss/eviction sequence
/// is exactly the LRU behavior the hash-map implementation had (stamps
/// are unique, so the LRU victim is unambiguous).
///
/// Page indexing is a single shift (`addr >> PAGE_SHIFT`) — like the
/// cache's power-of-two set masks, the per-access path contains no
/// division or modulo.
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    /// Resident pages, unordered (parallel to `stamps`). Split from
    /// the stamps so the hit scan streams one contiguous `u64` array —
    /// the compiler vectorizes the compare loop.
    pages: Vec<u64>,
    /// Last-use stamp per resident page.
    stamps: Vec<u64>,
    /// Slot of the most recent hit; consecutive touches to one page
    /// (the common pattern for streaming kernels) skip the scan.
    mru: usize,
    stamp: u64,
    /// Total lookups.
    pub accesses: u64,
    /// Misses (page walks).
    pub misses: u64,
}

const PAGE_SHIFT: u32 = 12;

impl Tlb {
    /// A TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tlb capacity must be positive");
        Tlb {
            capacity,
            pages: Vec::with_capacity(capacity),
            stamps: Vec::with_capacity(capacity),
            mru: 0,
            stamp: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Looks up the page of `addr`; returns `true` on hit. Misses install
    /// the translation (after the caller-accounted walk penalty).
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.stamp += 1;
        let page = addr >> PAGE_SHIFT;
        if let Some(&cached) = self.pages.get(self.mru) {
            if cached == page {
                self.stamps[self.mru] = self.stamp;
                return true;
            }
        }
        if let Some(i) = self.pages.iter().position(|&p| p == page) {
            self.stamps[i] = self.stamp;
            self.mru = i;
            return true;
        }
        self.misses += 1;
        if self.pages.len() >= self.capacity {
            // Evict LRU (stamps are unique; the victim is unambiguous).
            let victim = self
                .stamps
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .map(|(i, _)| i)
                .expect("non-empty at capacity");
            self.pages.swap_remove(victim);
            self.stamps.swap_remove(victim);
        }
        self.mru = self.pages.len();
        self.pages.push(page);
        self.stamps.push(self.stamp);
        false
    }

    /// Returns the TLB to its just-built state (empty, counters zero),
    /// keeping the entry vectors' allocations.
    pub fn reset(&mut self) {
        self.pages.clear();
        self.stamps.clear();
        self.mru = 0;
        self.stamp = 0;
        self.accesses = 0;
        self.misses = 0;
    }

    /// Miss rate over all accesses so far.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_then_hits() {
        let mut tlb = Tlb::new(4);
        assert!(!tlb.access(0x1000));
        assert!(tlb.access(0x1008));
        assert!(tlb.access(0x1ff8));
        assert!(!tlb.access(0x2000));
        assert_eq!(tlb.misses, 2);
    }

    #[test]
    fn lru_eviction() {
        let mut tlb = Tlb::new(2);
        tlb.access(0x1000); // page 1
        tlb.access(0x2000); // page 2
        tlb.access(0x1000); // touch page 1 (page 2 becomes LRU)
        tlb.access(0x3000); // evicts page 2
        assert!(tlb.access(0x1000), "page 1 must survive");
        assert!(!tlb.access(0x2000), "page 2 must have been evicted");
    }

    #[test]
    fn miss_rate_reporting() {
        let mut tlb = Tlb::new(16);
        for i in 0..8 {
            tlb.access(i << 12);
        }
        for i in 0..8 {
            tlb.access(i << 12);
        }
        assert!((tlb.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Tlb::new(0);
    }
}

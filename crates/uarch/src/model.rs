//! Pluggable core-model backends.
//!
//! The Belenos methodology cross-validates bottleneck diagnoses across
//! modeling tools of very different cost and fidelity (the paper uses
//! gem5 detailed simulation against VTune top-down on real hardware). The
//! [`CoreModel`] trait is the seam that makes the same comparison
//! possible inside this reproduction: every backend consumes the same
//! micro-op trace, shares the same cache/TLB/branch-predictor/DRAM
//! component models, and produces the same [`SimStats`] (including TMA
//! slot accounting), so the figure and sweep layers are
//! backend-agnostic.
//!
//! Three backends exist today:
//!
//! | kind       | backend                    | speed      | fidelity |
//! |------------|----------------------------|------------|----------|
//! | `o3`       | [`crate::o3::O3Core`]      | baseline   | cycle-level out-of-order (gem5 `X86O3CPU` style) |
//! | `inorder`  | [`crate::inorder::InOrderCore`] | ~10-20x | scalar in-order scoreboard, stalls at issue |
//! | `analytic` | [`crate::analytic::AnalyticCore`] | ≥50x  | port-pressure + MLP bound model, no per-cycle simulation |
//!
//! Selection is a plain [`CoreConfig`] field ([`ModelKind`]), set from
//! the environment with `BELENOS_MODEL=o3|inorder|analytic` by the bench
//! binaries, and is part of [`CoreConfig::stable_digest`] so results
//! from different backends can never alias in the runner's
//! content-addressed cache.

use crate::branch::{BranchPredictor, Btb};
use crate::cache::Hierarchy;
use crate::config::CoreConfig;
use crate::stats::SimStats;
use crate::tlb::Tlb;
use belenos_trace::{FlatTrace, MicroOp, OpKind};

/// Which core-model backend simulates a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelKind {
    /// Cycle-level out-of-order core (the gem5 substitute; default).
    #[default]
    O3,
    /// Scalar in-order core: same memory/branch components, one op issued
    /// per cycle, program order enforced at issue.
    InOrder,
    /// Analytical bound model: one functional pass computing
    /// port-pressure, dependency-chain and memory-level-parallelism
    /// bounds — no per-cycle simulation.
    Analytic,
}

impl ModelKind {
    /// Every backend, in fidelity order (most detailed first).
    pub const ALL: [ModelKind; 3] = [ModelKind::O3, ModelKind::InOrder, ModelKind::Analytic];

    /// Stable lowercase name, as accepted by `BELENOS_MODEL`.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::O3 => "o3",
            ModelKind::InOrder => "inorder",
            ModelKind::Analytic => "analytic",
        }
    }

    /// Parses a `BELENOS_MODEL` value (case-insensitive).
    pub fn parse(s: &str) -> Option<ModelKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "o3" | "ooo" | "detailed" => Some(ModelKind::O3),
            "inorder" | "in-order" | "io" => Some(ModelKind::InOrder),
            "analytic" | "analytical" | "bound" => Some(ModelKind::Analytic),
            _ => None,
        }
    }

    /// Backend selection from the `BELENOS_MODEL` environment variable;
    /// unset or unparsable values fall back to [`ModelKind::O3`]. A value
    /// that exists but is not understood raises a structured telemetry
    /// warning (which falls back to stderr when no sink is configured and
    /// is silenced entirely by `BELENOS_TELEMETRY=off`).
    pub fn from_env() -> ModelKind {
        match std::env::var("BELENOS_MODEL") {
            Ok(v) => ModelKind::parse(&v).unwrap_or_else(|| {
                belenos_telemetry::global().warn(&format!(
                    "BELENOS_MODEL={v} not understood; using the o3 backend"
                ));
                ModelKind::O3
            }),
            Err(_) => ModelKind::O3,
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A core-model backend: anything that can replay a micro-op trace into
/// [`SimStats`].
///
/// All backends share the contract the experiment layer relies on:
///
/// * **Determinism** — equal configuration and trace produce bit-equal
///   statistics, so results are cacheable and parallel runs are
///   reproducible.
/// * **Persistent machine state** — caches, TLBs, branch predictor and
///   BTB survive across calls on one instance; interval sampling
///   interleaves [`CoreModel::warm_only`] gaps with
///   [`CoreModel::run_warm`] measurement windows on a single model.
/// * **Complete accounting** — every committed op is counted exactly
///   once, and the TMA slot buckets partition `cycles × commit_width`
///   (retiring + front-end + bad-speculation + back-end), so top-down
///   bottleneck comparisons are meaningful across backends.
///
/// Traces are taken as `&mut dyn Iterator` (not a generic parameter) so
/// backends stay object-safe: the experiment layer holds a
/// `Box<dyn CoreModel>` chosen at run time from [`ModelKind`].
///
/// `Send` so the experiment layer can pool built models and hand them
/// between worker threads.
pub trait CoreModel: Send {
    /// Which backend this is.
    fn kind(&self) -> ModelKind;

    /// The configuration the model was built from.
    fn config(&self) -> &CoreConfig;

    /// Returns the model to its just-built state — cold caches and TLBs,
    /// untrained predictor and BTB, zeroed counters — while keeping
    /// every internal allocation. A reset model must be observationally
    /// indistinguishable from a freshly constructed one: the experiment
    /// layer reuses pooled models across simulation calls on the
    /// strength of this contract, and the backend digest pins hold it to
    /// bit-identical statistics.
    fn reset(&mut self);

    /// Runs the trace to completion, discarding the first `warmup_ops`
    /// committed ops from the reported statistics (machine state
    /// persists; this is measurement warmup). When the trace is shorter
    /// than the warmup, the reported measurement window is empty.
    fn run_warm(&mut self, trace: &mut dyn Iterator<Item = MicroOp>, warmup_ops: u64) -> SimStats;

    /// Runs the whole trace and reports full statistics.
    fn run(&mut self, trace: &mut dyn Iterator<Item = MicroOp>) -> SimStats {
        self.run_warm(trace, 0)
    }

    /// Functionally warms long-lived machine state (caches, TLBs,
    /// predictor, BTB) from up to `max_ops` trace ops without simulating
    /// cycles or producing statistics; returns the ops consumed. This is
    /// the SMARTS-style gap warming between sampled measurement windows.
    fn warm_only(&mut self, trace: &mut dyn Iterator<Item = MicroOp>, max_ops: u64) -> u64;

    /// [`CoreModel::run_warm`] over ops `start..end` of a pre-expanded
    /// [`FlatTrace`]. The default routes through the `dyn Iterator`
    /// seam and is therefore bit-identical to streaming the same range;
    /// the cycle-level backends override it with a monomorphized loop
    /// (no per-op virtual dispatch) that produces identical statistics.
    fn run_warm_flat(
        &mut self,
        trace: &FlatTrace,
        start: usize,
        end: usize,
        warmup_ops: u64,
    ) -> SimStats {
        self.run_warm(&mut trace.range(start, end), warmup_ops)
    }

    /// [`CoreModel::warm_only`] over ops `start..end` of a
    /// [`FlatTrace`]; returns the ops consumed.
    fn warm_only_flat(&mut self, trace: &FlatTrace, start: usize, end: usize, max_ops: u64) -> u64 {
        self.warm_only(&mut trace.range(start, end), max_ops)
    }

    /// Runs an entire [`FlatTrace`] and reports full statistics.
    fn run_flat(&mut self, trace: &FlatTrace) -> SimStats {
        self.run_warm_flat(trace, 0, trace.len(), 0)
    }
}

/// Builds the backend selected by `cfg.model`.
pub fn build_model(cfg: &CoreConfig) -> Box<dyn CoreModel> {
    match cfg.model {
        ModelKind::O3 => Box::new(crate::o3::O3Core::new(cfg.clone())),
        ModelKind::InOrder => Box::new(crate::inorder::InOrderCore::new(cfg.clone())),
        ModelKind::Analytic => Box::new(crate::analytic::AnalyticCore::new(cfg.clone())),
    }
}

/// Shared functional-warming pass: caches and TLBs observe every memory
/// and fetch access, the branch predictor and BTB observe every branch
/// outcome, but no cycles are simulated. Returns the ops consumed (fewer
/// than `max_ops` only when the trace ends).
pub(crate) fn functional_warm<I: Iterator<Item = MicroOp> + ?Sized>(
    hierarchy: &mut Hierarchy,
    itlb: &mut Tlb,
    dtlb: &mut Tlb,
    predictor: &mut dyn BranchPredictor,
    btb: &mut Btb,
    trace: &mut I,
    max_ops: u64,
) -> u64 {
    let mut consumed = 0u64;
    let mut now = 0u64;
    let mut cur_line = u64::MAX;
    while consumed < max_ops {
        let Some(op) = trace.next() else { break };
        consumed += 1;
        let line = (op.pc as u64) >> 6;
        if line != cur_line {
            itlb.access(op.pc as u64);
            hierarchy.inst_access(op.pc as u64, now);
            cur_line = line;
        }
        match op.kind {
            OpKind::Load => {
                dtlb.access(op.addr);
                hierarchy.data_access(op.addr, false, now);
            }
            OpKind::Store => {
                dtlb.access(op.addr);
                hierarchy.data_access(op.addr, true, now);
            }
            OpKind::Branch => {
                predictor.update(op.pc, op.taken);
                if op.taken {
                    btb.install(op.pc, op.target);
                    cur_line = u64::MAX;
                }
            }
            _ => {}
        }
        now += 1;
        // Warming never reads completion timestamps, but every miss
        // records one (`note_miss_outstanding`); drop them regularly
        // so a long warm gap cannot accumulate millions of them.
        if consumed.is_multiple_of(65_536) {
            hierarchy.reset_timing();
        }
    }
    hierarchy.reset_timing();
    consumed
}

/// Snapshot of the hierarchy's cumulative memory counters; reports
/// per-run deltas when one core runs several measurement intervals (the
/// counters on the cache structs are process-cumulative).
#[derive(Debug, Clone, Copy)]
pub(crate) struct MemCounters {
    l1i_accesses: u64,
    l1i_misses: u64,
    l1d_accesses: u64,
    l1d_misses: u64,
    l2_accesses: u64,
    l2_misses: u64,
    dram_lines: u64,
}

impl MemCounters {
    pub(crate) fn capture(h: &Hierarchy) -> Self {
        MemCounters {
            l1i_accesses: h.l1i.accesses,
            l1i_misses: h.l1i.misses,
            l1d_accesses: h.l1d.accesses,
            l1d_misses: h.l1d.misses,
            l2_accesses: h.l2.accesses,
            l2_misses: h.l2.misses,
            dram_lines: h.dram.lines_transferred,
        }
    }

    /// `current - baseline` counters as a flat array, in the order
    /// `[l1i_accesses, l1i_misses, l1d_accesses, l1d_misses,
    /// l2_accesses, l2_misses, dram_lines]` — used by the analytic
    /// backend's per-window accumulation.
    pub(crate) fn delta_counts(&self, h: &Hierarchy) -> [u64; 7] {
        [
            h.l1i.accesses - self.l1i_accesses,
            h.l1i.misses - self.l1i_misses,
            h.l1d.accesses - self.l1d_accesses,
            h.l1d.misses - self.l1d_misses,
            h.l2.accesses - self.l2_accesses,
            h.l2.misses - self.l2_misses,
            h.dram.lines_transferred - self.dram_lines,
        ]
    }

    /// Writes `current - baseline` memory counters into `stats`.
    pub(crate) fn delta_into(&self, stats: &mut SimStats, h: &Hierarchy) {
        stats.l1i_accesses = h.l1i.accesses - self.l1i_accesses;
        stats.l1i_misses = h.l1i.misses - self.l1i_misses;
        stats.l1d_accesses = h.l1d.accesses - self.l1d_accesses;
        stats.l1d_misses = h.l1d.misses - self.l1d_misses;
        stats.l2_accesses = h.l2.accesses - self.l2_accesses;
        stats.l2_misses = h.l2.misses - self.l2_misses;
        stats.dram_lines = h.dram.lines_transferred - self.dram_lines;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip_through_parse() {
        for kind in ModelKind::ALL {
            assert_eq!(ModelKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(ModelKind::parse("O3"), Some(ModelKind::O3));
        assert_eq!(ModelKind::parse("In-Order"), Some(ModelKind::InOrder));
        assert_eq!(ModelKind::parse("ANALYTIC"), Some(ModelKind::Analytic));
        assert_eq!(ModelKind::parse("gem5"), None);
        assert_eq!(ModelKind::default(), ModelKind::O3);
    }

    #[test]
    fn build_model_selects_the_configured_backend() {
        for kind in ModelKind::ALL {
            let cfg = CoreConfig::gem5_baseline().with_model(kind);
            let model = build_model(&cfg);
            assert_eq!(model.kind(), kind);
            assert_eq!(model.config().model, kind);
        }
    }

    #[test]
    fn every_backend_commits_every_op() {
        use belenos_trace::FnCategory;
        let ops: Vec<MicroOp> = (0..2000)
            .map(|i| MicroOp::int(0x1000 + (i as u32 % 16) * 4, 0, 0, FnCategory::Internal))
            .collect();
        for kind in ModelKind::ALL {
            let cfg = CoreConfig::gem5_baseline().with_model(kind);
            let mut model = build_model(&cfg);
            let stats = model.run(&mut ops.clone().into_iter());
            assert_eq!(stats.committed_ops, 2000, "{kind} must commit all ops");
            assert!(stats.cycles > 0, "{kind} must consume cycles");
            assert!(stats.ipc() > 0.0, "{kind} must report progress");
            let (r, fe, bs, be) = stats.topdown();
            assert!(
                (r + fe + bs + be - 1.0).abs() < 1e-9,
                "{kind} TMA fractions must partition"
            );
        }
    }

    #[test]
    fn every_backend_supports_interval_sampling_surface() {
        use belenos_trace::FnCategory;
        let ops: Vec<MicroOp> = (0..4096)
            .map(|i| MicroOp::load(0x3000, (i % 64) as u64 * 64, 8, 0, FnCategory::Internal))
            .collect();
        for kind in ModelKind::ALL {
            let cfg = CoreConfig::gem5_baseline().with_model(kind);
            let mut model = build_model(&cfg);
            let mut it = ops.clone().into_iter();
            let consumed = model.warm_only(&mut it, 1024);
            assert_eq!(consumed, 1024, "{kind} warming consumes the gap");
            let stats = model.run_warm(&mut it, 0);
            assert_eq!(stats.committed_ops, 4096 - 1024, "{kind} measures rest");
        }
    }
}

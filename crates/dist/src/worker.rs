//! The worker loop: claim, simulate, publish the result, repeat.
//!
//! A worker is stateless between jobs — everything it knows about a
//! job comes from the lease file it holds, and everything it produces
//! lands in the shared cache before the completion marker appears. The
//! process can therefore be SIGKILLed at any instant:
//!
//! * killed before the claim → the board entry is untouched;
//! * killed mid-simulation → the lease stops heartbeating, ages past
//!   the TTL, and another worker steals and re-runs the job;
//! * killed between the cache write and the done marker → the stealer
//!   re-runs the (deterministic) simulation and overwrites the cache
//!   entry with identical bytes.
//!
//! No state in the worker is ever the only copy of anything.

use crate::board::{self, ClaimedJob, DistConfig, DoneDoc, JobDoc};
use belenos::Experiment;
use belenos_runner::{run_caught, Cache, CacheKey, Simulate};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// What one worker did over its lifetime (returned by [`run_worker`]).
#[derive(Debug, Clone, Default)]
pub struct WorkerSummary {
    /// Sanitized worker name.
    pub worker: String,
    /// Jobs executed (claimed open entries + stolen leases).
    pub executed: u64,
    /// Of those, jobs acquired by stealing an expired lease.
    pub stolen: u64,
    /// Jobs whose simulation failed (done marker carries the message).
    pub failed: u64,
    /// Summed execution wall (prepare + simulate) across jobs.
    pub busy: Duration,
}

/// How long an idle worker sleeps between board scans. Short enough
/// that a just-published burst is picked up promptly, long enough that
/// a big fleet polling one NFS directory stays polite.
const IDLE_POLL: Duration = Duration::from_millis(25);

/// Runs the worker loop until `stop` is raised or — when
/// `idle_timeout` is set — the board has yielded nothing for that
/// long.
///
/// The loop prefers open board entries (cheap renames) and only scans
/// for expired leases when the board is empty, so steals happen when
/// there is genuinely nothing else to do. Each executed job:
///
/// 1. starts a [`board::Heartbeat`] on the lease,
/// 2. prepares the scenario (FE solve or trace-store replay; prepared
///    experiments are memoized by scenario digest, so a sweep of N
///    configs over one workload solves once),
/// 3. simulates with the runner's per-job panic containment,
/// 4. inserts the result into the shared cache (write-then-rename),
/// 5. writes the done marker and releases the lease.
///
/// # Errors
///
/// Only layout creation can fail; everything after that degrades to
/// per-job error markers instead of tearing the worker down.
pub fn run_worker(
    cfg: &DistConfig,
    stop: &AtomicBool,
    idle_timeout: Option<Duration>,
) -> std::io::Result<WorkerSummary> {
    cfg.ensure_layout()?;
    let tele = belenos_telemetry::global();
    let span = tele.span("worker", &[("worker", cfg.worker.as_str().into())]);
    let cache = Cache::with_disk(cfg.cache_dir());
    // Prepared experiments, memoized by scenario content digest: a
    // config sweep publishes many jobs over the same scenario and the
    // FE solve must not be repaid per job.
    let mut prepared: HashMap<u64, Experiment> = HashMap::new();
    let mut summary = WorkerSummary {
        worker: cfg.worker.clone(),
        ..WorkerSummary::default()
    };
    let mut idle_since = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        let claimed = board::claim_open(cfg).or_else(|| board::claim_expired(cfg));
        let Some(job) = claimed else {
            if idle_timeout.is_some_and(|t| idle_since.elapsed() >= t) {
                break;
            }
            std::thread::sleep(IDLE_POLL);
            continue;
        };
        idle_since = Instant::now();
        execute_job(cfg, &cache, &mut prepared, &job, &mut summary, span.id());
    }
    drop(span);
    Ok(summary)
}

/// Runs one claimed job to its done marker. Never panics outward: a
/// malformed document, a failed prepare and a wedged simulation all
/// become error-carrying done markers.
fn execute_job(
    cfg: &DistConfig,
    cache: &Cache,
    prepared: &mut HashMap<u64, Experiment>,
    job: &ClaimedJob,
    summary: &mut WorkerSummary,
    worker_span: u64,
) {
    let tele = belenos_telemetry::global();
    let started = Instant::now();
    let heartbeat = board::Heartbeat::start(cfg, job.digest);
    let label = match &job.doc {
        Ok(doc) => format!("{} {}", doc.workload, doc.label),
        Err(_) => format!("{:016x}", job.digest),
    };
    let job_span = tele.span_at(
        worker_span,
        "dist_job",
        &[
            ("label", label.as_str().into()),
            ("stolen", job.stolen.into()),
        ],
    );

    // Deterministic-CI hook: hold the claimed job (while heartbeating)
    // so kill/steal scenarios have a window to aim at.
    if let Some(delay) = test_delay() {
        std::thread::sleep(delay);
    }

    let error = match &job.doc {
        Ok(doc) => simulate_and_insert(cache, prepared, doc, job.digest).err(),
        Err(msg) => Some(msg.clone()),
    };
    drop(job_span);
    let wall = started.elapsed();
    summary.executed += 1;
    summary.busy += wall;
    if job.stolen {
        summary.stolen += 1;
    }
    if let Some(msg) = &error {
        summary.failed += 1;
        tele.warn(&format!("dist job {label} failed: {msg}"));
    }

    // Result first (inside simulate_and_insert), marker second: a
    // coordinator that sees the marker may rely on the cache entry
    // existing. The lease goes last; if a thief took it mid-job, both
    // runs produced identical results and the remove is a no-op.
    let done = DoneDoc {
        digest: job.digest,
        worker: cfg.worker.clone(),
        wall_s: wall.as_secs_f64(),
        stolen: job.stolen,
        error,
    };
    if let Err(e) = board::write_done(cfg, &done) {
        tele.warn(&format!("dist: done marker for {label}: {e}"));
    }
    drop(heartbeat);
    board::remove_lease(cfg, job.digest);
}

/// Prepares (memoized), verifies the cache identity, simulates, and
/// inserts the result into the shared cache.
fn simulate_and_insert(
    cache: &Cache,
    prepared: &mut HashMap<u64, Experiment>,
    doc: &JobDoc,
    digest: u64,
) -> Result<(), String> {
    let scenario_digest = doc.scenario.stable_digest();
    if let std::collections::hash_map::Entry::Vacant(slot) = prepared.entry(scenario_digest) {
        let exp = Experiment::prepare(&doc.scenario)
            .map_err(|e| format!("prepare '{}': {e}", doc.workload))?;
        slot.insert(exp);
    }
    let exp = &prepared[&scenario_digest];
    let key = CacheKey::new(
        exp.workload_id(),
        exp.fingerprint(),
        &doc.config,
        doc.max_ops,
        &doc.sampling,
    );
    if key.address() != digest {
        // The rebuilt simulation is not the one that was published —
        // a wire-format or digest regression. Refusing loudly beats
        // poisoning the shared cache under the wrong address.
        return Err(format!(
            "cache identity mismatch: published {digest:016x}, rebuilt {:016x} \
             (workload '{}')",
            key.address(),
            doc.workload
        ));
    }
    let stats = run_caught(
        &format!("simulation of '{}' panicked", doc.workload),
        || {
            // Qualified call: Experiment's inherent `simulate` (no sampling
            // parameter) would shadow the trait method.
            Simulate::simulate(exp, &doc.config, doc.max_ops, &doc.sampling)
        },
    )?;
    cache.insert(key, &stats);
    Ok(())
}

/// `BELENOS_WORKER_DELAY_MS`: artificial per-job hold used by tests
/// and CI to stage kill/steal scenarios deterministically.
fn test_delay() -> Option<Duration> {
    std::env::var("BELENOS_WORKER_DELAY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
}

//! # belenos-dist
//!
//! Distributed, crash-safe campaign execution over a shared filesystem.
//!
//! `belenos-runner` parallelizes within one process; campaigns sweeping
//! the open scenario space outgrow a single host. This crate lets N
//! `belenos worker` processes — on one machine or many sharing a
//! filesystem (NFS, a bind mount, a plain directory) — cooperatively
//! execute one campaign, with the existing content-addressed disk cache
//! as the coordination substrate. No sockets, no daemons, no registry
//! dependencies: the protocol is files and atomic renames.
//!
//! ## The job board
//!
//! A dist directory (`BELENOS_DIST_DIR` / `--dist-dir`) holds five
//! subdirectories:
//!
//! ```text
//! <dist-dir>/
//!   board/   <digest>.job            open jobs, one JSON document each
//!   leases/  <digest>.<worker>.lease claimed jobs; mtime = last heartbeat
//!   done/    <digest>.done           completion markers (worker, wall, error)
//!   cache/   <wl>-<digest>.stats     the shared content-addressed result cache
//!   traces/  ...                     the shared persistent trace store
//! ```
//!
//! The coordinator (`belenos campaign run --distributed`) publishes the
//! cache-miss subset of each batch as board entries keyed by
//! [`CacheKey`](belenos_runner::CacheKey) digest. Each job document is
//! self-contained: the scenario's explicit JSON normal form plus the
//! full machine configuration, budget and sampling strategy — enough
//! for a worker that has never seen the campaign spec to reproduce the
//! simulation bit-for-bit.
//!
//! ## Leases, heartbeats, steals
//!
//! * **Claim** = `rename(board/X.job, leases/X.<me>.lease)`. Rename is
//!   atomic on POSIX filesystems, so exactly one of N racing workers
//!   wins; the losers see `ENOENT` and move on.
//! * **Heartbeat** = refreshing the lease file's mtime every
//!   `heartbeat` interval while the job runs. A slow job stays alive
//!   indefinitely as long as its owner keeps beating.
//! * **Steal** = `rename(leases/X.<other>.lease, leases/X.<me>.lease)`
//!   when the lease mtime is older than `lease_ttl`. A SIGKILLed
//!   worker stops heartbeating, its leases expire, and any live worker
//!   re-runs the jobs — work is re-run, never lost. Stealing is the
//!   same atomic-rename arbitration as claiming.
//! * **Completion** = result written to `cache/` via the runner's
//!   write-then-rename path, then a `done/` marker. A coordinator that
//!   crashes and restarts simply re-plans the campaign: everything
//!   finished is a disk-cache hit and never reaches the board again.
//!
//! ## Telemetry
//!
//! Workers emit `dist_jobs_claimed`, `dist_leases_stolen`,
//! `dist_leases_expired` and `dist_heartbeats` counters under a
//! per-worker `worker` root span; the coordinator folds a merged
//! cross-worker summary (per-worker job counts, steals, p50/p95 job
//! wall, aggregate cache traffic) into the campaign report's telemetry
//! roll-up.

pub mod board;
pub mod coordinator;
pub mod worker;

pub use board::{board_stats, sanitize_worker, BoardStats, DistConfig, DoneDoc, JobDoc};
pub use coordinator::{Coordinator, MergedSummary, WorkerTally};
pub use worker::{run_worker, WorkerSummary};

//! The shared-filesystem job board: layout, documents, and the
//! lease-based claiming protocol.
//!
//! Every primitive here reduces to `rename(2)` — the one filesystem
//! operation that is atomic on POSIX (and on the NFS close-to-open
//! semantics shared scratch directories provide). A job moves through
//! exactly three states, each a file in a different subdirectory:
//!
//! ```text
//! board/<digest>.job  --claim-->  leases/<digest>.<worker>.lease
//! leases/...          --done--->  done/<digest>.done   (+ cache entry)
//! ```
//!
//! The job document travels *with* the rename: a claimed lease file
//! still contains the full job description, so a steal hands the
//! thief everything it needs with no extra read from the dead worker.

use belenos_json::{FromJson, Json, ToJson};
use belenos_runner::DistJob;
use belenos_uarch::{CoreConfig, Fnv64, SamplingConfig};
use belenos_workloads::scenario::ScenarioSpec;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, SystemTime};

/// Configuration of one dist-directory participant (worker or
/// coordinator): where the board lives, who we are, and the lease
/// timing knobs.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Root of the shared dist directory.
    pub dir: PathBuf,
    /// This participant's worker name (sanitized: it becomes part of
    /// lease file names).
    pub worker: String,
    /// A lease whose mtime is older than this is considered abandoned
    /// and may be stolen by any worker.
    pub lease_ttl: Duration,
    /// Interval between mtime refreshes on a held lease. Must be
    /// comfortably below `lease_ttl` (the default is a quarter of it).
    pub heartbeat: Duration,
}

/// Default lease TTL: long enough that a heartbeat thread descheduled
/// by a loaded host does not get robbed, short enough that a SIGKILLed
/// worker's jobs restart promptly.
pub const DEFAULT_LEASE_TTL: Duration = Duration::from_secs(30);

impl DistConfig {
    /// A config rooted at `dir` for worker `name` with the default
    /// 30 s TTL / 7.5 s heartbeat.
    pub fn new(dir: impl Into<PathBuf>, name: &str) -> Self {
        DistConfig {
            dir: dir.into(),
            worker: sanitize_worker(name),
            lease_ttl: DEFAULT_LEASE_TTL,
            heartbeat: DEFAULT_LEASE_TTL / 4,
        }
    }

    /// Overrides the lease TTL; the heartbeat follows to a quarter of
    /// the new TTL (call [`DistConfig::with_heartbeat`] after this to
    /// pin it independently).
    pub fn with_lease_ttl(mut self, ttl: Duration) -> Self {
        self.lease_ttl = ttl.max(Duration::from_millis(1));
        self.heartbeat = self.lease_ttl / 4;
        self
    }

    /// Overrides the heartbeat interval.
    pub fn with_heartbeat(mut self, interval: Duration) -> Self {
        self.heartbeat = interval.max(Duration::from_millis(1));
        self
    }

    /// `<dir>/board` — open (claimable) job documents.
    pub fn board_dir(&self) -> PathBuf {
        self.dir.join("board")
    }

    /// `<dir>/leases` — claimed jobs; file mtime is the heartbeat.
    pub fn leases_dir(&self) -> PathBuf {
        self.dir.join("leases")
    }

    /// `<dir>/done` — completion markers.
    pub fn done_dir(&self) -> PathBuf {
        self.dir.join("done")
    }

    /// `<dir>/cache` — the shared content-addressed result cache.
    pub fn cache_dir(&self) -> PathBuf {
        self.dir.join("cache")
    }

    /// `<dir>/traces` — the shared persistent trace store.
    pub fn traces_dir(&self) -> PathBuf {
        self.dir.join("traces")
    }

    /// Creates the board/leases/done/cache/traces subdirectories.
    ///
    /// # Errors
    ///
    /// The first `create_dir_all` failure (permissions, a file where
    /// the dist dir should be, ...).
    pub fn ensure_layout(&self) -> io::Result<()> {
        for d in [
            self.board_dir(),
            self.leases_dir(),
            self.done_dir(),
            self.cache_dir(),
            self.traces_dir(),
        ] {
            std::fs::create_dir_all(d)?;
        }
        Ok(())
    }

    /// Path of `digest`'s open board entry.
    pub fn board_path(&self, digest: u64) -> PathBuf {
        self.board_dir().join(format!("{digest:016x}.job"))
    }

    /// Path of *our* lease on `digest`.
    pub fn lease_path(&self, digest: u64) -> PathBuf {
        self.leases_dir()
            .join(format!("{digest:016x}.{}.lease", self.worker))
    }

    /// Path of `digest`'s completion marker.
    pub fn done_path(&self, digest: u64) -> PathBuf {
        self.done_dir().join(format!("{digest:016x}.done"))
    }
}

/// Makes `name` safe to embed in lease file names: anything outside
/// `[A-Za-z0-9_-]` becomes `-` (dots in particular would break the
/// `digest.worker.lease` field split).
pub fn sanitize_worker(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "worker".to_string()
    } else {
        cleaned
    }
}

// --- documents ----------------------------------------------------------

/// A published job: everything a worker in another process needs to
/// reproduce one simulation bit-for-bit.
#[derive(Debug, Clone)]
pub struct JobDoc {
    /// [`CacheKey::address`](belenos_runner::CacheKey::address) of the
    /// simulation — names the board entry and the cache entry.
    pub digest: u64,
    /// Workload identifier (cache-key component).
    pub workload: String,
    /// Human-readable job label (progress lines only).
    pub label: String,
    /// The scenario to prepare (validated explicit normal form).
    pub scenario: ScenarioSpec,
    /// Machine configuration to simulate under.
    pub config: CoreConfig,
    /// Micro-op budget.
    pub max_ops: usize,
    /// Trace-sampling strategy.
    pub sampling: SamplingConfig,
}

const JOB_FIELDS: &[&str] = &[
    "v", "digest", "workload", "label", "max_ops", "sampling", "config", "scenario",
];

impl JobDoc {
    /// Builds the publishable document for one [`DistJob`].
    ///
    /// # Errors
    ///
    /// A message when the job's scenario document does not parse — a
    /// workload whose [`scenario_json`](belenos_runner::Simulate::scenario_json)
    /// emits something its own parser rejects is a bug worth naming.
    pub fn from_dist_job(job: &DistJob<'_>) -> Result<JobDoc, String> {
        let scenario = ScenarioSpec::parse(&job.scenario)
            .map_err(|e| format!("job '{}': unpublishable scenario: {e}", job.spec.label))?;
        Ok(JobDoc {
            digest: job.key.address(),
            workload: job.key.workload.clone(),
            label: job.spec.label.clone(),
            scenario,
            config: job.spec.config.clone(),
            max_ops: job.spec.max_ops,
            sampling: job.spec.sampling.clone(),
        })
    }

    /// Serializes to the versioned wire form (pretty JSON — these files
    /// are what an operator inspects when a campaign wedges).
    pub fn encode(&self) -> String {
        // The digest rides as a hex *string*: JSON numbers are f64 and
        // would silently round 64-bit addresses.
        Json::obj(vec![
            ("v", Json::Num(1.0)),
            ("digest", Json::Str(format!("{:016x}", self.digest))),
            ("workload", Json::Str(self.workload.clone())),
            ("label", Json::Str(self.label.clone())),
            ("max_ops", Json::Num(self.max_ops as f64)),
            ("sampling", self.sampling.to_json()),
            ("config", self.config.to_json()),
            ("scenario", ToJson::to_json(&self.scenario)),
        ])
        .pretty()
    }

    /// Parses and validates the wire form.
    ///
    /// # Errors
    ///
    /// A message naming the malformed field; a job that fails here is
    /// reported as a failed job, never silently dropped.
    pub fn decode(text: &str) -> Result<JobDoc, String> {
        let v = Json::parse(text).map_err(|e| format!("job document: {e}"))?;
        v.reject_unknown_fields("job document", JOB_FIELDS)
            .map_err(|e| e.to_string())?;
        expect_version(&v, "job document")?;
        let scenario_json = v.expect_field("scenario").map_err(|e| e.to_string())?;
        let scenario =
            ScenarioSpec::from_json(scenario_json).map_err(|e| format!("job scenario: {e}"))?;
        scenario
            .validate()
            .map_err(|e| format!("job scenario: {e}"))?;
        Ok(JobDoc {
            digest: decode_digest(&v)?,
            workload: expect_str(&v, "workload")?,
            label: expect_str(&v, "label")?,
            scenario,
            config: CoreConfig::from_json(v.expect_field("config").map_err(|e| e.to_string())?)
                .map_err(|e| format!("job config: {e}"))?,
            max_ops: v
                .expect_field("max_ops")
                .map_err(|e| e.to_string())?
                .as_usize()
                .ok_or("job document: max_ops must be a non-negative integer")?,
            sampling: SamplingConfig::from_json(
                v.expect_field("sampling").map_err(|e| e.to_string())?,
            )
            .map_err(|e| format!("job sampling: {e}"))?,
        })
    }
}

/// A completion marker: who finished the job, how long it took, and
/// whether the simulation failed (in which case there is no cache
/// entry and `error` carries the panic message).
#[derive(Debug, Clone, PartialEq)]
pub struct DoneDoc {
    /// Digest of the finished job.
    pub digest: u64,
    /// Worker that executed it.
    pub worker: String,
    /// Execution wall time (prepare + simulate) in seconds.
    pub wall_s: f64,
    /// True when the executing worker acquired the job by stealing an
    /// expired lease rather than claiming an open board entry.
    pub stolen: bool,
    /// Panic message when the simulation failed.
    pub error: Option<String>,
}

const DONE_FIELDS: &[&str] = &["v", "digest", "worker", "wall_s", "stolen", "error"];

impl DoneDoc {
    /// Serializes to the versioned wire form.
    pub fn encode(&self) -> String {
        Json::obj(vec![
            ("v", Json::Num(1.0)),
            ("digest", Json::Str(format!("{:016x}", self.digest))),
            ("worker", Json::Str(self.worker.clone())),
            ("wall_s", Json::Num(self.wall_s)),
            ("stolen", Json::Bool(self.stolen)),
            (
                "error",
                match &self.error {
                    Some(msg) => Json::Str(msg.clone()),
                    None => Json::Null,
                },
            ),
        ])
        .pretty()
    }

    /// Parses the wire form.
    ///
    /// # Errors
    ///
    /// A message naming the malformed field.
    pub fn decode(text: &str) -> Result<DoneDoc, String> {
        let v = Json::parse(text).map_err(|e| format!("done marker: {e}"))?;
        v.reject_unknown_fields("done marker", DONE_FIELDS)
            .map_err(|e| e.to_string())?;
        expect_version(&v, "done marker")?;
        let error = match v.expect_field("error").map_err(|e| e.to_string())? {
            Json::Null => None,
            Json::Str(msg) => Some(msg.clone()),
            _ => return Err("done marker: error must be null or a string".into()),
        };
        Ok(DoneDoc {
            digest: decode_digest(&v)?,
            worker: expect_str(&v, "worker")?,
            wall_s: v
                .expect_field("wall_s")
                .map_err(|e| e.to_string())?
                .as_f64()
                .ok_or("done marker: wall_s must be a number")?,
            stolen: v
                .expect_field("stolen")
                .map_err(|e| e.to_string())?
                .as_bool()
                .ok_or("done marker: stolen must be a boolean")?,
            error,
        })
    }
}

fn expect_version(v: &Json, context: &str) -> Result<(), String> {
    match v.expect_field("v").map_err(|e| e.to_string())?.as_usize() {
        Some(1) => Ok(()),
        Some(n) => Err(format!("{context}: unsupported version {n}")),
        None => Err(format!("{context}: v must be an integer")),
    }
}

fn decode_digest(v: &Json) -> Result<u64, String> {
    let s = v
        .expect_field("digest")
        .map_err(|e| e.to_string())?
        .as_str()
        .ok_or("digest must be a 16-hex-digit string")?;
    u64::from_str_radix(s, 16).map_err(|e| format!("digest `{s}`: {e}"))
}

fn expect_str(v: &Json, name: &str) -> Result<String, String> {
    Ok(v.expect_field(name)
        .map_err(|e| e.to_string())?
        .as_str()
        .ok_or_else(|| format!("{name} must be a string"))?
        .to_string())
}

// --- filesystem protocol ------------------------------------------------

/// Writes `text` to `path` via a write-then-rename temp so concurrent
/// readers never observe a torn document.
///
/// # Errors
///
/// The underlying write or rename failure.
pub fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    let tmp = path.with_extension(format!("tmp{}", std::process::id()));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Publishes `doc` as an open board entry (idempotent: re-publishing
/// the same digest atomically replaces the identical document).
///
/// # Errors
///
/// The underlying write failure.
pub fn publish(cfg: &DistConfig, doc: &JobDoc) -> io::Result<()> {
    write_atomic(&cfg.board_path(doc.digest), &doc.encode())
}

/// Writes `digest`'s completion marker.
///
/// # Errors
///
/// The underlying write failure.
pub fn write_done(cfg: &DistConfig, doc: &DoneDoc) -> io::Result<()> {
    write_atomic(&cfg.done_path(doc.digest), &doc.encode())
}

/// Removes our lease on `digest` (best-effort: a stolen lease is
/// already gone, and that is fine).
pub fn remove_lease(cfg: &DistConfig, digest: u64) {
    let _ = std::fs::remove_file(cfg.lease_path(digest));
}

/// Digests of all open board entries, ascending.
pub fn board_digests(cfg: &DistConfig) -> Vec<u64> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(cfg.board_dir()) {
        for entry in entries.flatten() {
            if let Some(d) = parse_digest_prefix(&entry.file_name(), "job") {
                out.push(d);
            }
        }
    }
    out.sort_unstable();
    out
}

/// One lease observed on the board: whose it is and how stale.
#[derive(Debug, Clone)]
pub struct LeaseInfo {
    /// Digest of the claimed job.
    pub digest: u64,
    /// Owning worker name.
    pub worker: String,
    /// Time since the last heartbeat (mtime refresh).
    pub age: Duration,
}

/// All current leases (unordered; age measured against `now`).
pub fn leases(cfg: &DistConfig) -> Vec<LeaseInfo> {
    let mut out = Vec::new();
    let now = SystemTime::now();
    if let Ok(entries) = std::fs::read_dir(cfg.leases_dir()) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some((digest, worker)) = parse_lease_name(&name) else {
                continue;
            };
            let age = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|mtime| now.duration_since(mtime).ok())
                .unwrap_or(Duration::ZERO);
            out.push(LeaseInfo {
                digest,
                worker,
                age,
            });
        }
    }
    out
}

/// A job this worker now owns: the digest, the parsed document (or the
/// reason it would not parse — reported as a failed job, not dropped),
/// and how it was acquired.
#[derive(Debug)]
pub struct ClaimedJob {
    /// Digest of the job (names the lease we hold).
    pub digest: u64,
    /// The job document read out of our lease file.
    pub doc: Result<JobDoc, String>,
    /// True when acquired by stealing an expired lease.
    pub stolen: bool,
}

/// Tries to claim one open board entry.
///
/// Scanning starts at a per-worker rotation point (hash of the worker
/// name) so N workers hitting a freshly published board fan out over
/// different entries instead of all racing for the lexicographically
/// first one. The claim itself is `rename`: exactly one racer wins.
///
/// The freshly claimed lease's mtime is touched immediately — rename
/// preserves the *board entry's* mtime, and a board entry can have sat
/// open for longer than any TTL.
pub fn claim_open(cfg: &DistConfig) -> Option<ClaimedJob> {
    let digests = board_digests(cfg);
    if digests.is_empty() {
        return None;
    }
    let start = (worker_hash(&cfg.worker) % digests.len() as u64) as usize;
    for i in 0..digests.len() {
        let digest = digests[(start + i) % digests.len()];
        let lease = cfg.lease_path(digest);
        if std::fs::rename(cfg.board_path(digest), &lease).is_ok() {
            let _ = touch(&lease);
            belenos_telemetry::global().counter("dist_jobs_claimed", 1, &[]);
            return Some(ClaimedJob {
                digest,
                doc: read_doc(&lease),
                stolen: false,
            });
        }
    }
    None
}

/// Tries to steal one lease whose owner has stopped heartbeating.
///
/// Every observed expired lease counts toward `dist_leases_expired`;
/// a successful steal (the same atomic-rename arbitration as claiming)
/// additionally counts `dist_leases_stolen`. Losing the rename race
/// just means another worker — or the original owner finishing late —
/// got there first.
pub fn claim_expired(cfg: &DistConfig) -> Option<ClaimedJob> {
    let tele = belenos_telemetry::global();
    for lease in leases(cfg) {
        if lease.worker == cfg.worker || lease.age < cfg.lease_ttl {
            continue;
        }
        tele.counter("dist_leases_expired", 1, &[]);
        let theirs = cfg
            .leases_dir()
            .join(format!("{:016x}.{}.lease", lease.digest, lease.worker));
        let ours = cfg.lease_path(lease.digest);
        if std::fs::rename(&theirs, &ours).is_ok() {
            // Touch immediately: the rename carried over a >TTL mtime,
            // which would make our fresh claim instantly stealable.
            let _ = touch(&ours);
            tele.counter("dist_leases_stolen", 1, &[]);
            return Some(ClaimedJob {
                digest: lease.digest,
                doc: read_doc(&ours),
                stolen: true,
            });
        }
    }
    None
}

fn read_doc(lease: &Path) -> Result<JobDoc, String> {
    let text =
        std::fs::read_to_string(lease).map_err(|e| format!("lease {}: {e}", lease.display()))?;
    JobDoc::decode(&text)
}

fn worker_hash(name: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(name);
    h.finish()
}

/// Refreshes `path`'s mtime to now (the heartbeat primitive).
///
/// # Errors
///
/// `NotFound` when the lease has been stolen out from under us; any
/// other filesystem failure as-is.
pub fn touch(path: &Path) -> io::Result<()> {
    let file = std::fs::File::options().write(true).open(path)?;
    file.set_modified(SystemTime::now())
}

/// Backdates `path`'s mtime by `age` — test-only hook for forging an
/// abandoned lease without waiting out a real TTL.
pub fn backdate(path: &Path, age: Duration) -> io::Result<()> {
    let file = std::fs::File::options().write(true).open(path)?;
    file.set_modified(SystemTime::now() - age)
}

// --- heartbeat ----------------------------------------------------------

struct HeartbeatShared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// A background thread keeping one lease alive while its job runs.
///
/// Refreshes the lease mtime every `heartbeat` interval (counter
/// `dist_heartbeats`); a `NotFound` on refresh means the lease was
/// stolen — the thread stops beating and [`Heartbeat::lost`] turns
/// true, but the job itself keeps running (its result is deterministic
/// and the duplicate cache insert is idempotent). Dropping stops the
/// thread promptly regardless of the interval.
pub struct Heartbeat {
    shared: Arc<HeartbeatShared>,
    lost: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Starts beating on our lease for `digest`.
    pub fn start(cfg: &DistConfig, digest: u64) -> Heartbeat {
        let shared = Arc::new(HeartbeatShared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let lost = Arc::new(AtomicBool::new(false));
        let path = cfg.lease_path(digest);
        let interval = cfg.heartbeat;
        let thread = {
            let shared = Arc::clone(&shared);
            let lost = Arc::clone(&lost);
            std::thread::spawn(move || {
                let tele = belenos_telemetry::global();
                let mut stopped = shared.stop.lock().unwrap();
                loop {
                    let (guard, timeout) = shared.wake.wait_timeout(stopped, interval).unwrap();
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    if !timeout.timed_out() {
                        continue;
                    }
                    match touch(&path) {
                        Ok(()) => tele.counter("dist_heartbeats", 1, &[]),
                        Err(e) if e.kind() == io::ErrorKind::NotFound => {
                            lost.store(true, Ordering::Relaxed);
                            return;
                        }
                        // Transient refresh failures (e.g. an NFS hiccup)
                        // are survivable as long as one lands within TTL.
                        Err(_) => {}
                    }
                }
            })
        };
        Heartbeat {
            shared,
            lost,
            thread: Some(thread),
        }
    }

    /// True when the lease vanished mid-job (stolen after a stall).
    pub fn lost(&self) -> bool {
        self.lost.load(Ordering::Relaxed)
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        *self.shared.stop.lock().unwrap() = true;
        self.shared.wake.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

// --- observability ------------------------------------------------------

/// A point-in-time census of one dist directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoardStats {
    /// Open (claimable) board entries.
    pub open: usize,
    /// Currently held leases.
    pub claimed: usize,
    /// Leases older than the TTL (stealable right now).
    pub stale: usize,
    /// Completion markers.
    pub done: usize,
}

impl BoardStats {
    /// Total jobs visible on the board in any state.
    pub fn total(&self) -> usize {
        self.open + self.claimed + self.done
    }
}

/// Counts board entries, leases (stale = older than `lease_ttl`) and
/// done markers under `dir`. Missing subdirectories count as empty —
/// pointing this at a not-yet-initialized dist dir is not an error.
pub fn board_stats(dir: &Path, lease_ttl: Duration) -> BoardStats {
    let probe = DistConfig::new(dir, "census").with_lease_ttl(lease_ttl);
    let mut stats = BoardStats {
        open: board_digests(&probe).len(),
        ..BoardStats::default()
    };
    for lease in leases(&probe) {
        stats.claimed += 1;
        if lease.age >= lease_ttl {
            stats.stale += 1;
        }
    }
    if let Ok(entries) = std::fs::read_dir(probe.done_dir()) {
        stats.done += entries
            .flatten()
            .filter(|e| parse_digest_prefix(&e.file_name(), "done").is_some())
            .count();
    }
    stats
}

/// Parses `{16 hex}.{ext}` file names; `None` for anything else (temp
/// files, stray editors' droppings).
fn parse_digest_prefix(name: &std::ffi::OsStr, ext: &str) -> Option<u64> {
    let name = name.to_str()?;
    let stem = name.strip_suffix(&format!(".{ext}"))?;
    if stem.len() != 16 {
        return None;
    }
    u64::from_str_radix(stem, 16).ok()
}

/// Parses `{16 hex}.{worker}.lease` names into (digest, worker).
fn parse_lease_name(name: &std::ffi::OsStr) -> Option<(u64, String)> {
    let name = name.to_str()?;
    let stem = name.strip_suffix(".lease")?;
    let (hex, worker) = stem.split_once('.')?;
    if hex.len() != 16 || worker.is_empty() {
        return None;
    }
    Some((u64::from_str_radix(hex, 16).ok()?, worker.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dist(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("belenos-dist-board-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_doc(digest: u64) -> JobDoc {
        JobDoc {
            digest,
            workload: "pd".to_string(),
            label: "baseline".to_string(),
            scenario: belenos_workloads::by_id("pd").expect("pd preset"),
            config: CoreConfig::gem5_baseline(),
            max_ops: 20_000,
            sampling: SamplingConfig::off(),
        }
    }

    #[test]
    fn job_doc_roundtrips() {
        let doc = sample_doc(0xdead_beef_0123_4567);
        let back = JobDoc::decode(&doc.encode()).expect("roundtrip");
        assert_eq!(back.digest, doc.digest);
        assert_eq!(back.workload, doc.workload);
        assert_eq!(back.label, doc.label);
        assert_eq!(back.scenario.stable_digest(), doc.scenario.stable_digest());
        assert_eq!(back.config, doc.config);
        assert_eq!(back.max_ops, doc.max_ops);
        assert_eq!(back.sampling, doc.sampling);
    }

    #[test]
    fn job_doc_rejects_malformed() {
        let good = sample_doc(1).encode();
        assert!(JobDoc::decode("nonsense").is_err());
        assert!(JobDoc::decode(&good.replacen("\"v\": 1", "\"v\": 2", 1)).is_err());
        assert!(JobDoc::decode(&good.replacen("\"digest\"", "\"digset\"", 1)).is_err());
    }

    #[test]
    fn done_doc_roundtrips_with_and_without_error() {
        for error in [None, Some("pipeline wedged".to_string())] {
            let doc = DoneDoc {
                digest: 42,
                worker: "w1".to_string(),
                wall_s: 1.25,
                stolen: true,
                error,
            };
            assert_eq!(DoneDoc::decode(&doc.encode()).unwrap(), doc);
        }
    }

    #[test]
    fn sanitize_worker_strips_separators() {
        assert_eq!(sanitize_worker("node-3_a"), "node-3_a");
        assert_eq!(sanitize_worker("host.domain/x"), "host-domain-x");
        assert_eq!(sanitize_worker(""), "worker");
    }

    #[test]
    fn exactly_one_racer_wins_a_claim() {
        let dir = temp_dist("race");
        let w1 = DistConfig::new(&dir, "w1");
        let w2 = DistConfig::new(&dir, "w2");
        w1.ensure_layout().unwrap();
        publish(&w1, &sample_doc(7)).unwrap();

        let (a, b) = std::thread::scope(|s| {
            let t1 = s.spawn(|| claim_open(&w1));
            let t2 = s.spawn(|| claim_open(&w2));
            (t1.join().unwrap(), t2.join().unwrap())
        });
        assert_eq!(
            a.is_some() as usize + b.is_some() as usize,
            1,
            "exactly one of two racing workers must win the rename"
        );
        let winner = a.or(b).unwrap();
        assert_eq!(winner.digest, 7);
        assert_eq!(winner.doc.as_ref().unwrap().workload, "pd");
        assert!(!winner.stolen);
        // The board entry is gone; exactly one lease exists.
        assert!(board_digests(&w1).is_empty());
        assert_eq!(leases(&w1).len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_leases_are_not_stealable_but_expired_ones_are() {
        let dir = temp_dist("steal");
        let victim = DistConfig::new(&dir, "victim").with_lease_ttl(Duration::from_secs(5));
        let thief = DistConfig::new(&dir, "thief").with_lease_ttl(Duration::from_secs(5));
        victim.ensure_layout().unwrap();
        publish(&victim, &sample_doc(9)).unwrap();
        assert!(claim_open(&victim).is_some());

        // Fresh lease: nothing to steal (and our own lease never is).
        assert!(claim_expired(&thief).is_none());
        assert!(claim_expired(&victim).is_none());

        // Backdate past the TTL: now it is fair game.
        backdate(&victim.lease_path(9), Duration::from_secs(30)).unwrap();
        let stolen = claim_expired(&thief).expect("expired lease must be stealable");
        assert!(stolen.stolen);
        assert_eq!(stolen.digest, 9);
        assert_eq!(stolen.doc.unwrap().label, "baseline");
        // The thief's fresh lease is not immediately re-stealable: the
        // steal touched its mtime.
        assert!(claim_expired(&victim).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_keeps_a_slow_job_alive_past_the_ttl() {
        let dir = temp_dist("heartbeat");
        let slow = DistConfig::new(&dir, "slow")
            .with_lease_ttl(Duration::from_millis(150))
            .with_heartbeat(Duration::from_millis(25));
        let thief = DistConfig::new(&dir, "thief").with_lease_ttl(Duration::from_millis(150));
        slow.ensure_layout().unwrap();
        publish(&slow, &sample_doc(11)).unwrap();
        assert!(claim_open(&slow).is_some());

        let hb = Heartbeat::start(&slow, 11);
        // Several TTLs pass; the heartbeat must keep the lease fresh.
        std::thread::sleep(Duration::from_millis(500));
        assert!(
            claim_expired(&thief).is_none(),
            "a heartbeating lease must never be stolen"
        );
        assert!(!hb.lost());
        drop(hb);

        // Once the heart stops, the lease ages out and is stolen.
        backdate(&slow.lease_path(11), Duration::from_secs(1)).unwrap();
        assert!(claim_expired(&thief).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn board_stats_counts_every_state() {
        let dir = temp_dist("census");
        let cfg = DistConfig::new(&dir, "w1").with_lease_ttl(Duration::from_secs(5));
        cfg.ensure_layout().unwrap();
        publish(&cfg, &sample_doc(1)).unwrap();
        publish(&cfg, &sample_doc(2)).unwrap();
        publish(&cfg, &sample_doc(3)).unwrap();
        // Claim one, expire it; claim another and keep it fresh.
        assert!(claim_open(&cfg).is_some());
        let claimed = leases(&cfg)[0].digest;
        backdate(&cfg.lease_path(claimed), Duration::from_secs(60)).unwrap();
        write_done(
            &cfg,
            &DoneDoc {
                digest: 99,
                worker: "w1".into(),
                wall_s: 0.5,
                stolen: false,
                error: None,
            },
        )
        .unwrap();

        let stats = board_stats(&dir, Duration::from_secs(5));
        assert_eq!(
            stats,
            BoardStats {
                open: 2,
                claimed: 1,
                stale: 1,
                done: 1,
            }
        );
        assert_eq!(stats.total(), 4);
        // Temp droppings and foreign files are invisible to the census.
        std::fs::write(cfg.board_dir().join("x.tmp123"), "junk").unwrap();
        std::fs::write(cfg.board_dir().join("README"), "junk").unwrap();
        assert_eq!(board_stats(&dir, Duration::from_secs(5)).open, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

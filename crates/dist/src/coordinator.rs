//! The coordinator: publishes a batch to the job board, optionally
//! hosts in-process workers, and collects results into plan order.
//!
//! [`Coordinator`] implements the runner's
//! [`DistExecutor`] seam, so campaign
//! code never changes for distributed execution — a runner with a
//! coordinator installed routes its cache-miss jobs through the board
//! instead of the local thread pool, and everything downstream
//! (caching, report rendering, telemetry roll-up) behaves as before.
//!
//! The coordinator is crash-safe by construction: it holds no state a
//! restart cannot rebuild. Kill it mid-campaign and run it again — the
//! re-planned jobs that already finished are disk-cache hits and never
//! reach the board; unfinished board entries and expired leases are
//! picked up by whatever workers remain.

use crate::board::{self, DistConfig, DoneDoc, JobDoc};
use crate::worker::{run_worker, WorkerSummary};
use belenos::report::{Cell, Report};
use belenos_runner::cache::{decode_stats, entry_file_name};
use belenos_runner::{CacheStats, DistExecutor, DistJob};
use belenos_uarch::SimStats;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-worker slice of a merged campaign summary (built from the done
/// markers, so external workers count exactly like in-process ones).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerTally {
    /// Jobs this worker completed.
    pub jobs: u64,
    /// Of those, jobs acquired by stealing an expired lease.
    pub stolen: u64,
    /// Jobs that failed (error done markers).
    pub failed: u64,
    /// Summed execution wall seconds.
    pub busy_s: f64,
}

/// The merged cross-worker summary of one distributed batch.
#[derive(Debug, Clone, Default)]
pub struct MergedSummary {
    /// Per-worker tallies, keyed by worker name (sorted).
    pub per_worker: BTreeMap<String, WorkerTally>,
    /// Execution walls of every completed job, in completion order.
    pub walls_s: Vec<f64>,
    /// Jobs resolved straight from the shared disk cache without
    /// touching the board (a restarted coordinator's hits).
    pub cache_resolved: u64,
}

impl MergedSummary {
    /// Total jobs executed by workers.
    pub fn jobs(&self) -> u64 {
        self.per_worker.values().map(|t| t.jobs).sum()
    }

    /// Total jobs acquired by stealing.
    pub fn stolen(&self) -> u64 {
        self.per_worker.values().map(|t| t.stolen).sum()
    }

    /// Nearest-rank percentile of the job walls (`p` in 0..=100).
    pub fn wall_percentile(&self, p: usize) -> f64 {
        if self.walls_s.is_empty() {
            return 0.0;
        }
        let mut sorted = self.walls_s.clone();
        sorted.sort_by(f64::total_cmp);
        sorted[(sorted.len() - 1) * p / 100]
    }

    fn record(&mut self, done: &DoneDoc) {
        let tally = self.per_worker.entry(done.worker.clone()).or_default();
        tally.jobs += 1;
        tally.busy_s += done.wall_s;
        if done.stolen {
            tally.stolen += 1;
        }
        if done.error.is_some() {
            tally.failed += 1;
        }
        self.walls_s.push(done.wall_s);
    }
}

/// How often the coordinator sweeps the done directory.
const POLL: Duration = Duration::from_millis(50);
/// How often a waiting coordinator prints a progress line.
const PROGRESS_EVERY: Duration = Duration::from_secs(5);
/// Consecutive sweeps a done marker may point at a missing cache entry
/// before the job is republished (~5 s: covers a slow NFS rename).
const MARKER_GRACE_SWEEPS: u32 = 100;

/// A [`DistExecutor`] backed by one dist directory.
pub struct Coordinator {
    cfg: DistConfig,
    local_workers: usize,
    merged: Mutex<MergedSummary>,
}

impl Coordinator {
    /// A coordinator over `cfg`'s dist directory with one in-process
    /// worker (the useful default: a lone `--distributed` run makes
    /// progress by itself, extra processes join for speed).
    pub fn new(cfg: DistConfig) -> Coordinator {
        Coordinator {
            cfg,
            local_workers: 1,
            merged: Mutex::new(MergedSummary::default()),
        }
    }

    /// Sets the number of in-process worker threads (0 = publish only
    /// and rely entirely on external `belenos worker` processes).
    pub fn with_local_workers(mut self, n: usize) -> Coordinator {
        self.local_workers = n;
        self
    }

    /// The dist configuration this coordinator publishes under.
    pub fn config(&self) -> &DistConfig {
        &self.cfg
    }

    /// Snapshot of the merged cross-worker summary accumulated so far
    /// (complete once `execute_dist` has returned).
    pub fn merged(&self) -> MergedSummary {
        self.merged.lock().unwrap().clone()
    }

    /// Renders the merged summary to stderr: one line per worker (CI
    /// greps these) plus an aggregate.
    pub fn print_summary(&self) {
        let merged = self.merged();
        for (name, tally) in &merged.per_worker {
            eprintln!(
                "dist: worker {name} executed {} job(s) ({} stolen, {} failed, {:.2}s busy)",
                tally.jobs, tally.stolen, tally.failed, tally.busy_s
            );
        }
        eprintln!(
            "dist: {} worker(s), {} job(s), {} stolen, {} cache-resolved, \
             p50 {:.3}s, p95 {:.3}s",
            merged.per_worker.len(),
            merged.jobs(),
            merged.stolen(),
            merged.cache_resolved,
            merged.wall_percentile(50),
            merged.wall_percentile(95),
        );
    }

    /// Folds the merged summary into a campaign report's telemetry
    /// roll-up as a `distributed` section: one row per worker, one
    /// aggregate row carrying the coordinator-side cache traffic.
    pub fn append_rollup(&self, report: &mut Report, cache: &CacheStats) {
        let merged = self.merged();
        let section = report.section(
            "distributed",
            &[
                "worker", "jobs", "stolen", "failed", "busy_s", "p50_s", "p95_s", "lookups", "hits",
            ],
        );
        for (name, tally) in &merged.per_worker {
            section.row(vec![
                Cell::text(name.clone()),
                Cell::num(tally.jobs as f64, 0),
                Cell::num(tally.stolen as f64, 0),
                Cell::num(tally.failed as f64, 0),
                Cell::num(tally.busy_s, 2),
                Cell::text("-"),
                Cell::text("-"),
                Cell::text("-"),
                Cell::text("-"),
            ]);
        }
        section.row(vec![
            Cell::text("(all)"),
            Cell::num(merged.jobs() as f64, 0),
            Cell::num(merged.stolen() as f64, 0),
            Cell::num(
                merged.per_worker.values().map(|t| t.failed).sum::<u64>() as f64,
                0,
            ),
            Cell::num(merged.walls_s.iter().sum::<f64>(), 2),
            Cell::num(merged.wall_percentile(50), 3),
            Cell::num(merged.wall_percentile(95), 3),
            Cell::num(cache.lookups() as f64, 0),
            Cell::num(cache.hits as f64, 0),
        ]);
    }
}

/// Per-pending-job bookkeeping while the coordinator waits.
struct Pending {
    index: usize,
    cache_entry: PathBuf,
    /// Sweeps a done marker has pointed at a missing cache entry.
    marker_stalls: u32,
    /// Consecutive sweeps the job was visible nowhere (board, leases,
    /// done). Two in a row means it truly vanished and is republished.
    vanished_sweeps: u32,
}

impl DistExecutor for Coordinator {
    fn execute_dist(
        &self,
        jobs: &[DistJob<'_>],
    ) -> Vec<(usize, Result<SimStats, String>, Duration)> {
        let cfg = &self.cfg;
        let mut rows: Vec<(usize, Result<SimStats, String>, Duration)> = Vec::new();
        if let Err(e) = cfg.ensure_layout() {
            // Without a board nothing can run; fail every job with the
            // reason instead of panicking the campaign.
            let msg = format!("dist dir {}: {e}", cfg.dir.display());
            return jobs
                .iter()
                .map(|j| (j.index, Err(msg.clone()), Duration::ZERO))
                .collect();
        }

        let tele = belenos_telemetry::global();
        let span = tele.span(
            "coordinator",
            &[
                ("jobs", jobs.len().into()),
                ("local_workers", self.local_workers.into()),
            ],
        );

        // Publish. Jobs already answered by the shared disk cache (a
        // restarted coordinator re-planning finished work) resolve
        // immediately; stale done markers from earlier attempts are
        // cleared so this attempt gets a fresh verdict.
        let leased: HashSet<u64> = board::leases(cfg).iter().map(|l| l.digest).collect();
        let open: HashSet<u64> = board::board_digests(cfg).iter().copied().collect();
        let mut pending: HashMap<u64, Pending> = HashMap::new();
        let mut docs: HashMap<u64, JobDoc> = HashMap::new();
        for job in jobs {
            let digest = job.key.address();
            let cache_entry = cfg.cache_dir().join(entry_file_name(job.key));
            if let Some(stats) = read_entry(&cache_entry) {
                self.merged.lock().unwrap().cache_resolved += 1;
                rows.push((job.index, Ok(stats), Duration::ZERO));
                continue;
            }
            let doc = match JobDoc::from_dist_job(job) {
                Ok(doc) => doc,
                Err(msg) => {
                    rows.push((job.index, Err(msg), Duration::ZERO));
                    continue;
                }
            };
            let _ = std::fs::remove_file(cfg.done_path(digest));
            if !leased.contains(&digest) && !open.contains(&digest) {
                if let Err(e) = board::publish(cfg, &doc) {
                    rows.push((
                        job.index,
                        Err(format!("publish {}: {e}", doc.label)),
                        Duration::ZERO,
                    ));
                    continue;
                }
            }
            docs.insert(digest, doc);
            pending.insert(
                digest,
                Pending {
                    index: job.index,
                    cache_entry,
                    marker_stalls: 0,
                    vanished_sweeps: 0,
                },
            );
        }
        tele.counter("dist_jobs_published", pending.len() as u64, &[]);

        // In-process workers share the board with external processes.
        let stop = Arc::new(AtomicBool::new(false));
        let locals: Vec<std::thread::JoinHandle<std::io::Result<WorkerSummary>>> = (0..self
            .local_workers)
            .map(|i| {
                let cfg = DistConfig {
                    worker: format!("{}-l{i}", cfg.worker),
                    ..cfg.clone()
                };
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || run_worker(&cfg, &stop, None))
            })
            .collect();

        let started = Instant::now();
        let mut last_progress = Instant::now();
        let mut hinted = false;
        while !pending.is_empty() {
            let resolved = self.sweep(&mut pending, &mut rows, &docs);
            if pending.is_empty() {
                break;
            }
            if resolved == 0
                && self.local_workers == 0
                && !hinted
                && started.elapsed() > Duration::from_secs(10)
            {
                eprintln!(
                    "dist: no progress after {:.0}s and no local workers — start one with \
                     `belenos worker --dist-dir {}`",
                    started.elapsed().as_secs_f64(),
                    cfg.dir.display()
                );
                hinted = true;
            }
            if last_progress.elapsed() >= PROGRESS_EVERY {
                let merged = self.merged();
                let line = format!(
                    "dist: {}/{} job(s) outstanding, {} worker(s) seen, {:.0}s elapsed",
                    pending.len(),
                    jobs.len(),
                    merged.per_worker.len(),
                    started.elapsed().as_secs_f64()
                );
                tele.progress(&line);
                eprintln!("{line}");
                last_progress = Instant::now();
            }
            std::thread::sleep(POLL);
        }

        stop.store(true, Ordering::Relaxed);
        for handle in locals {
            // A worker that panicked (it should never) forfeits only
            // its summary; its jobs were re-claimable all along.
            let _ = handle.join();
        }
        drop(span);

        rows
    }
}

impl Coordinator {
    /// One poll sweep: resolves every pending job whose done marker
    /// (and cache entry) landed, and republishes jobs that vanished.
    /// Returns how many jobs resolved this sweep.
    fn sweep(
        &self,
        pending: &mut HashMap<u64, Pending>,
        rows: &mut Vec<(usize, Result<SimStats, String>, Duration)>,
        docs: &HashMap<u64, JobDoc>,
    ) -> usize {
        let cfg = &self.cfg;
        let mut resolved: Vec<u64> = Vec::new();
        // Scan order matters for the vanished check: a job moves
        // board → lease → done, and `done` is re-checked last to cover
        // the done-write/lease-remove window.
        let open: HashSet<u64> = board::board_digests(cfg).iter().copied().collect();
        let leased: HashSet<u64> = board::leases(cfg).iter().map(|l| l.digest).collect();
        for (&digest, state) in pending.iter_mut() {
            let marker = cfg.done_path(digest);
            let done = std::fs::read_to_string(&marker)
                .ok()
                .and_then(|text| DoneDoc::decode(&text).ok());
            if let Some(done) = done {
                if let Some(msg) = &done.error {
                    self.merged.lock().unwrap().record(&done);
                    rows.push((
                        state.index,
                        Err(msg.clone()),
                        Duration::from_secs_f64(done.wall_s.max(0.0)),
                    ));
                    let _ = std::fs::remove_file(&marker);
                    resolved.push(digest);
                } else if let Some(stats) = read_entry(&state.cache_entry) {
                    self.merged.lock().unwrap().record(&done);
                    rows.push((
                        state.index,
                        Ok(stats),
                        Duration::from_secs_f64(done.wall_s.max(0.0)),
                    ));
                    let _ = std::fs::remove_file(&marker);
                    resolved.push(digest);
                } else {
                    // Marker without a readable result: give the cache
                    // write a grace window, then start the job over.
                    state.marker_stalls += 1;
                    if state.marker_stalls > MARKER_GRACE_SWEEPS {
                        state.marker_stalls = 0;
                        let _ = std::fs::remove_file(&marker);
                        if let Some(doc) = docs.get(&digest) {
                            let _ = board::publish(cfg, doc);
                        }
                    }
                }
                continue;
            }
            if open.contains(&digest) || leased.contains(&digest) {
                state.vanished_sweeps = 0;
                continue;
            }
            // Visible nowhere. Either we raced a state transition
            // (next sweep will see it) or the file is truly gone (an
            // operator wiped the dir) — republish after two misses.
            state.vanished_sweeps += 1;
            if state.vanished_sweeps > 2 {
                state.vanished_sweeps = 0;
                if let Some(doc) = docs.get(&digest) {
                    let _ = board::publish(cfg, doc);
                }
            }
        }
        let n = resolved.len();
        for digest in resolved {
            pending.remove(&digest);
        }
        n
    }
}

/// Reads and decodes a cache entry file directly (no [`Cache`] miss
/// accounting — this is a poll, not a lookup).
///
/// [`Cache`]: belenos_runner::Cache
fn read_entry(path: &std::path::Path) -> Option<SimStats> {
    decode_stats(&std::fs::read_to_string(path).ok()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_summary_tallies_and_percentiles() {
        let mut merged = MergedSummary::default();
        for (worker, wall, stolen, error) in [
            ("w1", 0.1, false, None),
            ("w1", 0.3, true, None),
            ("w2", 0.2, false, Some("boom".to_string())),
        ] {
            merged.record(&DoneDoc {
                digest: 1,
                worker: worker.into(),
                wall_s: wall,
                stolen,
                error,
            });
        }
        assert_eq!(merged.jobs(), 3);
        assert_eq!(merged.stolen(), 1);
        assert_eq!(merged.per_worker["w1"].jobs, 2);
        assert_eq!(merged.per_worker["w2"].failed, 1);
        assert_eq!(merged.wall_percentile(50), 0.2);
        assert_eq!(merged.wall_percentile(100), 0.3);
        assert_eq!(MergedSummary::default().wall_percentile(95), 0.0);
    }

    #[test]
    fn rollup_section_lists_workers_and_aggregate() {
        let dir = std::env::temp_dir().join(format!("belenos-dist-rollup-{}", std::process::id()));
        let coord = Coordinator::new(DistConfig::new(&dir, "c"));
        for w in ["w1", "w2"] {
            coord.merged.lock().unwrap().record(&DoneDoc {
                digest: 1,
                worker: w.into(),
                wall_s: 0.5,
                stolen: w == "w2",
                error: None,
            });
        }
        let mut report = Report::new("telemetry_rollup");
        coord.append_rollup(
            &mut report,
            &CacheStats {
                hits: 7,
                misses: 3,
                inserts: 3,
            },
        );
        let text = report.to_text();
        assert!(text.contains("distributed"), "{text}");
        assert!(text.contains("w1"), "{text}");
        assert!(text.contains("w2"), "{text}");
        assert!(text.contains("(all)"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

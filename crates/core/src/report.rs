//! Structured figure/table artifacts.
//!
//! Every analysis in [`crate::figures`] produces a [`Report`] — an
//! ordered list of titled [`Section`]s, each a named-column table whose
//! cells carry both the exact display text and (for numeric cells) the
//! raw value. Renderers are separate from the data:
//!
//! * [`Report::to_text`] reproduces the historical plain-text figure
//!   output **byte-for-byte** (the golden tests in `tests/campaign.rs`
//!   pin this against pre-refactor captures);
//! * [`Report::to_json`] / [`Report::to_csv`] expose the same rows as
//!   machine-readable data, so downstream tools consume values instead
//!   of scraping stdout.

use belenos_json::{Json, ToJson};
use belenos_profiler::report::{fmt, Table};

/// One table cell: the exact text shown in the rendered table, plus the
/// raw numeric value when the cell is a measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Exact display text (what [`Report::to_text`] prints).
    pub text: String,
    /// Raw value for numeric cells; `None` for labels.
    pub value: Option<f64>,
}

impl Cell {
    /// A label cell (workload id, category name, ...).
    pub fn text(text: impl Into<String>) -> Cell {
        Cell {
            text: text.into(),
            value: None,
        }
    }

    /// A numeric cell displayed with fixed precision.
    pub fn num(value: f64, digits: usize) -> Cell {
        Cell {
            text: fmt(value, digits),
            value: Some(value),
        }
    }

    /// A cell with custom display text that still carries a raw value
    /// (e.g. the Fig. 4 `R 79.2%` glyph dots).
    pub fn labeled(text: impl Into<String>, value: f64) -> Cell {
        Cell {
            text: text.into(),
            value: Some(value),
        }
    }
}

impl ToJson for Cell {
    fn to_json(&self) -> Json {
        match self.value {
            Some(v) => Json::Num(v),
            None => Json::Str(self.text.clone()),
        }
    }
}

/// One titled table within a report.
///
/// The title may span several lines (legends, notes); [`Report::to_text`]
/// prints it verbatim above the rendered table.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Heading printed above the table (may contain newlines).
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Data rows; each row has one [`Cell`] per column.
    pub rows: Vec<Vec<Cell>>,
}

impl Section {
    /// A new empty section.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Section {
        Section {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Section {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "section `{}`: column count mismatch",
            self.title.lines().next().unwrap_or("")
        );
        self.rows.push(cells);
        self
    }

    fn table(&self) -> Table {
        let columns: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        let mut t = Table::new(&columns);
        for row in &self.rows {
            t.row(row.iter().map(|c| c.text.clone()).collect());
        }
        t
    }
}

impl ToJson for Section {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("title", Json::Str(self.title.clone())),
            ("columns", self.columns.to_json()),
            (
                "rows",
                Json::Arr(self.rows.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }
}

/// A structured figure/table artifact: an identifier plus titled
/// sections of named-metric rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Stable analysis identifier (`"fig02_topdown"`, `"table1"`, ...).
    pub id: String,
    /// The report's sections, in print order.
    pub sections: Vec<Section>,
}

impl Report {
    /// A new empty report.
    pub fn new(id: impl Into<String>) -> Report {
        Report {
            id: id.into(),
            sections: Vec::new(),
        }
    }

    /// Appends a section and returns a mutable handle for filling rows.
    pub fn section(&mut self, title: impl Into<String>, columns: &[&str]) -> &mut Section {
        self.sections.push(Section::new(title, columns));
        self.sections.last_mut().expect("just pushed")
    }

    /// Builder form: appends an already-built section.
    pub fn with_section(mut self, section: Section) -> Report {
        self.sections.push(section);
        self
    }

    /// Renders the historical plain-text form (byte-identical to the
    /// pre-refactor figure strings).
    pub fn to_text(&self) -> String {
        self.sections
            .iter()
            .map(|s| format!("{}\n\n{}", s.title, s.table().render()))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Renders all sections as CSV. Each section is preceded by a
    /// `# <title>` comment line; sections are separated by blank lines.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            for line in s.title.lines() {
                out.push_str("# ");
                out.push_str(line);
                out.push('\n');
            }
            out.push_str(&s.table().to_csv());
        }
        out
    }

    /// Serializes the report as a pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).pretty()
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("report", Json::Str(self.id.clone())),
            (
                "sections",
                Json::Arr(self.sections.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("demo");
        let s = r.section("Demo: a table", &["Model", "IPC"]);
        s.row(vec![Cell::text("pd"), Cell::num(1.23456, 3)]);
        s.row(vec![Cell::text("co"), Cell::num(0.5, 3)]);
        r
    }

    #[test]
    fn text_rendering_matches_the_historical_format() {
        let text = sample().to_text();
        assert!(text.starts_with("Demo: a table\n\n"));
        assert!(text.contains("Model  IPC"));
        assert!(text.contains("1.235"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn multi_section_reports_join_like_the_old_format_strings() {
        let mut r = Report::new("two");
        r.section("Part a", &["x"]).row(vec![Cell::num(1.0, 1)]);
        r.section("Part b", &["y"]).row(vec![Cell::num(2.0, 1)]);
        // Old code: format!("{}\n\n{}\n{}\n\n{}", ta, a.render(), tb, b.render())
        let text = r.to_text();
        assert!(text.contains("1.0\n\nPart b\n\ny"), "{text}");
    }

    #[test]
    fn json_exposes_raw_values() {
        let json = ToJson::to_json(&sample());
        let rows = json.get("sections").unwrap().as_arr().unwrap()[0]
            .get("rows")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(rows[0].as_arr().unwrap()[0].as_str(), Some("pd"));
        // Raw value, not the 3-digit display rounding.
        assert_eq!(rows[0].as_arr().unwrap()[1].as_f64(), Some(1.23456));
        // The document parses back.
        assert!(belenos_json::Json::parse(&sample().to_json()).is_ok());
    }

    #[test]
    fn csv_has_comment_titles() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("# Demo: a table\nModel,IPC\n"));
        assert!(csv.contains("pd,1.235"));
    }

    #[test]
    fn labeled_cells_keep_text_and_value() {
        let c = Cell::labeled("R 79.2%", 0.792);
        assert_eq!(c.text, "R 79.2%");
        assert_eq!(ToJson::to_json(&c), Json::Num(0.792));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_is_checked() {
        let mut r = Report::new("bad");
        r.section("t", &["a", "b"]).row(vec![Cell::text("x")]);
    }
}

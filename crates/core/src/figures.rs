//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each function renders plain-text tables whose rows/series match what
//! the paper plots; the `belenos-bench` binaries print them and
//! EXPERIMENTS.md records paper-vs-measured comparisons.
//!
//! Figures that simulate take the campaign's [`SimOptions`] (budget,
//! sampling, core-model backend) and return `Result`: a wedged
//! simulation point surfaces as a [`SimFailure`] so one broken figure
//! never kills a whole campaign binary.

use crate::experiment::Experiment;
use crate::options::{SimFailure, SimOptions};
use crate::sweep;
use belenos_profiler::report::{fmt, Table};
use belenos_profiler::{HotspotProfile, MemoryProfile, TopDown};
use belenos_runner::{RunPlan, Runner};
use belenos_trace::FnCategory;
use belenos_uarch::config::BranchPredictorKind;
use belenos_uarch::{CoreConfig, SimStats};
use belenos_workloads::{catalog, WorkloadSpec};

/// Simulates every experiment once under `config` through the batch
/// engine: points run in parallel and configs shared with other figures
/// (the gem5 baseline, the host-like profile) are simulated only once
/// per process.
fn simulate_batch(
    experiments: &[Experiment],
    label: &str,
    config: &CoreConfig,
    opts: &SimOptions,
) -> Result<Vec<SimStats>, SimFailure> {
    let mut plan = RunPlan::new();
    for w in 0..experiments.len() {
        plan.push(
            belenos_runner::JobSpec::new(w, label, opts.configure(config.clone()), opts.max_ops)
                .with_sampling(opts.sampling.clone()),
        );
    }
    Runner::from_env()
        .run(experiments, &plan)
        .into_iter()
        .map(|r| {
            if let Some(e) = &r.error {
                return Err(SimFailure {
                    workload: r.workload.clone(),
                    label: r.label.clone(),
                    message: e.clone(),
                });
            }
            Ok(r.stats)
        })
        .collect()
}

/// Table I: workload categories with paper vs generated input sizes.
pub fn table1() -> String {
    let mut t = Table::new(&[
        "Category",
        "Label",
        "Paper lower (kB)",
        "Paper upper (kB)",
        "Ours (kB)",
    ]);
    for spec in catalog() {
        let model = (spec.build)();
        let (lo, hi) = spec.category.paper_size_bounds_kb();
        t.row(vec![
            spec.category.name().to_string(),
            spec.category.label().to_string(),
            fmt(lo, 1),
            fmt(hi, 1),
            fmt(model.input_size_kb(), 1),
        ]);
    }
    format!("Table I: Dataset Models Breakdown\n\n{}", t.render())
}

/// Table II: the gem5 baseline configuration.
pub fn table2() -> String {
    let c = CoreConfig::gem5_baseline();
    let mut t = Table::new(&["Parameter", "Value"]);
    let rows: Vec<(&str, String)> = vec![
        ("ISA", "x86 (micro-op trace)".into()),
        ("CPU model", "O3 (out-of-order)".into()),
        ("Core clock frequency", format!("{} GHz", c.freq_ghz)),
        (
            "Pipeline width (fetch/dispatch/issue/commit)",
            format!(
                "{} / {} / {} / {}",
                c.fetch_width, c.dispatch_width, c.issue_width, c.commit_width
            ),
        ),
        ("Rename width", format!("{}", c.rename_width)),
        (
            "Writeback / squash width",
            format!("{} / {}", c.writeback_width, c.squash_width),
        ),
        ("Reorder Buffer (ROB) entries", format!("{}", c.rob_entries)),
        ("Issue Queue (IQ) entries", format!("{}", c.iq_entries)),
        (
            "Load Queue / Store Queue entries",
            format!("{} / {}", c.lq_entries, c.sq_entries),
        ),
        (
            "Integer / FP physical registers",
            format!("{} / {}", c.int_regs, c.fp_regs),
        ),
        (
            "L1I / L1D cache",
            format!("{} kB, {}-way", c.l1i.size_bytes / 1024, c.l1i.assoc),
        ),
        (
            "L2 cache",
            format!("{} MB, {}-way", c.l2.size_bytes / (1024 * 1024), c.l2.assoc),
        ),
        (
            "MSHRs (L1I / L1D)",
            format!("{} / {}", c.l1i.mshrs, c.l1d.mshrs),
        ),
        ("Cache line size", format!("{} B", c.l1d.line_bytes)),
        ("Memory type", "DDR4-2400 (latency/bandwidth model)".into()),
        ("Branch predictor", c.predictor.label().into()),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    format!(
        "Table II: Baseline CPU and system configuration\n\n{}",
        t.render()
    )
}

/// Fig. 2: top-down pipeline breakdown per VTune workload.
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig02_topdown(experiments: &[Experiment], opts: &SimOptions) -> Result<String, SimFailure> {
    // VTune-style profiles need windows spanning several Newton iterations
    // of the larger models; widen the budget accordingly.
    let opts = opts.scaled_budget(3);
    let mut t = Table::new(&["Model", "Retiring%", "FrontEnd%", "BadSpec%", "BackEnd%"]);
    let host = simulate_batch(experiments, "host", &CoreConfig::host_like(), &opts)?;
    for (exp, stats) in experiments.iter().zip(&host) {
        let td = TopDown::from_stats(&exp.id, stats);
        let p = td.percents();
        t.row(vec![
            exp.id.clone(),
            fmt(p[0], 1),
            fmt(p[1], 1),
            fmt(p[2], 1),
            fmt(p[3], 1),
        ]);
    }
    Ok(format!(
        "Fig. 2: Top-down pipeline breakdown (host-like config)\n\n{}",
        t.render()
    ))
}

/// Fig. 3: front-end / back-end stall split per VTune workload.
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig03_stalls(experiments: &[Experiment], opts: &SimOptions) -> Result<String, SimFailure> {
    // VTune-style profiles need windows spanning several Newton iterations
    // of the larger models; widen the budget accordingly.
    let opts = opts.scaled_budget(3);
    let mut t = Table::new(&[
        "Model",
        "FE Latency%",
        "FE Bandwidth%",
        "BE Core%",
        "BE Memory%",
    ]);
    let host = simulate_batch(experiments, "host", &CoreConfig::host_like(), &opts)?;
    for (exp, stats) in experiments.iter().zip(&host) {
        let td = TopDown::from_stats(&exp.id, stats);
        let s = td.stall_percents();
        t.row(vec![
            exp.id.clone(),
            fmt(s[0], 1),
            fmt(s[1], 1),
            fmt(s[2], 1),
            fmt(s[3], 1),
        ]);
    }
    Ok(format!(
        "Fig. 3: FE/BE stall breakdown (bad speculation negligible, as in the paper)\n\n{}",
        t.render()
    ))
}

/// Fig. 4: hotspot-category prevalence dots per workload.
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig04_hotspots(experiments: &[Experiment], opts: &SimOptions) -> Result<String, SimFailure> {
    // VTune-style profiles need windows spanning several Newton iterations
    // of the larger models; widen the budget accordingly.
    let opts = opts.scaled_budget(3);
    let mut t = Table::new(&[
        "Model",
        "Internal",
        "Sparsity",
        "DenseMat",
        "FEBioSpec",
        "MKL-BLAS",
        "Pardiso",
    ]);
    let host = simulate_batch(experiments, "host", &CoreConfig::host_like(), &opts)?;
    for (exp, stats) in experiments.iter().zip(&host) {
        let p = HotspotProfile::from_stats(&exp.id, stats);
        let dots = p.dots();
        let mut row = vec![exp.id.clone()];
        for (d, f) in dots.iter().zip(&p.fractions) {
            row.push(format!("{} {:>4.1}%", d.glyph(), f * 100.0));
        }
        t.row(row);
    }
    Ok(format!(
        "Fig. 4: Function-category share of clockticks\n\
         (R >75%, O 50-75%, Y 25-50%, G <25%, . absent)\n\n{}",
        t.render()
    ))
}

/// Fig. 5: numeric solve time vs model size over the full catalog.
pub fn fig05_scaling(experiments: &[Experiment]) -> String {
    let mut t = Table::new(&["Model", "Size (kB)", "Sim time (ms)", "ms per kB"]);
    for exp in experiments {
        let ms = exp.solve.wall_time.as_secs_f64() * 1e3;
        t.row(vec![
            exp.id.clone(),
            fmt(exp.solve.size_kb, 1),
            fmt(ms, 2),
            fmt(ms / exp.solve.size_kb, 3),
        ]);
    }
    format!(
        "Fig. 5: Simulation time vs model size (log-log in the paper; the eye \
         model sits above the trend)\n\n{}",
        t.render()
    )
}

/// Fig. 6: execution time grouped by biphasic / fluid / material models.
pub fn fig06_exec_time(experiments: &[Experiment]) -> String {
    let mut t = Table::new(&["Group", "Model", "CPU time (ms)"]);
    for exp in experiments {
        let group = if exp.id.starts_with("bp") {
            "Biphasic"
        } else if exp.id.starts_with("fl") {
            "Fluid"
        } else if exp.id.starts_with("ma") {
            "Material"
        } else {
            continue;
        };
        t.row(vec![
            group.to_string(),
            exp.id.clone(),
            fmt(exp.solve.wall_time.as_secs_f64() * 1e3, 2),
        ]);
    }
    format!("Fig. 6: Execution time by model group\n\n{}", t.render())
}

/// Fig. 7: fetch / execute / commit stage breakdowns on the gem5 baseline.
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig07_pipeline(experiments: &[Experiment], opts: &SimOptions) -> Result<String, SimFailure> {
    let mut fetch = Table::new(&[
        "Model",
        "activeFetch%",
        "icacheStall%",
        "miscStall%",
        "squash%",
        "tlb%",
    ]);
    let mut exec = Table::new(&["Model", "branches%", "fp%", "int%", "loads%", "stores%"]);
    let mut commit = Table::new(&["Model", "fp%", "int%", "loads%", "stores%"]);
    let baseline = simulate_batch(experiments, "baseline", &CoreConfig::gem5_baseline(), opts)?;
    for (exp, s) in experiments.iter().zip(&baseline) {
        let fetch_total = (s.active_fetch_cycles
            + s.icache_stall_cycles
            + s.misc_stall_cycles
            + s.squash_cycles
            + s.tlb_stall_cycles)
            .max(1) as f64;
        fetch.row(vec![
            exp.id.clone(),
            fmt(s.active_fetch_cycles as f64 / fetch_total * 100.0, 1),
            fmt(s.icache_stall_cycles as f64 / fetch_total * 100.0, 1),
            fmt(s.misc_stall_cycles as f64 / fetch_total * 100.0, 1),
            fmt(s.squash_cycles as f64 / fetch_total * 100.0, 1),
            fmt(s.tlb_stall_cycles as f64 / fetch_total * 100.0, 1),
        ]);
        let m = &s.exec_mix;
        exec.row(vec![
            exp.id.clone(),
            fmt(m.fraction(m.branches) * 100.0, 1),
            fmt(m.fraction(m.fp) * 100.0, 1),
            fmt(m.fraction(m.int) * 100.0, 1),
            fmt(m.fraction(m.loads) * 100.0, 1),
            fmt(m.fraction(m.stores) * 100.0, 1),
        ]);
        let c = &s.commit_mix;
        commit.row(vec![
            exp.id.clone(),
            fmt(c.fraction(c.fp) * 100.0, 1),
            fmt(c.fraction(c.int) * 100.0, 1),
            fmt(c.fraction(c.loads) * 100.0, 1),
            fmt(c.fraction(c.stores) * 100.0, 1),
        ]);
    }
    Ok(format!(
        "Fig. 7a: Fetch stage activity\n\n{}\nFig. 7b: Execute stage mix\n\n{}\n\
         Fig. 7c: Commit stage mix\n\n{}",
        fetch.render(),
        exec.render(),
        commit.render()
    ))
}

/// Fig. 8: execution time and IPC vs core frequency.
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig08_frequency(
    experiments: &[Experiment],
    opts: &SimOptions,
) -> Result<String, SimFailure> {
    let freqs = [1.0, 2.0, 3.0, 4.0];
    let pts = sweep::frequency(experiments, &freqs, opts)?;
    let mut time = Table::new(&[
        "Model",
        "1GHz (ms)",
        "2GHz",
        "3GHz",
        "4GHz",
        "speedup@3",
        "speedup@4",
    ]);
    let mut ipc = Table::new(&["Model", "IPC@1GHz", "IPC@2GHz", "IPC@3GHz", "IPC@4GHz"]);
    for exp in experiments {
        let series: Vec<&sweep::SweepPoint> = pts.iter().filter(|p| p.workload == exp.id).collect();
        let secs: Vec<f64> = series.iter().map(|p| p.stats.seconds()).collect();
        time.row(vec![
            exp.id.clone(),
            fmt(secs[0] * 1e3, 3),
            fmt(secs[1] * 1e3, 3),
            fmt(secs[2] * 1e3, 3),
            fmt(secs[3] * 1e3, 3),
            fmt(secs[0] / secs[2], 2),
            fmt(secs[0] / secs[3], 2),
        ]);
        ipc.row(vec![
            exp.id.clone(),
            fmt(series[0].stats.ipc(), 3),
            fmt(series[1].stats.ipc(), 3),
            fmt(series[2].stats.ipc(), 3),
            fmt(series[3].stats.ipc(), 3),
        ]);
    }
    Ok(format!(
        "Fig. 8a: Execution time vs frequency\n\n{}\nFig. 8b: IPC vs frequency\n\n{}",
        time.render(),
        ipc.render()
    ))
}

/// Fig. 9: cache sensitivity (L1I/L1D MPKI, L2 MPKI, normalized times).
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig09_cache(experiments: &[Experiment], opts: &SimOptions) -> Result<String, SimFailure> {
    let l1_sizes = [8usize, 16, 32, 64];
    let l2_sizes = [256usize, 512, 1024, 2048];
    let l1_pts = sweep::l1_size(experiments, &l1_sizes, opts)?;
    let l2_pts = sweep::l2_size(experiments, &l2_sizes, opts)?;
    let mut l1i = Table::new(&["Model", "8kB", "16kB", "32kB", "64kB"]);
    let mut l1d = Table::new(&["Model", "8kB", "16kB", "32kB", "64kB"]);
    let mut l1t = Table::new(&["Model", "t(8k)/t(64k)", "t(16k)/t(64k)", "t(32k)/t(64k)"]);
    let mut l2m = Table::new(&["Model", "256kB", "512kB", "1MB", "2MB"]);
    let mut l2t = Table::new(&["Model", "t(256k)/t(2M)", "t(512k)/t(2M)", "t(1M)/t(2M)"]);
    for exp in experiments {
        let s1: Vec<&sweep::SweepPoint> = l1_pts.iter().filter(|p| p.workload == exp.id).collect();
        l1i.row(vec![
            exp.id.clone(),
            fmt(s1[0].stats.l1i_mpki(), 2),
            fmt(s1[1].stats.l1i_mpki(), 2),
            fmt(s1[2].stats.l1i_mpki(), 2),
            fmt(s1[3].stats.l1i_mpki(), 2),
        ]);
        l1d.row(vec![
            exp.id.clone(),
            fmt(s1[0].stats.l1d_mpki(), 2),
            fmt(s1[1].stats.l1d_mpki(), 2),
            fmt(s1[2].stats.l1d_mpki(), 2),
            fmt(s1[3].stats.l1d_mpki(), 2),
        ]);
        let t64 = s1[3].stats.seconds();
        l1t.row(vec![
            exp.id.clone(),
            fmt(s1[0].stats.seconds() / t64, 3),
            fmt(s1[1].stats.seconds() / t64, 3),
            fmt(s1[2].stats.seconds() / t64, 3),
        ]);
        let s2: Vec<&sweep::SweepPoint> = l2_pts.iter().filter(|p| p.workload == exp.id).collect();
        l2m.row(vec![
            exp.id.clone(),
            fmt(s2[0].stats.l2_mpki(), 2),
            fmt(s2[1].stats.l2_mpki(), 2),
            fmt(s2[2].stats.l2_mpki(), 2),
            fmt(s2[3].stats.l2_mpki(), 2),
        ]);
        let t2m = s2[3].stats.seconds();
        l2t.row(vec![
            exp.id.clone(),
            fmt(s2[0].stats.seconds() / t2m, 3),
            fmt(s2[1].stats.seconds() / t2m, 3),
            fmt(s2[2].stats.seconds() / t2m, 3),
        ]);
    }
    Ok(format!(
        "Fig. 9a: L1I MPKI\n\n{}\nFig. 9b: L1D MPKI\n\n{}\nFig. 9c: L1 exec time (normalized to 64kB)\n\n{}\n\
         Fig. 9d: L2 MPKI\n\n{}\nFig. 9e: L2 exec time (normalized to 2MB)\n\n{}",
        l1i.render(),
        l1d.render(),
        l1t.render(),
        l2m.render(),
        l2t.render()
    ))
}

/// Fig. 10: execution-time delta vs pipeline width (baseline 6).
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig10_width(experiments: &[Experiment], opts: &SimOptions) -> Result<String, SimFailure> {
    let pts = sweep::width(experiments, &[2, 4, 6, 8], opts)?;
    let diffs = sweep::percent_diff_vs(&pts, "6");
    let mut t = Table::new(&["Model", "width=2 (%)", "width=4 (%)", "width=8 (%)"]);
    for exp in experiments {
        let d = |w: &str| {
            diffs
                .iter()
                .find(|(m, v, _)| m == &exp.id && v == w)
                .map(|&(_, _, d)| d)
                .unwrap_or(0.0)
        };
        t.row(vec![
            exp.id.clone(),
            fmt(d("2"), 1),
            fmt(d("4"), 1),
            fmt(d("8"), 1),
        ]);
    }
    Ok(format!(
        "Fig. 10: Execution time difference vs baseline pipeline width 6\n\
         (positive = slower than baseline)\n\n{}",
        t.render()
    ))
}

/// Fig. 11: execution-time delta vs LQ/SQ depth (baseline 72/56).
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig11_lsq(experiments: &[Experiment], opts: &SimOptions) -> Result<String, SimFailure> {
    let pts = sweep::lsq(experiments, &[(32, 24), (48, 40), (72, 56), (96, 72)], opts)?;
    let diffs = sweep::percent_diff_vs(&pts, "72_56");
    let mut t = Table::new(&["Model", "32_24 (%)", "48_40 (%)", "96_72 (%)"]);
    for exp in experiments {
        let d = |w: &str| {
            diffs
                .iter()
                .find(|(m, v, _)| m == &exp.id && v == w)
                .map(|&(_, _, d)| d)
                .unwrap_or(0.0)
        };
        t.row(vec![
            exp.id.clone(),
            fmt(d("32_24"), 1),
            fmt(d("48_40"), 1),
            fmt(d("96_72"), 1),
        ]);
    }
    Ok(format!(
        "Fig. 11: Execution time difference vs baseline LQ_SQ = 72_56\n\n{}",
        t.render()
    ))
}

/// Fig. 12: execution-time delta per branch predictor (vs TournamentBP).
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig12_branch(experiments: &[Experiment], opts: &SimOptions) -> Result<String, SimFailure> {
    let pts = sweep::branch_predictors(
        experiments,
        &[
            BranchPredictorKind::Tournament,
            BranchPredictorKind::Local,
            BranchPredictorKind::Ltage,
            BranchPredictorKind::Perceptron,
        ],
        opts,
    )?;
    let diffs = sweep::percent_diff_vs(&pts, "TournamentBP");
    let mut t = Table::new(&["Model", "LocalBP (%)", "LTAGE (%)", "MPP64KB (%)"]);
    for exp in experiments {
        let d = |w: &str| {
            diffs
                .iter()
                .find(|(m, v, _)| m == &exp.id && v == w)
                .map(|&(_, _, d)| d)
                .unwrap_or(0.0)
        };
        t.row(vec![
            exp.id.clone(),
            fmt(d("LocalBP"), 2),
            fmt(d("LTAGE"), 2),
            fmt(d("MultiperspectivePerceptron64KB"), 2),
        ]);
    }
    Ok(format!(
        "Fig. 12: Execution time difference vs TournamentBP baseline\n\n{}",
        t.render()
    ))
}

/// Supplementary: memory profile of each workload (bandwidth, MPKIs) —
/// the paper quotes the eye model's DRAM pressure in §III-C.
///
/// # Errors
///
/// The first failed simulation point.
pub fn memory_profiles(
    experiments: &[Experiment],
    opts: &SimOptions,
) -> Result<String, SimFailure> {
    // VTune-style profiles need windows spanning several Newton iterations
    // of the larger models; widen the budget accordingly.
    let opts = opts.scaled_budget(3);
    let mut t = Table::new(&[
        "Model",
        "L1I MPKI",
        "L1D MPKI",
        "L2 MPKI",
        "MemBound%",
        "DRAM GB/s",
    ]);
    let host = simulate_batch(experiments, "host", &CoreConfig::host_like(), &opts)?;
    for (exp, stats) in experiments.iter().zip(&host) {
        let m = MemoryProfile::from_stats(&exp.id, stats);
        t.row(vec![
            exp.id.clone(),
            fmt(m.l1i_mpki, 2),
            fmt(m.l1d_mpki, 2),
            fmt(m.l2_mpki, 2),
            fmt(m.memory_bound * 100.0, 1),
            fmt(m.dram_gbps, 2),
        ]);
    }
    Ok(format!(
        "Memory profiles (host-like config)\n\n{}",
        t.render()
    ))
}

/// Returns the default VTune-set specs (11 models + eye).
pub fn vtune_specs() -> Vec<WorkloadSpec> {
    belenos_workloads::vtune_set()
}

/// Returns the default gem5-set specs.
pub fn gem5_specs() -> Vec<WorkloadSpec> {
    belenos_workloads::gem5_set()
}

/// Dominant hotspot sanity used by tests: internal functions should lead
/// most workloads, as the paper observes.
///
/// # Errors
///
/// The first failed simulation point.
pub fn dominant_category(exp: &Experiment, opts: &SimOptions) -> Result<FnCategory, SimFailure> {
    let stats = simulate_batch(
        std::slice::from_ref(exp),
        "host",
        &CoreConfig::host_like(),
        opts,
    )?
    .pop()
    .expect("one job per experiment");
    Ok(HotspotProfile::from_stats(&exp.id, &stats).dominant())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_without_simulation() {
        let t1 = table1();
        assert!(t1.contains("Arterial Tissue"));
        assert!(t1.contains("98600.0"));
        let t2 = table2();
        assert!(t2.contains("224"));
        assert!(t2.contains("4 / 6 / 6 / 4"));
        assert!(t2.contains("TournamentBP"));
    }

    #[test]
    fn small_figure_pipeline_end_to_end() {
        // One tiny workload through fig-7-style reporting.
        let spec = belenos_workloads::by_id("pd").expect("pd");
        let exp = Experiment::prepare(&spec).unwrap();
        let out = fig07_pipeline(&[exp], &SimOptions::new(30_000)).expect("figure");
        assert!(out.contains("Fig. 7a"));
        assert!(out.contains("pd"));
    }

    #[test]
    fn figures_run_on_every_backend() {
        use belenos_uarch::ModelKind;
        let spec = belenos_workloads::by_id("pd").expect("pd");
        let exps = vec![Experiment::prepare(&spec).unwrap()];
        for kind in ModelKind::ALL {
            let opts = SimOptions::new(20_000).with_model(kind);
            let out = fig02_topdown(&exps, &opts).expect("figure");
            assert!(out.contains("pd"), "{kind} figure must render");
        }
    }
}

//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each function produces a structured [`Report`] whose rows/series
//! match what the paper plots; [`Report::to_text`] reproduces the
//! historical plain-text tables byte-for-byte, while
//! [`Report::to_json`] / [`Report::to_csv`] expose the same rows as
//! data. The `belenos` CLI prints them, and EXPERIMENTS.md records
//! paper-vs-measured comparisons.
//!
//! Figures that simulate take the campaign's [`Runner`] (the
//! cache-aware batch engine every job routes through) and [`SimOptions`]
//! (budget, sampling, core-model backend), and return `Result`: a
//! wedged simulation point surfaces as a [`SimFailure`] so one broken
//! figure never kills a whole campaign.

use crate::experiment::Experiment;
use crate::options::{SimFailure, SimOptions};
use crate::report::{Cell, Report};
use crate::sweep;
use belenos_profiler::{HotspotProfile, MemoryProfile, TopDown};
use belenos_runner::{RunPlan, Runner};
use belenos_trace::FnCategory;
use belenos_uarch::config::BranchPredictorKind;
use belenos_uarch::{CoreConfig, SimStats};
use belenos_workloads::{catalog, ScenarioSpec};

/// Simulates every experiment once under `config` through the batch
/// engine: points run in parallel and configs shared with other figures
/// (the gem5 baseline, the host-like profile) are simulated only once
/// per runner cache.
fn simulate_batch(
    runner: &Runner,
    experiments: &[Experiment],
    label: &str,
    config: &CoreConfig,
    opts: &SimOptions,
) -> Result<Vec<SimStats>, SimFailure> {
    let mut plan = RunPlan::new();
    for w in 0..experiments.len() {
        plan.push(
            belenos_runner::JobSpec::new(w, label, opts.configure(config.clone()), opts.max_ops)
                .with_sampling(opts.sampling.clone()),
        );
    }
    let _span = belenos_telemetry::global().span(
        "simulate_batch",
        &[("label", label.into()), ("points", plan.len().into())],
    );
    runner
        .run(experiments, &plan)
        .into_iter()
        .map(|r| {
            if let Some(e) = &r.error {
                return Err(SimFailure {
                    workload: r.workload.clone(),
                    label: r.label.clone(),
                    message: e.clone(),
                });
            }
            Ok(r.stats)
        })
        .collect()
}

/// Table I: workload categories with paper vs generated input sizes.
pub fn table1() -> Report {
    let mut r = Report::new("table1");
    let s = r.section(
        "Table I: Dataset Models Breakdown",
        &[
            "Category",
            "Label",
            "Paper lower (kB)",
            "Paper upper (kB)",
            "Ours (kB)",
        ],
    );
    for spec in catalog() {
        let model = spec.build_model().expect("catalog presets are valid");
        let category = spec.category();
        let (lo, hi) = category.paper_size_bounds_kb();
        s.row(vec![
            Cell::text(category.name()),
            Cell::text(category.label()),
            Cell::num(lo, 1),
            Cell::num(hi, 1),
            Cell::num(model.input_size_kb(), 1),
        ]);
    }
    r
}

/// Table II: the gem5 baseline configuration.
pub fn table2() -> Report {
    let c = CoreConfig::gem5_baseline();
    let mut r = Report::new("table2");
    let s = r.section(
        "Table II: Baseline CPU and system configuration",
        &["Parameter", "Value"],
    );
    let rows: Vec<(&str, String)> = vec![
        ("ISA", "x86 (micro-op trace)".into()),
        ("CPU model", "O3 (out-of-order)".into()),
        ("Core clock frequency", format!("{} GHz", c.freq_ghz)),
        (
            "Pipeline width (fetch/dispatch/issue/commit)",
            format!(
                "{} / {} / {} / {}",
                c.fetch_width, c.dispatch_width, c.issue_width, c.commit_width
            ),
        ),
        ("Rename width", format!("{}", c.rename_width)),
        (
            "Writeback / squash width",
            format!("{} / {}", c.writeback_width, c.squash_width),
        ),
        ("Reorder Buffer (ROB) entries", format!("{}", c.rob_entries)),
        ("Issue Queue (IQ) entries", format!("{}", c.iq_entries)),
        (
            "Load Queue / Store Queue entries",
            format!("{} / {}", c.lq_entries, c.sq_entries),
        ),
        (
            "Integer / FP physical registers",
            format!("{} / {}", c.int_regs, c.fp_regs),
        ),
        (
            "L1I / L1D cache",
            format!("{} kB, {}-way", c.l1i.size_bytes / 1024, c.l1i.assoc),
        ),
        (
            "L2 cache",
            format!("{} MB, {}-way", c.l2.size_bytes / (1024 * 1024), c.l2.assoc),
        ),
        (
            "MSHRs (L1I / L1D)",
            format!("{} / {}", c.l1i.mshrs, c.l1d.mshrs),
        ),
        ("Cache line size", format!("{} B", c.l1d.line_bytes)),
        ("Memory type", "DDR4-2400 (latency/bandwidth model)".into()),
        ("Branch predictor", c.predictor.label().into()),
    ];
    for (k, v) in rows {
        s.row(vec![Cell::text(k), Cell::text(v)]);
    }
    r
}

/// Fig. 2: top-down pipeline breakdown per VTune workload.
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig02_topdown(
    runner: &Runner,
    experiments: &[Experiment],
    opts: &SimOptions,
) -> Result<Report, SimFailure> {
    // VTune-style profiles need windows spanning several Newton iterations
    // of the larger models; widen the budget accordingly.
    let opts = opts.scaled_budget(3);
    let mut r = Report::new("fig02_topdown");
    let host = simulate_batch(runner, experiments, "host", &CoreConfig::host_like(), &opts)?;
    let s = r.section(
        "Fig. 2: Top-down pipeline breakdown (host-like config)",
        &["Model", "Retiring%", "FrontEnd%", "BadSpec%", "BackEnd%"],
    );
    for (exp, stats) in experiments.iter().zip(&host) {
        let td = TopDown::from_stats(&exp.id, stats);
        let p = td.percents();
        s.row(vec![
            Cell::text(&exp.id),
            Cell::num(p[0], 1),
            Cell::num(p[1], 1),
            Cell::num(p[2], 1),
            Cell::num(p[3], 1),
        ]);
    }
    Ok(r)
}

/// Fig. 3: front-end / back-end stall split per VTune workload.
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig03_stalls(
    runner: &Runner,
    experiments: &[Experiment],
    opts: &SimOptions,
) -> Result<Report, SimFailure> {
    // VTune-style profiles need windows spanning several Newton iterations
    // of the larger models; widen the budget accordingly.
    let opts = opts.scaled_budget(3);
    let mut r = Report::new("fig03_stalls");
    let host = simulate_batch(runner, experiments, "host", &CoreConfig::host_like(), &opts)?;
    let s = r.section(
        "Fig. 3: FE/BE stall breakdown (bad speculation negligible, as in the paper)",
        &[
            "Model",
            "FE Latency%",
            "FE Bandwidth%",
            "BE Core%",
            "BE Memory%",
        ],
    );
    for (exp, stats) in experiments.iter().zip(&host) {
        let td = TopDown::from_stats(&exp.id, stats);
        let st = td.stall_percents();
        s.row(vec![
            Cell::text(&exp.id),
            Cell::num(st[0], 1),
            Cell::num(st[1], 1),
            Cell::num(st[2], 1),
            Cell::num(st[3], 1),
        ]);
    }
    Ok(r)
}

/// Fig. 4: hotspot-category prevalence dots per workload.
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig04_hotspots(
    runner: &Runner,
    experiments: &[Experiment],
    opts: &SimOptions,
) -> Result<Report, SimFailure> {
    // VTune-style profiles need windows spanning several Newton iterations
    // of the larger models; widen the budget accordingly.
    let opts = opts.scaled_budget(3);
    let mut r = Report::new("fig04_hotspots");
    let host = simulate_batch(runner, experiments, "host", &CoreConfig::host_like(), &opts)?;
    let s = r.section(
        "Fig. 4: Function-category share of clockticks\n\
         (R >75%, O 50-75%, Y 25-50%, G <25%, . absent)",
        &[
            "Model",
            "Internal",
            "Sparsity",
            "DenseMat",
            "FEBioSpec",
            "MKL-BLAS",
            "Pardiso",
        ],
    );
    for (exp, stats) in experiments.iter().zip(&host) {
        let p = HotspotProfile::from_stats(&exp.id, stats);
        let dots = p.dots();
        let mut row = vec![Cell::text(&exp.id)];
        for (d, f) in dots.iter().zip(&p.fractions) {
            row.push(Cell::labeled(
                format!("{} {:>4.1}%", d.glyph(), f * 100.0),
                *f,
            ));
        }
        s.row(row);
    }
    Ok(r)
}

/// Fig. 5: numeric solve time vs model size over the full catalog.
pub fn fig05_scaling(experiments: &[Experiment]) -> Report {
    let mut r = Report::new("fig05_scaling");
    let s = r.section(
        "Fig. 5: Simulation time vs model size (log-log in the paper; the eye \
         model sits above the trend)",
        &["Model", "Size (kB)", "Sim time (ms)", "ms per kB"],
    );
    for exp in experiments {
        let ms = exp.solve.wall_time.as_secs_f64() * 1e3;
        s.row(vec![
            Cell::text(&exp.id),
            Cell::num(exp.solve.size_kb, 1),
            Cell::num(ms, 2),
            Cell::num(ms / exp.solve.size_kb, 3),
        ]);
    }
    r
}

/// Fig. 6: execution time grouped by biphasic / fluid / material models.
pub fn fig06_exec_time(experiments: &[Experiment]) -> Report {
    let mut r = Report::new("fig06_exec_time");
    let s = r.section(
        "Fig. 6: Execution time by model group",
        &["Group", "Model", "CPU time (ms)"],
    );
    for exp in experiments {
        let group = if exp.id.starts_with("bp") {
            "Biphasic"
        } else if exp.id.starts_with("fl") {
            "Fluid"
        } else if exp.id.starts_with("ma") {
            "Material"
        } else {
            continue;
        };
        s.row(vec![
            Cell::text(group),
            Cell::text(&exp.id),
            Cell::num(exp.solve.wall_time.as_secs_f64() * 1e3, 2),
        ]);
    }
    r
}

/// Fig. 7: fetch / execute / commit stage breakdowns on the gem5 baseline.
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig07_pipeline(
    runner: &Runner,
    experiments: &[Experiment],
    opts: &SimOptions,
) -> Result<Report, SimFailure> {
    let baseline = simulate_batch(
        runner,
        experiments,
        "baseline",
        &CoreConfig::gem5_baseline(),
        opts,
    )?;
    let mut fetch = crate::report::Section::new(
        "Fig. 7a: Fetch stage activity",
        &[
            "Model",
            "activeFetch%",
            "icacheStall%",
            "miscStall%",
            "squash%",
            "tlb%",
        ],
    );
    let mut exec = crate::report::Section::new(
        "Fig. 7b: Execute stage mix",
        &["Model", "branches%", "fp%", "int%", "loads%", "stores%"],
    );
    let mut commit = crate::report::Section::new(
        "Fig. 7c: Commit stage mix",
        &["Model", "fp%", "int%", "loads%", "stores%"],
    );
    for (exp, st) in experiments.iter().zip(&baseline) {
        let fetch_total = (st.active_fetch_cycles
            + st.icache_stall_cycles
            + st.misc_stall_cycles
            + st.squash_cycles
            + st.tlb_stall_cycles)
            .max(1) as f64;
        fetch.row(vec![
            Cell::text(&exp.id),
            Cell::num(st.active_fetch_cycles as f64 / fetch_total * 100.0, 1),
            Cell::num(st.icache_stall_cycles as f64 / fetch_total * 100.0, 1),
            Cell::num(st.misc_stall_cycles as f64 / fetch_total * 100.0, 1),
            Cell::num(st.squash_cycles as f64 / fetch_total * 100.0, 1),
            Cell::num(st.tlb_stall_cycles as f64 / fetch_total * 100.0, 1),
        ]);
        let m = &st.exec_mix;
        exec.row(vec![
            Cell::text(&exp.id),
            Cell::num(m.fraction(m.branches) * 100.0, 1),
            Cell::num(m.fraction(m.fp) * 100.0, 1),
            Cell::num(m.fraction(m.int) * 100.0, 1),
            Cell::num(m.fraction(m.loads) * 100.0, 1),
            Cell::num(m.fraction(m.stores) * 100.0, 1),
        ]);
        let c = &st.commit_mix;
        commit.row(vec![
            Cell::text(&exp.id),
            Cell::num(c.fraction(c.fp) * 100.0, 1),
            Cell::num(c.fraction(c.int) * 100.0, 1),
            Cell::num(c.fraction(c.loads) * 100.0, 1),
            Cell::num(c.fraction(c.stores) * 100.0, 1),
        ]);
    }
    Ok(Report::new("fig07_pipeline")
        .with_section(fetch)
        .with_section(exec)
        .with_section(commit))
}

/// Fig. 8: execution time and IPC vs core frequency.
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig08_frequency(
    runner: &Runner,
    experiments: &[Experiment],
    opts: &SimOptions,
) -> Result<Report, SimFailure> {
    let freqs = [1.0, 2.0, 3.0, 4.0];
    let pts = sweep::frequency(runner, experiments, &freqs, opts)?;
    let mut time = crate::report::Section::new(
        "Fig. 8a: Execution time vs frequency",
        &[
            "Model",
            "1GHz (ms)",
            "2GHz",
            "3GHz",
            "4GHz",
            "speedup@3",
            "speedup@4",
        ],
    );
    let mut ipc = crate::report::Section::new(
        "Fig. 8b: IPC vs frequency",
        &["Model", "IPC@1GHz", "IPC@2GHz", "IPC@3GHz", "IPC@4GHz"],
    );
    for exp in experiments {
        let series: Vec<&sweep::SweepPoint> = pts.iter().filter(|p| p.workload == exp.id).collect();
        let secs: Vec<f64> = series.iter().map(|p| p.stats.seconds()).collect();
        time.row(vec![
            Cell::text(&exp.id),
            Cell::num(secs[0] * 1e3, 3),
            Cell::num(secs[1] * 1e3, 3),
            Cell::num(secs[2] * 1e3, 3),
            Cell::num(secs[3] * 1e3, 3),
            Cell::num(secs[0] / secs[2], 2),
            Cell::num(secs[0] / secs[3], 2),
        ]);
        ipc.row(vec![
            Cell::text(&exp.id),
            Cell::num(series[0].stats.ipc(), 3),
            Cell::num(series[1].stats.ipc(), 3),
            Cell::num(series[2].stats.ipc(), 3),
            Cell::num(series[3].stats.ipc(), 3),
        ]);
    }
    Ok(Report::new("fig08_frequency")
        .with_section(time)
        .with_section(ipc))
}

/// Fig. 9: cache sensitivity (L1I/L1D MPKI, L2 MPKI, normalized times).
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig09_cache(
    runner: &Runner,
    experiments: &[Experiment],
    opts: &SimOptions,
) -> Result<Report, SimFailure> {
    let l1_sizes = [8usize, 16, 32, 64];
    let l2_sizes = [256usize, 512, 1024, 2048];
    let l1_pts = sweep::l1_size(runner, experiments, &l1_sizes, opts)?;
    let l2_pts = sweep::l2_size(runner, experiments, &l2_sizes, opts)?;
    let mut l1i = crate::report::Section::new(
        "Fig. 9a: L1I MPKI",
        &["Model", "8kB", "16kB", "32kB", "64kB"],
    );
    let mut l1d = crate::report::Section::new(
        "Fig. 9b: L1D MPKI",
        &["Model", "8kB", "16kB", "32kB", "64kB"],
    );
    let mut l1t = crate::report::Section::new(
        "Fig. 9c: L1 exec time (normalized to 64kB)",
        &["Model", "t(8k)/t(64k)", "t(16k)/t(64k)", "t(32k)/t(64k)"],
    );
    let mut l2m = crate::report::Section::new(
        "Fig. 9d: L2 MPKI",
        &["Model", "256kB", "512kB", "1MB", "2MB"],
    );
    let mut l2t = crate::report::Section::new(
        "Fig. 9e: L2 exec time (normalized to 2MB)",
        &["Model", "t(256k)/t(2M)", "t(512k)/t(2M)", "t(1M)/t(2M)"],
    );
    for exp in experiments {
        let s1: Vec<&sweep::SweepPoint> = l1_pts.iter().filter(|p| p.workload == exp.id).collect();
        l1i.row(vec![
            Cell::text(&exp.id),
            Cell::num(s1[0].stats.l1i_mpki(), 2),
            Cell::num(s1[1].stats.l1i_mpki(), 2),
            Cell::num(s1[2].stats.l1i_mpki(), 2),
            Cell::num(s1[3].stats.l1i_mpki(), 2),
        ]);
        l1d.row(vec![
            Cell::text(&exp.id),
            Cell::num(s1[0].stats.l1d_mpki(), 2),
            Cell::num(s1[1].stats.l1d_mpki(), 2),
            Cell::num(s1[2].stats.l1d_mpki(), 2),
            Cell::num(s1[3].stats.l1d_mpki(), 2),
        ]);
        let t64 = s1[3].stats.seconds();
        l1t.row(vec![
            Cell::text(&exp.id),
            Cell::num(s1[0].stats.seconds() / t64, 3),
            Cell::num(s1[1].stats.seconds() / t64, 3),
            Cell::num(s1[2].stats.seconds() / t64, 3),
        ]);
        let s2: Vec<&sweep::SweepPoint> = l2_pts.iter().filter(|p| p.workload == exp.id).collect();
        l2m.row(vec![
            Cell::text(&exp.id),
            Cell::num(s2[0].stats.l2_mpki(), 2),
            Cell::num(s2[1].stats.l2_mpki(), 2),
            Cell::num(s2[2].stats.l2_mpki(), 2),
            Cell::num(s2[3].stats.l2_mpki(), 2),
        ]);
        let t2m = s2[3].stats.seconds();
        l2t.row(vec![
            Cell::text(&exp.id),
            Cell::num(s2[0].stats.seconds() / t2m, 3),
            Cell::num(s2[1].stats.seconds() / t2m, 3),
            Cell::num(s2[2].stats.seconds() / t2m, 3),
        ]);
    }
    Ok(Report::new("fig09_cache")
        .with_section(l1i)
        .with_section(l1d)
        .with_section(l1t)
        .with_section(l2m)
        .with_section(l2t))
}

/// Fig. 10: execution-time delta vs pipeline width (baseline 6).
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig10_width(
    runner: &Runner,
    experiments: &[Experiment],
    opts: &SimOptions,
) -> Result<Report, SimFailure> {
    let pts = sweep::width(runner, experiments, &[2, 4, 6, 8], opts)?;
    let diffs = sweep::percent_diff_vs(&pts, "6");
    let mut r = Report::new("fig10_width");
    let s = r.section(
        "Fig. 10: Execution time difference vs baseline pipeline width 6\n\
         (positive = slower than baseline)",
        &["Model", "width=2 (%)", "width=4 (%)", "width=8 (%)"],
    );
    for exp in experiments {
        let d = |w: &str| {
            diffs
                .iter()
                .find(|(m, v, _)| m == &exp.id && v == w)
                .map(|&(_, _, d)| d)
                .unwrap_or(0.0)
        };
        s.row(vec![
            Cell::text(&exp.id),
            Cell::num(d("2"), 1),
            Cell::num(d("4"), 1),
            Cell::num(d("8"), 1),
        ]);
    }
    Ok(r)
}

/// Fig. 11: execution-time delta vs LQ/SQ depth (baseline 72/56).
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig11_lsq(
    runner: &Runner,
    experiments: &[Experiment],
    opts: &SimOptions,
) -> Result<Report, SimFailure> {
    let pts = sweep::lsq(
        runner,
        experiments,
        &[(32, 24), (48, 40), (72, 56), (96, 72)],
        opts,
    )?;
    let diffs = sweep::percent_diff_vs(&pts, "72_56");
    let mut r = Report::new("fig11_lsq");
    let s = r.section(
        "Fig. 11: Execution time difference vs baseline LQ_SQ = 72_56",
        &["Model", "32_24 (%)", "48_40 (%)", "96_72 (%)"],
    );
    for exp in experiments {
        let d = |w: &str| {
            diffs
                .iter()
                .find(|(m, v, _)| m == &exp.id && v == w)
                .map(|&(_, _, d)| d)
                .unwrap_or(0.0)
        };
        s.row(vec![
            Cell::text(&exp.id),
            Cell::num(d("32_24"), 1),
            Cell::num(d("48_40"), 1),
            Cell::num(d("96_72"), 1),
        ]);
    }
    Ok(r)
}

/// Fig. 12: execution-time delta per branch predictor (vs TournamentBP).
///
/// # Errors
///
/// The first failed simulation point.
pub fn fig12_branch(
    runner: &Runner,
    experiments: &[Experiment],
    opts: &SimOptions,
) -> Result<Report, SimFailure> {
    let pts = sweep::branch_predictors(runner, experiments, &BranchPredictorKind::ALL, opts)?;
    let diffs = sweep::percent_diff_vs(&pts, "TournamentBP");
    let mut r = Report::new("fig12_branch");
    let s = r.section(
        "Fig. 12: Execution time difference vs TournamentBP baseline",
        &["Model", "LocalBP (%)", "LTAGE (%)", "MPP64KB (%)"],
    );
    for exp in experiments {
        let d = |w: &str| {
            diffs
                .iter()
                .find(|(m, v, _)| m == &exp.id && v == w)
                .map(|&(_, _, d)| d)
                .unwrap_or(0.0)
        };
        s.row(vec![
            Cell::text(&exp.id),
            Cell::num(d("LocalBP"), 2),
            Cell::num(d("LTAGE"), 2),
            Cell::num(d("MultiperspectivePerceptron64KB"), 2),
        ]);
    }
    Ok(r)
}

/// Instruction-window ablation (paper §IV-C4 text): execution-time
/// change from growing ROB/IQ 224/128 → 448/256 (the paper observes
/// less than 4% improvement across workloads).
///
/// # Errors
///
/// The first failed simulation point.
pub fn ablation_rob_iq(
    runner: &Runner,
    experiments: &[Experiment],
    opts: &SimOptions,
) -> Result<Report, SimFailure> {
    let pts = sweep::rob_iq(runner, experiments, &[(224, 128), (448, 256)], opts)?;
    let diffs = sweep::percent_diff_vs(&pts, "224_128");
    let mut r = Report::new("ablation_rob_iq");
    let s = r.section(
        "ROB/IQ ablation: execution-time change going 224/128 -> 448/256\n\
         (paper: < 4% improvement across workloads)",
        &["Model", "448_256 (%)"],
    );
    for (wl, _, d) in diffs {
        s.row(vec![Cell::text(wl), Cell::num(d, 2)]);
    }
    Ok(r)
}

/// Supplementary: memory profile of each workload (bandwidth, MPKIs) —
/// the paper quotes the eye model's DRAM pressure in §III-C.
///
/// # Errors
///
/// The first failed simulation point.
pub fn memory_profiles(
    runner: &Runner,
    experiments: &[Experiment],
    opts: &SimOptions,
) -> Result<Report, SimFailure> {
    // VTune-style profiles need windows spanning several Newton iterations
    // of the larger models; widen the budget accordingly.
    let opts = opts.scaled_budget(3);
    let mut r = Report::new("memory_profiles");
    let host = simulate_batch(runner, experiments, "host", &CoreConfig::host_like(), &opts)?;
    let s = r.section(
        "Memory profiles (host-like config)",
        &[
            "Model",
            "L1I MPKI",
            "L1D MPKI",
            "L2 MPKI",
            "MemBound%",
            "DRAM GB/s",
        ],
    );
    for (exp, stats) in experiments.iter().zip(&host) {
        let m = MemoryProfile::from_stats(&exp.id, stats);
        s.row(vec![
            Cell::text(&exp.id),
            Cell::num(m.l1i_mpki, 2),
            Cell::num(m.l1d_mpki, 2),
            Cell::num(m.l2_mpki, 2),
            Cell::num(m.memory_bound * 100.0, 1),
            Cell::num(m.dram_gbps, 2),
        ]);
    }
    Ok(r)
}

/// Returns the default VTune-set specs (11 models + eye).
pub fn vtune_specs() -> Vec<ScenarioSpec> {
    belenos_workloads::vtune_set()
}

/// Returns the default gem5-set specs.
pub fn gem5_specs() -> Vec<ScenarioSpec> {
    belenos_workloads::gem5_set()
}

/// Mesh-resolution scaling analysis: IPC and dominant bottleneck class
/// per scenario-family as the mesh is refined — an analysis the static
/// catalog could never express, since it needs the *same* physics at
/// several resolutions. Rows group by family (experiments arrive
/// base-major from the campaign's resolution axis) and label each point
/// with its mesh resolution and model size.
///
/// # Errors
///
/// The first failed simulation point.
pub fn mesh_scaling(
    runner: &Runner,
    experiments: &[Experiment],
    opts: &SimOptions,
) -> Result<Report, SimFailure> {
    let baseline = simulate_batch(
        runner,
        experiments,
        "baseline",
        &CoreConfig::gem5_baseline(),
        opts,
    )?;
    let mut r = Report::new("mesh_scaling");
    let s = r.section(
        "Mesh-resolution scaling: IPC and bottleneck class vs mesh size\n\
         (gem5 baseline config; bottleneck = dominant TMA slot category)",
        &SCENARIO_COLUMNS,
    );
    for (exp, stats) in experiments.iter().zip(&baseline) {
        s.row(scenario_row(exp, stats));
    }
    Ok(r)
}

/// Column headers shared by [`mesh_scaling`] and `belenos scenario run`.
pub const SCENARIO_COLUMNS: [&str; 8] = [
    "Family",
    "Model",
    "Mesh",
    "DoFs",
    "Size (kB)",
    "IPC",
    "Retiring%",
    "Bottleneck",
];

/// One [`SCENARIO_COLUMNS`] report row characterizing `exp` under
/// `stats` — the single source of the scenario-characterization shape.
pub fn scenario_row(exp: &Experiment, stats: &SimStats) -> Vec<Cell> {
    let scenario = exp.scenario();
    let (retiring, _, _, _) = stats.topdown();
    vec![
        Cell::text(scenario.family.label()),
        Cell::text(&exp.id),
        Cell::text(scenario.mesh.resolution_label()),
        Cell::num(exp.solve.n_dofs as f64, 0),
        Cell::num(exp.solve.size_kb, 1),
        Cell::num(stats.ipc(), 3),
        Cell::num(retiring * 100.0, 1),
        Cell::text(top_bottleneck(stats)),
    ]
}

/// TMA stall-category names, in fixed slot order (shared by every
/// bottleneck-classifying report and the cross-backend agreement table).
pub const TMA_CATEGORIES: [&str; 4] = ["frontend", "bad_spec", "core", "memory"];

/// Stall categories ranked by slot count, heaviest first. The sort is
/// stable, so ties keep the fixed [`TMA_CATEGORIES`] order and every
/// report labels the same stats with the same bottleneck.
pub fn bottleneck_rank(stats: &SimStats) -> [usize; 4] {
    let slots = [
        stats.slots_frontend,
        stats.slots_bad_speculation,
        stats.slots_be_core,
        stats.slots_be_memory,
    ];
    let mut order = [0usize, 1, 2, 3];
    order.sort_by_key(|&i| std::cmp::Reverse(slots[i]));
    order
}

/// The dominant TMA stall category of a run (the bottleneck *class* the
/// paper links each workload character to).
pub fn top_bottleneck(stats: &SimStats) -> &'static str {
    TMA_CATEGORIES[bottleneck_rank(stats)[0]]
}

/// Dominant hotspot sanity used by tests: internal functions should lead
/// most workloads, as the paper observes.
///
/// # Errors
///
/// The first failed simulation point.
pub fn dominant_category(
    runner: &Runner,
    exp: &Experiment,
    opts: &SimOptions,
) -> Result<FnCategory, SimFailure> {
    let stats = simulate_batch(
        runner,
        std::slice::from_ref(exp),
        "host",
        &CoreConfig::host_like(),
        opts,
    )?
    .pop()
    .expect("one job per experiment");
    Ok(HotspotProfile::from_stats(&exp.id, &stats).dominant())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_without_simulation() {
        let t1 = table1().to_text();
        assert!(t1.contains("Arterial Tissue"));
        assert!(t1.contains("98600.0"));
        let t2 = table2().to_text();
        assert!(t2.contains("224"));
        assert!(t2.contains("4 / 6 / 6 / 4"));
        assert!(t2.contains("TournamentBP"));
    }

    #[test]
    fn small_figure_pipeline_end_to_end() {
        // One tiny workload through fig-7-style reporting.
        let spec = belenos_workloads::by_id("pd").expect("pd");
        let exp = Experiment::prepare(&spec).unwrap();
        let runner = Runner::isolated(2);
        let out = fig07_pipeline(&runner, &[exp], &SimOptions::new(30_000)).expect("figure");
        assert_eq!(out.sections.len(), 3);
        let text = out.to_text();
        assert!(text.contains("Fig. 7a"));
        assert!(text.contains("pd"));
        // The same rows serialize as data.
        assert!(out.to_json().contains("\"fig07_pipeline\""));
        assert!(out.to_csv().contains("# Fig. 7a: Fetch stage activity"));
    }

    #[test]
    fn figures_run_on_every_backend() {
        use belenos_uarch::ModelKind;
        let spec = belenos_workloads::by_id("pd").expect("pd");
        let exps = vec![Experiment::prepare(&spec).unwrap()];
        let runner = Runner::isolated(2);
        for kind in ModelKind::ALL {
            let opts = SimOptions::new(20_000).with_model(kind);
            let out = fig02_topdown(&runner, &exps, &opts).expect("figure");
            assert!(out.to_text().contains("pd"), "{kind} figure must render");
        }
    }
}

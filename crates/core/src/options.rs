//! Campaign-level simulation options and failure reporting.
//!
//! Every figure and sweep function takes a [`SimOptions`]: the micro-op
//! budget, how that budget is placed over the trace
//! ([`SamplingConfig`]), and which core-model backend replays it
//! ([`ModelKind`]). The bench binaries build one from the environment
//! (`BELENOS_MAX_OPS` / `BELENOS_SAMPLING` / `BELENOS_MODEL`) and pass
//! it through unchanged, so a whole campaign can be re-pointed at the
//! in-order or analytical backend with a single variable.

use belenos_json::{FromJson, Json, JsonError, ToJson};
use belenos_uarch::{CoreConfig, ModelKind, SamplingConfig};

/// How a simulation campaign runs: budget, budget placement, backend.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Micro-op budget per simulation (0 = unlimited).
    pub max_ops: usize,
    /// How the budget is placed over the trace (prefix truncation when
    /// off, SMARTS-style systematic intervals otherwise).
    pub sampling: SamplingConfig,
    /// Which core-model backend replays the trace.
    pub model: ModelKind,
}

impl SimOptions {
    /// Options with the given budget, sampling off, on the default
    /// (`o3`) backend.
    pub fn new(max_ops: usize) -> Self {
        SimOptions {
            max_ops,
            sampling: SamplingConfig::off(),
            model: ModelKind::O3,
        }
    }

    /// Sets the trace-sampling strategy.
    pub fn with_sampling(mut self, sampling: SamplingConfig) -> Self {
        self.sampling = sampling;
        self
    }

    /// Sets the core-model backend.
    pub fn with_model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Returns options with the budget multiplied by `factor` (used by
    /// the VTune-style profile figures, which need windows spanning
    /// several Newton iterations of the larger models).
    pub fn scaled_budget(&self, factor: usize) -> Self {
        let mut out = self.clone();
        out.max_ops = out.max_ops.saturating_mul(factor);
        out
    }

    /// Applies the backend selection to a machine configuration; sweep
    /// and figure grids route every [`CoreConfig`] they build through
    /// this, so backend choice follows the campaign options.
    pub fn configure(&self, cfg: CoreConfig) -> CoreConfig {
        cfg.with_model(self.model)
    }
}

/// Unlimited budget, sampling off, the `o3` backend.
impl Default for SimOptions {
    fn default() -> Self {
        SimOptions::new(0)
    }
}

impl ToJson for SimOptions {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("max_ops", Json::Num(self.max_ops as f64)),
            ("sampling", self.sampling.to_json()),
            ("model", self.model.to_json()),
        ])
    }
}

/// Missing fields take the [`SimOptions::default`] values (unlimited
/// budget, sampling off, `o3`), so terse specs stay valid.
impl FromJson for SimOptions {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if v.as_obj().is_none() {
            return Err(JsonError::new("options: expected an object"));
        }
        v.reject_unknown_fields("options", &["max_ops", "sampling", "model"])?;
        let mut opts = SimOptions::default();
        if let Some(n) = v.get("max_ops") {
            opts.max_ops = n.as_usize().ok_or_else(|| {
                JsonError::new("options.max_ops: expected a non-negative integer")
            })?;
        }
        if let Some(s) = v.get("sampling") {
            opts.sampling = SamplingConfig::from_json(s)?;
        }
        if let Some(m) = v.get("model") {
            opts.model = ModelKind::from_json(m)?;
        }
        Ok(opts)
    }
}

/// A simulation point that failed (its backend panicked — e.g. a wedged
/// pipeline hitting the simulator's stall limit).
///
/// The runner catches per-job panics; the sweep and figure layers
/// propagate them as this error instead of panicking, so a wedged
/// baseline surfaces as an error message, not a dead figure binary.
#[derive(Debug, Clone)]
pub struct SimFailure {
    /// Workload id of the failed point.
    pub workload: String,
    /// Swept-value label of the failed point.
    pub label: String,
    /// The backend's panic message.
    pub message: String,
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation point '{} {}' failed: {}",
            self.workload, self.label, self.message
        )
    }
}

impl std::error::Error for SimFailure {}

impl ToJson for SimFailure {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workload", Json::Str(self.workload.clone())),
            ("label", Json::Str(self.label.clone())),
            ("message", Json::Str(self.message.clone())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let o = SimOptions::new(1000)
            .with_sampling(SamplingConfig::smarts(8))
            .with_model(ModelKind::Analytic);
        assert_eq!(o.max_ops, 1000);
        assert_eq!(o.sampling.intervals, 8);
        assert_eq!(o.model, ModelKind::Analytic);
        assert_eq!(o.scaled_budget(3).max_ops, 3000);
        assert_eq!(o.scaled_budget(3).model, ModelKind::Analytic);
    }

    #[test]
    fn configure_threads_the_backend_into_configs() {
        let o = SimOptions::new(0).with_model(ModelKind::InOrder);
        let cfg = o.configure(CoreConfig::gem5_baseline());
        assert_eq!(cfg.model, ModelKind::InOrder);
        // Backend choice moves the cache identity.
        assert_ne!(
            cfg.stable_digest(),
            CoreConfig::gem5_baseline().stable_digest()
        );
    }

    #[test]
    fn options_json_roundtrip() {
        for opts in [
            SimOptions::default(),
            SimOptions::new(40_000)
                .with_sampling(SamplingConfig::smarts(16))
                .with_model(ModelKind::InOrder),
        ] {
            assert_eq!(SimOptions::from_json(&opts.to_json()).unwrap(), opts);
        }
        // Missing fields default; unknown budget types are rejected.
        let terse = Json::parse(r#"{"max_ops": 500}"#).unwrap();
        let opts = SimOptions::from_json(&terse).unwrap();
        assert_eq!(opts.max_ops, 500);
        assert!(opts.sampling.is_off());
        assert_eq!(opts.model, ModelKind::O3);
        assert!(SimOptions::from_json(&Json::parse(r#"{"max_ops": -1}"#).unwrap()).is_err());
        assert!(SimOptions::from_json(&Json::parse("[]").unwrap()).is_err());
    }

    #[test]
    fn failure_displays_the_point() {
        let f = SimFailure {
            workload: "pd".into(),
            label: "2GHz".into(),
            message: "pipeline wedged".into(),
        };
        assert!(f.to_string().contains("'pd 2GHz'"));
        assert!(f.to_string().contains("pipeline wedged"));
    }
}

//! The paper's gem5 sensitivity sweeps (Figs. 8-12): each isolates one
//! hardware parameter while holding the Table II baseline fixed.
//!
//! Every sweep builds a [`RunPlan`] over its (workload × config) grid and
//! submits it to the [`belenos_runner`] batch engine, so points run in
//! parallel (`BELENOS_JOBS` workers) and points shared between sweeps —
//! every sweep contains the Table II baseline — are simulated exactly
//! once per process thanks to the content-addressed result cache.
//!
//! Grids run under the [`SimOptions`] campaign settings: op budget,
//! budget placement, and core-model backend (the backend is folded into
//! every grid config, so sweeps re-point at the in-order or analytical
//! model wholesale). A point whose simulation panics (a wedged pipeline)
//! surfaces as a [`SimFailure`] instead of killing the process.

use crate::experiment::Experiment;
use crate::options::{SimFailure, SimOptions};
use belenos_runner::{JobSpec, RunPlan, Runner};
use belenos_uarch::config::BranchPredictorKind;
use belenos_uarch::{CoreConfig, SimStats};

/// One sweep sample: workload, swept value label, and the run statistics.
#[derive(Debug)]
pub struct SweepPoint {
    /// Workload id.
    pub workload: String,
    /// Human-readable swept value ("2GHz", "32kB", "LTAGE", ...).
    pub value: String,
    /// Statistics of the run.
    pub stats: SimStats,
}

/// Builds the (experiment × value) grid as a runner plan.
fn sweep_plan(
    experiments: &[Experiment],
    values: &[(String, CoreConfig)],
    opts: &SimOptions,
) -> RunPlan {
    let mut plan = RunPlan::new();
    for (w, _) in experiments.iter().enumerate() {
        for (label, cfg) in values {
            plan.push(
                JobSpec::new(w, label.clone(), opts.configure(cfg.clone()), opts.max_ops)
                    .with_sampling(opts.sampling.clone()),
            );
        }
    }
    plan
}

fn run_sweep(
    runner: &Runner,
    experiments: &[Experiment],
    values: &[(String, CoreConfig)],
    opts: &SimOptions,
) -> Result<Vec<SweepPoint>, SimFailure> {
    let plan = sweep_plan(experiments, values, opts);
    let _span = belenos_telemetry::global().span(
        "sweep",
        &[
            ("workloads", experiments.len().into()),
            ("values", values.len().into()),
            ("points", plan.len().into()),
        ],
    );
    runner
        .run(experiments, &plan)
        .into_iter()
        .map(|r| {
            if let Some(e) = &r.error {
                return Err(SimFailure {
                    workload: r.workload.clone(),
                    label: r.label.clone(),
                    message: e.clone(),
                });
            }
            Ok(SweepPoint {
                workload: r.workload,
                value: r.label,
                stats: r.stats,
            })
        })
        .collect()
}

/// Fig. 8: core frequency 1-4 GHz.
///
/// # Errors
///
/// The first failed (panicked) grid point.
pub fn frequency(
    runner: &Runner,
    experiments: &[Experiment],
    freqs: &[f64],
    opts: &SimOptions,
) -> Result<Vec<SweepPoint>, SimFailure> {
    let values: Vec<(String, CoreConfig)> = freqs
        .iter()
        .map(|&f| {
            (
                format!("{f}GHz"),
                CoreConfig::gem5_baseline().with_frequency(f),
            )
        })
        .collect();
    run_sweep(runner, experiments, &values, opts)
}

/// Fig. 9a-c: L1 (I+D) capacity sweep.
///
/// # Errors
///
/// The first failed (panicked) grid point.
pub fn l1_size(
    runner: &Runner,
    experiments: &[Experiment],
    sizes_kb: &[usize],
    opts: &SimOptions,
) -> Result<Vec<SweepPoint>, SimFailure> {
    let values: Vec<(String, CoreConfig)> = sizes_kb
        .iter()
        .map(|&kb| {
            (
                format!("{kb}kB"),
                CoreConfig::gem5_baseline().with_l1_size(kb * 1024),
            )
        })
        .collect();
    run_sweep(runner, experiments, &values, opts)
}

/// Fig. 9d-e: L2 capacity sweep.
///
/// # Errors
///
/// The first failed (panicked) grid point.
pub fn l2_size(
    runner: &Runner,
    experiments: &[Experiment],
    sizes_kb: &[usize],
    opts: &SimOptions,
) -> Result<Vec<SweepPoint>, SimFailure> {
    let values: Vec<(String, CoreConfig)> = sizes_kb
        .iter()
        .map(|&kb| {
            let label = if kb >= 1024 {
                format!("{}MB", kb / 1024)
            } else {
                format!("{kb}kB")
            };
            (label, CoreConfig::gem5_baseline().with_l2_size(kb * 1024))
        })
        .collect();
    run_sweep(runner, experiments, &values, opts)
}

/// Fig. 10: pipeline width sweep (baseline width 6).
///
/// # Errors
///
/// The first failed (panicked) grid point.
pub fn width(
    runner: &Runner,
    experiments: &[Experiment],
    widths: &[usize],
    opts: &SimOptions,
) -> Result<Vec<SweepPoint>, SimFailure> {
    let values: Vec<(String, CoreConfig)> = widths
        .iter()
        .map(|&w| {
            (
                format!("{w}"),
                CoreConfig::gem5_baseline().with_pipeline_width(w),
            )
        })
        .collect();
    run_sweep(runner, experiments, &values, opts)
}

/// Fig. 11: load/store-queue depth sweep (baseline 72/56).
///
/// # Errors
///
/// The first failed (panicked) grid point.
pub fn lsq(
    runner: &Runner,
    experiments: &[Experiment],
    depths: &[(usize, usize)],
    opts: &SimOptions,
) -> Result<Vec<SweepPoint>, SimFailure> {
    let values: Vec<(String, CoreConfig)> = depths
        .iter()
        .map(|&(l, s)| {
            (
                format!("{l}_{s}"),
                CoreConfig::gem5_baseline().with_lsq(l, s),
            )
        })
        .collect();
    run_sweep(runner, experiments, &values, opts)
}

/// Instruction-window ablation (paper §IV-C4 text): ROB/IQ sizes.
///
/// # Errors
///
/// The first failed (panicked) grid point.
pub fn rob_iq(
    runner: &Runner,
    experiments: &[Experiment],
    sizes: &[(usize, usize)],
    opts: &SimOptions,
) -> Result<Vec<SweepPoint>, SimFailure> {
    let values: Vec<(String, CoreConfig)> = sizes
        .iter()
        .map(|&(r, q)| {
            (
                format!("{r}_{q}"),
                CoreConfig::gem5_baseline().with_rob_iq(r, q),
            )
        })
        .collect();
    run_sweep(runner, experiments, &values, opts)
}

/// Fig. 12: branch predictor sweep (baseline TournamentBP).
///
/// # Errors
///
/// The first failed (panicked) grid point.
pub fn branch_predictors(
    runner: &Runner,
    experiments: &[Experiment],
    predictors: &[BranchPredictorKind],
    opts: &SimOptions,
) -> Result<Vec<SweepPoint>, SimFailure> {
    let values: Vec<(String, CoreConfig)> = predictors
        .iter()
        .map(|&p| {
            (
                p.label().to_string(),
                CoreConfig::gem5_baseline().with_predictor(p),
            )
        })
        .collect();
    run_sweep(runner, experiments, &values, opts)
}

/// Percent execution-time difference of each point against the point with
/// `baseline_label` for the same workload: `(time - base) / base * 100`.
pub fn percent_diff_vs(points: &[SweepPoint], baseline_label: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for p in points {
        if p.value == baseline_label {
            continue;
        }
        let base = points
            .iter()
            .find(|q| q.workload == p.workload && q.value == baseline_label)
            .expect("baseline point present");
        let d = (p.stats.seconds() - base.stats.seconds()) / base.stats.seconds() * 100.0;
        out.push((p.workload.clone(), p.value.clone(), d));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use belenos_uarch::{ModelKind, SamplingConfig};
    use belenos_workloads::by_id;

    fn tiny_experiment() -> Experiment {
        Experiment::prepare(&by_id("pd").expect("pd")).unwrap()
    }

    fn opts(max_ops: usize) -> SimOptions {
        SimOptions::new(max_ops)
    }

    fn runner() -> Runner {
        Runner::isolated(2)
    }

    #[test]
    fn frequency_sweep_monotone_seconds() {
        let exps = vec![tiny_experiment()];
        let pts = frequency(&runner(), &exps, &[1.0, 4.0], &opts(20_000)).expect("sweep");
        assert_eq!(pts.len(), 2);
        assert!(pts[0].stats.seconds() > pts[1].stats.seconds());
    }

    #[test]
    fn percent_diff_math() {
        let exps = vec![tiny_experiment()];
        let pts = width(&runner(), &exps, &[2, 6], &opts(20_000)).expect("sweep");
        let diffs = percent_diff_vs(&pts, "6");
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].1, "2");
        assert!(diffs[0].2 > -50.0);
    }

    #[test]
    fn parallel_sweep_bit_identical_to_serial() {
        let exps = vec![tiny_experiment()];
        let values: Vec<(String, CoreConfig)> = [1.0, 2.0, 4.0]
            .iter()
            .map(|&f| {
                (
                    format!("{f}GHz"),
                    CoreConfig::gem5_baseline().with_frequency(f),
                )
            })
            .collect();
        let plan = sweep_plan(&exps, &values, &opts(20_000));
        let serial = Runner::isolated(1).run(&exps, &plan);
        let parallel = Runner::isolated(4).run(&exps, &plan);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(
                s.stats, p.stats,
                "point {} diverged across thread counts",
                s.label
            );
        }
    }

    #[test]
    fn sweeps_share_baseline_points_via_the_cache() {
        let exps = vec![tiny_experiment()];
        let runner = Runner::isolated(2);
        // Fig. 8-style frequency sweep: contains the 3 GHz baseline...
        let freq: Vec<(String, CoreConfig)> = [1.0, 3.0]
            .iter()
            .map(|&f| {
                (
                    format!("{f}GHz"),
                    CoreConfig::gem5_baseline().with_frequency(f),
                )
            })
            .collect();
        runner.run(&exps, &sweep_plan(&exps, &freq, &opts(20_000)));
        // ...so the Fig. 11 LSQ sweep's 72_56 baseline point is a hit.
        let lsq: Vec<(String, CoreConfig)> =
            vec![("72_56".into(), CoreConfig::gem5_baseline().with_lsq(72, 56))];
        let (_, summary) = runner.run_with_summary(&exps, &sweep_plan(&exps, &lsq, &opts(20_000)));
        assert_eq!(
            summary.cache_hits, 1,
            "baseline must be shared across sweeps"
        );
        assert_eq!(summary.simulated, 0);
    }

    #[test]
    fn backend_selection_separates_sweep_points() {
        let exps = vec![tiny_experiment()];
        let runner = Runner::isolated(2);
        let values: Vec<(String, CoreConfig)> = vec![("3GHz".into(), CoreConfig::gem5_baseline())];
        let o3_opts = opts(20_000);
        let an_opts = opts(20_000).with_model(ModelKind::Analytic);
        runner.run(&exps, &sweep_plan(&exps, &values, &o3_opts));
        // The same grid under a different backend must NOT hit the cache.
        let (results, summary) =
            runner.run_with_summary(&exps, &sweep_plan(&exps, &values, &an_opts));
        assert_eq!(summary.cache_hits, 0, "backends must never alias");
        assert_eq!(summary.simulated, 1);
        assert!(results[0].error.is_none());
    }

    #[test]
    fn predictor_sweep_labels() {
        let exps = vec![tiny_experiment()];
        let pts = branch_predictors(
            &runner(),
            &exps,
            &[BranchPredictorKind::Tournament, BranchPredictorKind::Local],
            &opts(10_000),
        )
        .expect("sweep");
        assert_eq!(pts[0].value, "TournamentBP");
        assert_eq!(pts[1].value, "LocalBP");
    }

    #[test]
    fn sampled_sweep_options_flow_through() {
        let exps = vec![tiny_experiment()];
        let sampled = opts(20_000).with_sampling(SamplingConfig::smarts(8));
        let pts = frequency(&runner(), &exps, &[3.0], &sampled).expect("sweep");
        assert_eq!(pts.len(), 1);
        assert!(pts[0].stats.committed_ops > 0);
    }
}

//! The paper's gem5 sensitivity sweeps (Figs. 8-12): each isolates one
//! hardware parameter while holding the Table II baseline fixed.

use crate::experiment::Experiment;
use belenos_uarch::config::BranchPredictorKind;
use belenos_uarch::{CoreConfig, SimStats};

/// One sweep sample: workload, swept value label, and the run statistics.
#[derive(Debug)]
pub struct SweepPoint {
    /// Workload id.
    pub workload: String,
    /// Human-readable swept value ("2GHz", "32kB", "LTAGE", ...).
    pub value: String,
    /// Statistics of the run.
    pub stats: SimStats,
}

fn run_sweep<F>(experiments: &[Experiment], values: &[(String, CoreConfig)], max_ops: usize, mut each: F) -> Vec<SweepPoint>
where
    F: FnMut(&SweepPoint),
{
    let mut out = Vec::with_capacity(experiments.len() * values.len());
    for exp in experiments {
        for (label, cfg) in values {
            let stats = exp.simulate(cfg, max_ops);
            let point =
                SweepPoint { workload: exp.id.clone(), value: label.clone(), stats };
            each(&point);
            out.push(point);
        }
    }
    out
}

/// Fig. 8: core frequency 1-4 GHz.
pub fn frequency(experiments: &[Experiment], freqs: &[f64], max_ops: usize) -> Vec<SweepPoint> {
    let values: Vec<(String, CoreConfig)> = freqs
        .iter()
        .map(|&f| (format!("{f}GHz"), CoreConfig::gem5_baseline().with_frequency(f)))
        .collect();
    run_sweep(experiments, &values, max_ops, |_| {})
}

/// Fig. 9a-c: L1 (I+D) capacity sweep.
pub fn l1_size(experiments: &[Experiment], sizes_kb: &[usize], max_ops: usize) -> Vec<SweepPoint> {
    let values: Vec<(String, CoreConfig)> = sizes_kb
        .iter()
        .map(|&kb| (format!("{kb}kB"), CoreConfig::gem5_baseline().with_l1_size(kb * 1024)))
        .collect();
    run_sweep(experiments, &values, max_ops, |_| {})
}

/// Fig. 9d-e: L2 capacity sweep.
pub fn l2_size(experiments: &[Experiment], sizes_kb: &[usize], max_ops: usize) -> Vec<SweepPoint> {
    let values: Vec<(String, CoreConfig)> = sizes_kb
        .iter()
        .map(|&kb| {
            let label =
                if kb >= 1024 { format!("{}MB", kb / 1024) } else { format!("{kb}kB") };
            (label, CoreConfig::gem5_baseline().with_l2_size(kb * 1024))
        })
        .collect();
    run_sweep(experiments, &values, max_ops, |_| {})
}

/// Fig. 10: pipeline width sweep (baseline width 6).
pub fn width(experiments: &[Experiment], widths: &[usize], max_ops: usize) -> Vec<SweepPoint> {
    let values: Vec<(String, CoreConfig)> = widths
        .iter()
        .map(|&w| (format!("{w}"), CoreConfig::gem5_baseline().with_pipeline_width(w)))
        .collect();
    run_sweep(experiments, &values, max_ops, |_| {})
}

/// Fig. 11: load/store-queue depth sweep (baseline 72/56).
pub fn lsq(experiments: &[Experiment], depths: &[(usize, usize)], max_ops: usize) -> Vec<SweepPoint> {
    let values: Vec<(String, CoreConfig)> = depths
        .iter()
        .map(|&(l, s)| (format!("{l}_{s}"), CoreConfig::gem5_baseline().with_lsq(l, s)))
        .collect();
    run_sweep(experiments, &values, max_ops, |_| {})
}

/// Instruction-window ablation (paper §IV-C4 text): ROB/IQ sizes.
pub fn rob_iq(experiments: &[Experiment], sizes: &[(usize, usize)], max_ops: usize) -> Vec<SweepPoint> {
    let values: Vec<(String, CoreConfig)> = sizes
        .iter()
        .map(|&(r, q)| (format!("{r}_{q}"), CoreConfig::gem5_baseline().with_rob_iq(r, q)))
        .collect();
    run_sweep(experiments, &values, max_ops, |_| {})
}

/// Fig. 12: branch predictor sweep (baseline TournamentBP).
pub fn branch_predictors(
    experiments: &[Experiment],
    predictors: &[BranchPredictorKind],
    max_ops: usize,
) -> Vec<SweepPoint> {
    let values: Vec<(String, CoreConfig)> = predictors
        .iter()
        .map(|&p| (p.label().to_string(), CoreConfig::gem5_baseline().with_predictor(p)))
        .collect();
    run_sweep(experiments, &values, max_ops, |_| {})
}

/// Percent execution-time difference of each point against the point with
/// `baseline_label` for the same workload: `(time - base) / base * 100`.
pub fn percent_diff_vs(points: &[SweepPoint], baseline_label: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for p in points {
        if p.value == baseline_label {
            continue;
        }
        let base = points
            .iter()
            .find(|q| q.workload == p.workload && q.value == baseline_label)
            .expect("baseline point present");
        let d = (p.stats.seconds() - base.stats.seconds()) / base.stats.seconds() * 100.0;
        out.push((p.workload.clone(), p.value.clone(), d));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use belenos_workloads::by_id;

    fn tiny_experiment() -> Experiment {
        Experiment::prepare(&by_id("pd").expect("pd")).unwrap()
    }

    #[test]
    fn frequency_sweep_monotone_seconds() {
        let exps = vec![tiny_experiment()];
        let pts = frequency(&exps, &[1.0, 4.0], 20_000);
        assert_eq!(pts.len(), 2);
        assert!(pts[0].stats.seconds() > pts[1].stats.seconds());
    }

    #[test]
    fn percent_diff_math() {
        let exps = vec![tiny_experiment()];
        let pts = width(&exps, &[2, 6], 20_000);
        let diffs = percent_diff_vs(&pts, "6");
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].1, "2");
        assert!(diffs[0].2 > -50.0);
    }

    #[test]
    fn predictor_sweep_labels() {
        let exps = vec![tiny_experiment()];
        let pts = branch_predictors(
            &exps,
            &[BranchPredictorKind::Tournament, BranchPredictorKind::Local],
            10_000,
        );
        assert_eq!(pts[0].value, "TournamentBP");
        assert_eq!(pts[1].value, "LocalBP");
    }
}

//! The paper's gem5 sensitivity sweeps (Figs. 8-12): each isolates one
//! hardware parameter while holding the Table II baseline fixed.
//!
//! Every sweep builds a [`RunPlan`] over its (workload × config) grid and
//! submits it to the [`belenos_runner`] batch engine, so points run in
//! parallel (`BELENOS_JOBS` workers) and points shared between sweeps —
//! every sweep contains the Table II baseline — are simulated exactly
//! once per process thanks to the content-addressed result cache.

use crate::experiment::Experiment;
use belenos_runner::{JobSpec, RunPlan, Runner};
use belenos_uarch::config::BranchPredictorKind;
use belenos_uarch::{CoreConfig, SamplingConfig, SimStats};

/// One sweep sample: workload, swept value label, and the run statistics.
#[derive(Debug)]
pub struct SweepPoint {
    /// Workload id.
    pub workload: String,
    /// Human-readable swept value ("2GHz", "32kB", "LTAGE", ...).
    pub value: String,
    /// Statistics of the run.
    pub stats: SimStats,
}

/// Builds the (experiment × value) grid as a runner plan.
fn sweep_plan(
    experiments: &[Experiment],
    values: &[(String, CoreConfig)],
    max_ops: usize,
    sampling: &SamplingConfig,
) -> RunPlan {
    let mut plan = RunPlan::new();
    for (w, _) in experiments.iter().enumerate() {
        for (label, cfg) in values {
            plan.push(
                JobSpec::new(w, label.clone(), cfg.clone(), max_ops)
                    .with_sampling(sampling.clone()),
            );
        }
    }
    plan
}

fn run_sweep(
    experiments: &[Experiment],
    values: &[(String, CoreConfig)],
    max_ops: usize,
    sampling: &SamplingConfig,
) -> Vec<SweepPoint> {
    let plan = sweep_plan(experiments, values, max_ops, sampling);
    Runner::from_env()
        .run(experiments, &plan)
        .into_iter()
        .map(|r| {
            if let Some(e) = &r.error {
                panic!("sweep point '{} {}' failed: {e}", r.workload, r.label);
            }
            SweepPoint {
                workload: r.workload,
                value: r.label,
                stats: r.stats,
            }
        })
        .collect()
}

/// Fig. 8: core frequency 1-4 GHz.
pub fn frequency(
    experiments: &[Experiment],
    freqs: &[f64],
    max_ops: usize,
    sampling: &SamplingConfig,
) -> Vec<SweepPoint> {
    let values: Vec<(String, CoreConfig)> = freqs
        .iter()
        .map(|&f| {
            (
                format!("{f}GHz"),
                CoreConfig::gem5_baseline().with_frequency(f),
            )
        })
        .collect();
    run_sweep(experiments, &values, max_ops, sampling)
}

/// Fig. 9a-c: L1 (I+D) capacity sweep.
pub fn l1_size(
    experiments: &[Experiment],
    sizes_kb: &[usize],
    max_ops: usize,
    sampling: &SamplingConfig,
) -> Vec<SweepPoint> {
    let values: Vec<(String, CoreConfig)> = sizes_kb
        .iter()
        .map(|&kb| {
            (
                format!("{kb}kB"),
                CoreConfig::gem5_baseline().with_l1_size(kb * 1024),
            )
        })
        .collect();
    run_sweep(experiments, &values, max_ops, sampling)
}

/// Fig. 9d-e: L2 capacity sweep.
pub fn l2_size(
    experiments: &[Experiment],
    sizes_kb: &[usize],
    max_ops: usize,
    sampling: &SamplingConfig,
) -> Vec<SweepPoint> {
    let values: Vec<(String, CoreConfig)> = sizes_kb
        .iter()
        .map(|&kb| {
            let label = if kb >= 1024 {
                format!("{}MB", kb / 1024)
            } else {
                format!("{kb}kB")
            };
            (label, CoreConfig::gem5_baseline().with_l2_size(kb * 1024))
        })
        .collect();
    run_sweep(experiments, &values, max_ops, sampling)
}

/// Fig. 10: pipeline width sweep (baseline width 6).
pub fn width(
    experiments: &[Experiment],
    widths: &[usize],
    max_ops: usize,
    sampling: &SamplingConfig,
) -> Vec<SweepPoint> {
    let values: Vec<(String, CoreConfig)> = widths
        .iter()
        .map(|&w| {
            (
                format!("{w}"),
                CoreConfig::gem5_baseline().with_pipeline_width(w),
            )
        })
        .collect();
    run_sweep(experiments, &values, max_ops, sampling)
}

/// Fig. 11: load/store-queue depth sweep (baseline 72/56).
pub fn lsq(
    experiments: &[Experiment],
    depths: &[(usize, usize)],
    max_ops: usize,
    sampling: &SamplingConfig,
) -> Vec<SweepPoint> {
    let values: Vec<(String, CoreConfig)> = depths
        .iter()
        .map(|&(l, s)| {
            (
                format!("{l}_{s}"),
                CoreConfig::gem5_baseline().with_lsq(l, s),
            )
        })
        .collect();
    run_sweep(experiments, &values, max_ops, sampling)
}

/// Instruction-window ablation (paper §IV-C4 text): ROB/IQ sizes.
pub fn rob_iq(
    experiments: &[Experiment],
    sizes: &[(usize, usize)],
    max_ops: usize,
    sampling: &SamplingConfig,
) -> Vec<SweepPoint> {
    let values: Vec<(String, CoreConfig)> = sizes
        .iter()
        .map(|&(r, q)| {
            (
                format!("{r}_{q}"),
                CoreConfig::gem5_baseline().with_rob_iq(r, q),
            )
        })
        .collect();
    run_sweep(experiments, &values, max_ops, sampling)
}

/// Fig. 12: branch predictor sweep (baseline TournamentBP).
pub fn branch_predictors(
    experiments: &[Experiment],
    predictors: &[BranchPredictorKind],
    max_ops: usize,
    sampling: &SamplingConfig,
) -> Vec<SweepPoint> {
    let values: Vec<(String, CoreConfig)> = predictors
        .iter()
        .map(|&p| {
            (
                p.label().to_string(),
                CoreConfig::gem5_baseline().with_predictor(p),
            )
        })
        .collect();
    run_sweep(experiments, &values, max_ops, sampling)
}

/// Percent execution-time difference of each point against the point with
/// `baseline_label` for the same workload: `(time - base) / base * 100`.
pub fn percent_diff_vs(points: &[SweepPoint], baseline_label: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for p in points {
        if p.value == baseline_label {
            continue;
        }
        let base = points
            .iter()
            .find(|q| q.workload == p.workload && q.value == baseline_label)
            .expect("baseline point present");
        let d = (p.stats.seconds() - base.stats.seconds()) / base.stats.seconds() * 100.0;
        out.push((p.workload.clone(), p.value.clone(), d));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use belenos_workloads::by_id;

    fn tiny_experiment() -> Experiment {
        Experiment::prepare(&by_id("pd").expect("pd")).unwrap()
    }

    #[test]
    fn frequency_sweep_monotone_seconds() {
        let exps = vec![tiny_experiment()];
        let pts = frequency(&exps, &[1.0, 4.0], 20_000, &SamplingConfig::off());
        assert_eq!(pts.len(), 2);
        assert!(pts[0].stats.seconds() > pts[1].stats.seconds());
    }

    #[test]
    fn percent_diff_math() {
        let exps = vec![tiny_experiment()];
        let pts = width(&exps, &[2, 6], 20_000, &SamplingConfig::off());
        let diffs = percent_diff_vs(&pts, "6");
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].1, "2");
        assert!(diffs[0].2 > -50.0);
    }

    #[test]
    fn parallel_sweep_bit_identical_to_serial() {
        use belenos_runner::Runner;
        let exps = vec![tiny_experiment()];
        let values: Vec<(String, CoreConfig)> = [1.0, 2.0, 4.0]
            .iter()
            .map(|&f| {
                (
                    format!("{f}GHz"),
                    CoreConfig::gem5_baseline().with_frequency(f),
                )
            })
            .collect();
        let plan = sweep_plan(&exps, &values, 20_000, &SamplingConfig::off());
        let serial = Runner::isolated(1).run(&exps, &plan);
        let parallel = Runner::isolated(4).run(&exps, &plan);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(
                s.stats, p.stats,
                "point {} diverged across thread counts",
                s.label
            );
        }
    }

    #[test]
    fn sweeps_share_baseline_points_via_the_cache() {
        use belenos_runner::Runner;
        let exps = vec![tiny_experiment()];
        let runner = Runner::isolated(2);
        // Fig. 8-style frequency sweep: contains the 3 GHz baseline...
        let freq: Vec<(String, CoreConfig)> = [1.0, 3.0]
            .iter()
            .map(|&f| {
                (
                    format!("{f}GHz"),
                    CoreConfig::gem5_baseline().with_frequency(f),
                )
            })
            .collect();
        runner.run(
            &exps,
            &sweep_plan(&exps, &freq, 20_000, &SamplingConfig::off()),
        );
        // ...so the Fig. 11 LSQ sweep's 72_56 baseline point is a hit.
        let lsq: Vec<(String, CoreConfig)> =
            vec![("72_56".into(), CoreConfig::gem5_baseline().with_lsq(72, 56))];
        let (_, summary) = runner.run_with_summary(
            &exps,
            &sweep_plan(&exps, &lsq, 20_000, &SamplingConfig::off()),
        );
        assert_eq!(
            summary.cache_hits, 1,
            "baseline must be shared across sweeps"
        );
        assert_eq!(summary.simulated, 0);
    }

    #[test]
    fn predictor_sweep_labels() {
        let exps = vec![tiny_experiment()];
        let pts = branch_predictors(
            &exps,
            &[BranchPredictorKind::Tournament, BranchPredictorKind::Local],
            10_000,
            &SamplingConfig::off(),
        );
        assert_eq!(pts[0].value, "TournamentBP");
        assert_eq!(pts[1].value, "LocalBP");
    }
}

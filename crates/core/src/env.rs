//! The single `BELENOS_*` environment layer.
//!
//! Historically every bench binary re-parsed `BELENOS_MAX_OPS` /
//! `BELENOS_SAMPLING` / `BELENOS_MODEL` on its own. [`EnvOverrides`] is
//! now the only place those variables are read: it captures each as an
//! *optional* override, applies them onto a base [`SimOptions`], and
//! hands the runner half to [`RunnerConfig`]. CLI flags are layered on
//! top by mutating the override set after [`EnvOverrides::from_env`],
//! so precedence is always `defaults < environment < flags`.

use crate::options::SimOptions;
use belenos_runner::RunnerConfig;
use belenos_uarch::{ModelKind, SamplingConfig};

/// Historical per-simulation micro-op budget of the bench binaries
/// (`BELENOS_MAX_OPS` default).
pub const DEFAULT_MAX_OPS: usize = 1_000_000;

/// Default SMARTS interval count for `BELENOS_SAMPLING=on`. Few large
/// intervals alias with solver phase structure; ~a hundred or more
/// converge tightly (see [`SamplingConfig::smarts`]).
pub const DEFAULT_SAMPLING_INTERVALS: usize = 128;

/// Parses a `BELENOS_SAMPLING`-style value.
///
/// * empty, `off` or `0` — prefix truncation (sampling off);
/// * `on` — SMARTS sampling with [`DEFAULT_SAMPLING_INTERVALS`];
/// * `N` — SMARTS sampling with `N` intervals.
///
/// # Errors
///
/// A description of the unparsable value.
pub fn parse_sampling(value: &str) -> Result<SamplingConfig, String> {
    let v = value.trim();
    if v.is_empty() || v.eq_ignore_ascii_case("off") {
        return Ok(SamplingConfig::off());
    }
    if v.eq_ignore_ascii_case("on") {
        return Ok(SamplingConfig::smarts(DEFAULT_SAMPLING_INTERVALS));
    }
    match v.parse::<usize>() {
        Ok(n) => Ok(SamplingConfig::smarts(n)),
        Err(_) => Err(format!(
            "`{v}` not understood (expected off, on, or an interval count)"
        )),
    }
}

/// Optional overrides for a campaign's options and runner, sourced from
/// the environment and/or CLI flags.
#[derive(Debug, Clone, Default)]
pub struct EnvOverrides {
    /// Micro-op budget override (`BELENOS_MAX_OPS` / `--max-ops`).
    pub max_ops: Option<usize>,
    /// Sampling override (`BELENOS_SAMPLING` / `--sampling`).
    pub sampling: Option<SamplingConfig>,
    /// Backend override (`BELENOS_MODEL` / `--model`).
    pub model: Option<ModelKind>,
    /// Worker-count override (`BELENOS_JOBS` / `--jobs`).
    pub jobs: Option<usize>,
    /// Human-readable notes about ignored/unparsable variables; callers
    /// print these to stderr.
    pub warnings: Vec<String>,
}

impl EnvOverrides {
    /// No overrides at all (specs and defaults pass through untouched).
    pub fn none() -> Self {
        EnvOverrides::default()
    }

    /// Captures `BELENOS_MAX_OPS`, `BELENOS_SAMPLING`, `BELENOS_MODEL`
    /// and `BELENOS_JOBS`. Unset variables stay `None`; unparsable ones
    /// stay `None` and add a warning.
    pub fn from_env() -> Self {
        let mut o = EnvOverrides::default();
        if let Ok(v) = std::env::var("BELENOS_MAX_OPS") {
            match v.trim().parse::<usize>() {
                Ok(n) => o.max_ops = Some(n),
                Err(_) => o
                    .warnings
                    .push(format!("BELENOS_MAX_OPS={v} not understood; ignored")),
            }
        }
        if let Ok(v) = std::env::var("BELENOS_SAMPLING") {
            match parse_sampling(&v) {
                Ok(s) => o.sampling = Some(s),
                Err(e) => o.warnings.push(format!("BELENOS_SAMPLING: {e}; ignored")),
            }
        }
        if let Ok(v) = std::env::var("BELENOS_MODEL") {
            match ModelKind::parse(&v) {
                Some(m) => o.model = Some(m),
                None => o
                    .warnings
                    .push(format!("BELENOS_MODEL={v} not understood; ignored")),
            }
        }
        if let Ok(v) = std::env::var("BELENOS_JOBS") {
            match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => o.jobs = Some(n),
                _ => o
                    .warnings
                    .push(format!("BELENOS_JOBS={v} not understood; ignored")),
            }
        }
        o
    }

    /// Layers `over` on top of `self`: any override `over` carries wins,
    /// anything it leaves unset falls through. The CLI merges
    /// `EnvOverrides::from_env()` with the flag-derived overrides this
    /// way, giving the `defaults < environment < flags` precedence.
    pub fn merged(&self, over: &EnvOverrides) -> EnvOverrides {
        EnvOverrides {
            max_ops: over.max_ops.or(self.max_ops),
            sampling: over.sampling.clone().or_else(|| self.sampling.clone()),
            model: over.model.or(self.model),
            jobs: over.jobs.or(self.jobs),
            warnings: self
                .warnings
                .iter()
                .chain(over.warnings.iter())
                .cloned()
                .collect(),
        }
    }

    /// Applies the simulation overrides onto `base`.
    pub fn apply(&self, mut base: SimOptions) -> SimOptions {
        if let Some(n) = self.max_ops {
            base.max_ops = n;
        }
        if let Some(s) = &self.sampling {
            base.sampling = s.clone();
        }
        if let Some(m) = self.model {
            base.model = m;
        }
        base
    }

    /// The full campaign options the bench commands run under: the
    /// historical defaults ([`DEFAULT_MAX_OPS`] budget, sampling off,
    /// `o3`) with the overrides applied.
    pub fn options(&self) -> SimOptions {
        self.apply(SimOptions::new(DEFAULT_MAX_OPS))
    }

    /// The runner configuration: worker pool sized by this override
    /// set's `jobs` (environment and/or `--jobs`, already captured by
    /// [`EnvOverrides::from_env`] — the environment is not re-read
    /// here), progress streaming on.
    pub fn runner_config(&self) -> RunnerConfig {
        RunnerConfig {
            threads: self.jobs,
            progress: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_values_parse() {
        assert!(parse_sampling("off").unwrap().is_off());
        assert!(parse_sampling("").unwrap().is_off());
        assert!(parse_sampling("0").unwrap().is_off());
        assert_eq!(
            parse_sampling("on").unwrap().intervals,
            DEFAULT_SAMPLING_INTERVALS
        );
        assert_eq!(parse_sampling(" 16 ").unwrap().intervals, 16);
        assert!(parse_sampling("sometimes").is_err());
    }

    #[test]
    fn overrides_apply_on_top_of_base() {
        let o = EnvOverrides {
            max_ops: Some(5000),
            model: Some(ModelKind::Analytic),
            ..EnvOverrides::default()
        };
        let opts = o.apply(SimOptions::new(100).with_sampling(SamplingConfig::smarts(4)));
        assert_eq!(opts.max_ops, 5000);
        assert_eq!(opts.model, ModelKind::Analytic);
        // Untouched field passes through.
        assert_eq!(opts.sampling, SamplingConfig::smarts(4));
    }

    #[test]
    fn default_options_match_the_historical_bench_defaults() {
        let opts = EnvOverrides::none().options();
        assert_eq!(opts.max_ops, DEFAULT_MAX_OPS);
        assert!(opts.sampling.is_off());
        assert_eq!(opts.model, ModelKind::O3);
    }

    #[test]
    fn jobs_override_reaches_the_runner_config() {
        let o = EnvOverrides {
            jobs: Some(3),
            ..EnvOverrides::default()
        };
        assert_eq!(o.runner_config().threads, Some(3));
    }
}

//! One workload through the full pipeline: numeric solve → phase log →
//! micro-op expansion → cycle-level simulation.

use belenos_fem::FemError;
use belenos_trace::expand::{ExpandConfig, Expander};
use belenos_trace::PhaseLog;
use belenos_uarch::{CoreConfig, O3Core, SimStats};
use belenos_workloads::WorkloadSpec;
use std::time::Duration;

/// Summary of the numeric solve that produced the phase log.
#[derive(Debug, Clone)]
pub struct SolveSummary {
    /// Wall-clock time of the numeric FE solve (Fig. 5/6 y-axis).
    pub wall_time: Duration,
    /// Degrees of freedom.
    pub n_dofs: usize,
    /// Total Newton/Picard iterations.
    pub iterations: usize,
    /// Estimated input-file size in kB (Fig. 5 x-axis).
    pub size_kb: f64,
    /// Whether all steps converged.
    pub converged: bool,
}

/// A prepared experiment: the workload was solved once; the recorded
/// phase log can be replayed under any machine configuration.
#[derive(Debug)]
pub struct Experiment {
    /// Workload identifier.
    pub id: String,
    /// Numeric-solve summary.
    pub solve: SolveSummary,
    log: PhaseLog,
    expand: ExpandConfig,
}

impl Experiment {
    /// Solves the workload model and captures its phase log.
    ///
    /// # Errors
    ///
    /// Propagates model-construction and solver failures from the FE
    /// substrate.
    pub fn prepare(spec: &WorkloadSpec) -> Result<Self, FemError> {
        let mut model = (spec.build)();
        let size_kb = model.input_size_kb();
        let report = model.solve()?;
        Ok(Experiment {
            id: spec.id.to_string(),
            solve: SolveSummary {
                wall_time: report.wall_time,
                n_dofs: report.n_dofs,
                iterations: report.total_iterations,
                size_kb,
                converged: report.converged,
            },
            log: report.log,
            expand: spec.expand.clone(),
        })
    }

    /// The recorded phase log.
    pub fn log(&self) -> &PhaseLog {
        &self.log
    }

    /// Expands the log and runs it on a core configuration, simulating at
    /// most `max_ops` micro-ops (0 = unlimited).
    pub fn simulate(&self, cfg: &CoreConfig, max_ops: usize) -> SimStats {
        let expander = Expander::with_config(&self.log, self.expand.clone());
        let mut core = O3Core::new(cfg.clone());
        if max_ops == 0 {
            core.run(expander)
        } else {
            // Discard the first quarter as measurement warmup (cold caches
            // and untrained predictors), as gem5 checkpointed runs do.
            core.run_warm(expander.take(max_ops), max_ops as u64 / 4)
        }
    }

    /// Convenience: simulate on the Table II gem5 baseline.
    pub fn simulate_baseline(&self, max_ops: usize) -> SimStats {
        self.simulate(&CoreConfig::gem5_baseline(), max_ops)
    }

    /// Convenience: simulate on the host-like (VTune workstation) config.
    pub fn simulate_host(&self, max_ops: usize) -> SimStats {
        self.simulate(&CoreConfig::host_like(), max_ops)
    }
}

/// Prepares a list of workloads, returning `(spec.id, Experiment)` pairs;
/// failures abort with the failing workload named.
///
/// # Errors
///
/// The first preparation failure, annotated with the workload id.
pub fn prepare_all(specs: &[WorkloadSpec]) -> Result<Vec<Experiment>, FemError> {
    specs.iter().map(Experiment::prepare).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use belenos_workloads::by_id;

    #[test]
    fn prepare_and_simulate_smallest_workload() {
        let spec = by_id("pd").expect("pd exists");
        let exp = Experiment::prepare(&spec).unwrap();
        assert!(exp.solve.converged);
        assert!(!exp.log().is_empty());
        let stats = exp.simulate_baseline(50_000);
        assert!(stats.committed_ops > 10_000);
        assert!(stats.ipc() > 0.05);
        let (r, fe, bs, be) = stats.topdown();
        assert!((r + fe + bs + be - 1.0).abs() < 1e-9);
    }

    #[test]
    fn same_log_different_configs() {
        let spec = by_id("pd").expect("pd exists");
        let exp = Experiment::prepare(&spec).unwrap();
        let slow = exp.simulate(&CoreConfig::gem5_baseline().with_frequency(1.0), 30_000);
        let fast = exp.simulate(&CoreConfig::gem5_baseline().with_frequency(4.0), 30_000);
        // Warmup snapshots land on commit-group boundaries, so counts can
        // differ by less than one commit group across configs.
        assert!(
            slow.committed_ops.abs_diff(fast.committed_ops) < 8,
            "same trace must replay: {} vs {}",
            slow.committed_ops,
            fast.committed_ops
        );
        assert!(fast.seconds() < slow.seconds());
    }
}

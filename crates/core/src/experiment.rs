//! One workload through the full pipeline: numeric solve → phase log →
//! micro-op expansion → cycle-level simulation.

use belenos_fem::FemError;
use belenos_trace::expand::{ExpandConfig, Expander};
use belenos_trace::{KernelCall, MicroOp, PhaseLog};
use belenos_uarch::{CoreConfig, Fnv64, O3Core, SamplingConfig, SimStats};
use belenos_workloads::WorkloadSpec;
use std::sync::OnceLock;
use std::time::Duration;

/// Summary of the numeric solve that produced the phase log.
#[derive(Debug, Clone)]
pub struct SolveSummary {
    /// Wall-clock time of the numeric FE solve (Fig. 5/6 y-axis).
    pub wall_time: Duration,
    /// Degrees of freedom.
    pub n_dofs: usize,
    /// Total Newton/Picard iterations.
    pub iterations: usize,
    /// Estimated input-file size in kB (Fig. 5 x-axis).
    pub size_kb: f64,
    /// Whether all steps converged.
    pub converged: bool,
}

/// A prepared experiment: the workload was solved once; the recorded
/// phase log can be replayed under any machine configuration.
#[derive(Debug)]
pub struct Experiment {
    /// Workload identifier.
    pub id: String,
    /// Numeric-solve summary.
    pub solve: SolveSummary,
    log: PhaseLog,
    expand: ExpandConfig,
    fingerprint: u64,
    /// Total ops of the full trace, counted lazily on first use (interval
    /// placement needs the trace length before simulating it).
    total_ops: OnceLock<u64>,
    /// Largest op count the trace is *known to reach* (monotone lower
    /// bound), so repeated budget-clamp checks never re-count.
    trace_at_least: std::sync::atomic::AtomicU64,
}

impl Experiment {
    /// Solves the workload model and captures its phase log.
    ///
    /// # Errors
    ///
    /// Propagates model-construction and solver failures from the FE
    /// substrate.
    pub fn prepare(spec: &WorkloadSpec) -> Result<Self, FemError> {
        let mut model = (spec.build)();
        let size_kb = model.input_size_kb();
        let report = model.solve()?;
        let fingerprint = trace_fingerprint(&report.log, &spec.expand);
        Ok(Experiment {
            id: spec.id.to_string(),
            solve: SolveSummary {
                wall_time: report.wall_time,
                n_dofs: report.n_dofs,
                iterations: report.total_iterations,
                size_kb,
                converged: report.converged,
            },
            log: report.log,
            expand: spec.expand.clone(),
            fingerprint,
            total_ops: OnceLock::new(),
            trace_at_least: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The recorded phase log.
    pub fn log(&self) -> &PhaseLog {
        &self.log
    }

    /// Expands the log and runs it on a core configuration, simulating at
    /// most `max_ops` micro-ops (0 = unlimited).
    ///
    /// This is the historical *prefix-truncation* mode: a budgeted run
    /// measures only the first `max_ops` ops of the trace, which biases
    /// budgeted figures toward assembly and early Newton iterations. For
    /// representative budgeted measurements use
    /// [`Experiment::simulate_sampled`].
    pub fn simulate(&self, cfg: &CoreConfig, max_ops: usize) -> SimStats {
        let expander = Expander::with_config(&self.log, self.expand.clone());
        let mut core = O3Core::new(cfg.clone());
        if max_ops == 0 {
            core.run(expander)
        } else {
            // Discard the first quarter as measurement warmup (cold caches
            // and untrained predictors), as gem5 checkpointed runs do. The
            // quarter is of the *measured* window — the smaller of budget
            // and actual trace — so an oversized budget cannot discard the
            // whole trace as warmup and report empty statistics.
            let measured = (max_ops as u64).min(self.trace_ops_up_to(max_ops as u64));
            core.run_warm(expander.take(max_ops), measured / 4)
        }
    }

    /// Total micro-ops the full trace expands to (counted once, lazily;
    /// generation-only, far cheaper than simulating).
    pub fn total_trace_ops(&self) -> u64 {
        *self
            .total_ops
            .get_or_init(|| Expander::with_config(&self.log, self.expand.clone()).into_total_ops())
    }

    /// Trace length for clamping against `limit`: the memoized full
    /// count when already known, otherwise a generation pass that stops
    /// at `limit` — `O(min(limit, total))`, so a small budgeted run
    /// never pays a full-trace expansion just to learn "long enough".
    fn trace_ops_up_to(&self, limit: u64) -> u64 {
        use std::sync::atomic::Ordering;
        if let Some(&total) = self.total_ops.get() {
            return total;
        }
        let known = self.trace_at_least.load(Ordering::Relaxed);
        if known >= limit {
            return known;
        }
        let n = Expander::with_config(&self.log, self.expand.clone()).total_ops_up_to(limit);
        if n < limit {
            // The bounded pass exhausted the trace: that IS the total.
            let _ = self.total_ops.set(n);
        } else {
            self.trace_at_least.fetch_max(n, Ordering::Relaxed);
        }
        n
    }

    /// Simulates under `cfg` with the op budget placed per `sampling`.
    ///
    /// * `sampling` off (or `max_ops == 0`): identical to
    ///   [`Experiment::simulate`], bit for bit.
    /// * budget covering the whole trace: an exact full-trace run
    ///   (identical to `max_ops == 0`).
    /// * otherwise, SMARTS-style systematic sampling: the budget is split
    ///   into `sampling.intervals` measurement windows placed evenly over
    ///   the whole trace, the gaps between them are *functionally warmed*
    ///   ([`O3Core::warm_only`]: caches, TLBs, BTB and branch predictor
    ///   observe every op at zero pipeline cost), the first
    ///   `sampling.warmup_frac` of each window is discarded as detailed
    ///   warmup, and the merged measurements are extrapolated to
    ///   whole-trace estimates.
    pub fn simulate_sampled(
        &self,
        cfg: &CoreConfig,
        max_ops: usize,
        sampling: &SamplingConfig,
    ) -> SimStats {
        if sampling.is_off() || max_ops == 0 {
            return self.simulate(cfg, max_ops);
        }
        let total = self.total_trace_ops();
        let expander = Expander::with_config(&self.log, self.expand.clone());
        let mut core = O3Core::new(cfg.clone());
        if max_ops as u64 >= total {
            // One interval covering the whole trace: simulate it exactly.
            return core.run(expander);
        }
        let windows = sampling_windows(total, max_ops as u64, sampling.intervals);
        let mut trace = Counted {
            inner: expander,
            consumed: 0,
        };
        let mut merged = SimStats {
            freq_ghz: cfg.freq_ghz,
            ..SimStats::default()
        };
        for (start, len) in windows {
            let gap = start.saturating_sub(trace.consumed);
            core.warm_only(&mut trace, gap);
            let warmup = (len as f64 * sampling.warmup_frac) as u64;
            let stats = core.run_warm((&mut trace).take(len as usize), warmup);
            merged.merge(&stats);
        }
        if merged.committed_ops == 0 {
            return merged;
        }
        merged.scaled(total as f64 / merged.committed_ops as f64)
    }

    /// Convenience: simulate on the Table II gem5 baseline.
    pub fn simulate_baseline(&self, max_ops: usize) -> SimStats {
        self.simulate(&CoreConfig::gem5_baseline(), max_ops)
    }

    /// Convenience: simulate on the host-like (VTune workstation) config.
    pub fn simulate_host(&self, max_ops: usize) -> SimStats {
        self.simulate(&CoreConfig::host_like(), max_ops)
    }
}

impl belenos_runner::Simulate for Experiment {
    fn workload_id(&self) -> &str {
        &self.id
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn simulate(&self, config: &CoreConfig, max_ops: usize, sampling: &SamplingConfig) -> SimStats {
        Experiment::simulate_sampled(self, config, max_ops, sampling)
    }
}

/// Iterator adapter counting consumed items, so the sampling driver knows
/// its absolute position in the trace across warming and measuring.
struct Counted<I> {
    inner: I,
    consumed: u64,
}

impl<I: Iterator<Item = MicroOp>> Iterator for Counted<I> {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        let op = self.inner.next();
        if op.is_some() {
            self.consumed += 1;
        }
        op
    }
}

/// Placement of SMARTS-style measurement windows: `(start, len)` pairs in
/// trace-op coordinates for a detailed budget of `budget` ops split into
/// `intervals` windows over a trace of `total` ops.
///
/// Each window sits at the *end* of its equal-length period, so the
/// functional-warming gap precedes every measurement and the last window
/// reaches the tail of the trace — budgeted runs observe steady-state
/// solver phases, not just the assembly-heavy prefix.
pub fn sampling_windows(total: u64, budget: u64, intervals: usize) -> Vec<(u64, u64)> {
    if total == 0 || budget == 0 {
        return Vec::new();
    }
    if budget >= total {
        return vec![(0, total)];
    }
    let n = (intervals.max(1) as u64).min(budget);
    let measured = (budget / n).max(1);
    let period = (total / n).max(measured);
    (0..n)
        .map(|i| (i * period + (period - measured), measured))
        .collect()
}

/// Memoizes content hashes of the `Arc`'d index arrays kernel calls
/// carry, keyed by allocation address: repeated kernels over the same
/// structure (the common case — every Newton iteration reuses the same
/// pattern/factor arrays) hash their contents exactly once.
#[derive(Default)]
struct ArrayHasher {
    memo: std::collections::HashMap<usize, u64>,
}

impl ArrayHasher {
    fn memoized(&mut self, ptr: usize, hash: impl FnOnce() -> u64) -> u64 {
        *self.memo.entry(ptr).or_insert_with(hash)
    }

    fn pattern(&mut self, p: &std::sync::Arc<belenos_sparse::CsrPattern>) -> u64 {
        self.memoized(std::sync::Arc::as_ptr(p) as usize, || {
            let mut h = Fnv64::new();
            h.write_usize(p.nrows()).write_usize(p.ncols());
            for &r in p.row_ptr() {
                h.write_usize(r);
            }
            for &c in p.col_idx() {
                h.write_u64(c as u64);
            }
            h.finish()
        })
    }

    fn u32s(&mut self, v: &std::sync::Arc<Vec<u32>>) -> u64 {
        self.memoized(std::sync::Arc::as_ptr(v) as *const u8 as usize, || {
            let mut h = Fnv64::new();
            h.write_usize(v.len());
            for &x in v.iter() {
                h.write_u64(x as u64);
            }
            h.finish()
        })
    }

    fn usizes(&mut self, v: &std::sync::Arc<Vec<usize>>) -> u64 {
        self.memoized(std::sync::Arc::as_ptr(v) as *const u8 as usize, || {
            let mut h = Fnv64::new();
            h.write_usize(v.len());
            for &x in v.iter() {
                h.write_usize(x);
            }
            h.finish()
        })
    }

    fn bools(&mut self, v: &std::sync::Arc<Vec<bool>>) -> u64 {
        self.memoized(std::sync::Arc::as_ptr(v) as *const u8 as usize, || {
            let mut h = Fnv64::new();
            h.write_usize(v.len());
            for &x in v.iter() {
                h.write_u64(x as u64);
            }
            h.finish()
        })
    }
}

/// Stable fingerprint of the trace a (log, expansion-config) pair will
/// replay. The same workload id can appear in several workload sets with
/// different expansion knobs (e.g. `co` in the catalog vs the gem5 set),
/// so the runner's cache key needs this beyond the id alone. Index
/// arrays are hashed by *content* (memoized per allocation), so a model
/// change that alters trace structure — even at equal sizes, e.g. a
/// different node numbering with identical nnz — changes the
/// fingerprint and can never alias a persistent cache entry.
fn trace_fingerprint(log: &PhaseLog, expand: &ExpandConfig) -> u64 {
    let mut arrays = ArrayHasher::default();
    let mut h = Fnv64::new();
    h.write_str("trace-v2");
    h.write_usize(expand.sample);
    h.write_u64(expand.code_bloat as u64);
    h.write_f64(expand.spin_scale);
    h.write_usize(expand.max_kernel_ops);
    h.write_usize(log.len());
    for call in log.calls() {
        match call {
            KernelCall::Dot { n } => h.write_str("dot").write_usize(*n),
            KernelCall::Axpy { n } => h.write_str("axpy").write_usize(*n),
            KernelCall::Norm { n } => h.write_str("norm").write_usize(*n),
            KernelCall::VecOp { n } => h.write_str("vecop").write_usize(*n),
            KernelCall::SpMv { pattern } => h.write_str("spmv").write_u64(arrays.pattern(pattern)),
            KernelCall::AssembleStiffness {
                conn,
                nodes_per_elem,
                dofs_per_node,
                gauss_points,
                material,
                pattern,
            } => h
                .write_str("asm_k")
                .write_u64(arrays.u32s(conn))
                .write_usize(*nodes_per_elem)
                .write_usize(*dofs_per_node)
                .write_usize(*gauss_points)
                .write_str(&format!("{material:?}"))
                .write_u64(arrays.pattern(pattern)),
            KernelCall::AssembleResidual {
                conn,
                nodes_per_elem,
                dofs_per_node,
                gauss_points,
                material,
            } => h
                .write_str("asm_r")
                .write_u64(arrays.u32s(conn))
                .write_usize(*nodes_per_elem)
                .write_usize(*dofs_per_node)
                .write_usize(*gauss_points)
                .write_str(&format!("{material:?}")),
            KernelCall::LdlFactor { col_ptr, row_idx } => h
                .write_str("ldl_f")
                .write_u64(arrays.usizes(col_ptr))
                .write_u64(arrays.u32s(row_idx)),
            KernelCall::LdlSolve { col_ptr, row_idx } => h
                .write_str("ldl_s")
                .write_u64(arrays.usizes(col_ptr))
                .write_u64(arrays.u32s(row_idx)),
            KernelCall::SkylineFactor { heights } => {
                h.write_str("sky_f").write_u64(arrays.usizes(heights))
            }
            KernelCall::SkylineSolve { heights } => {
                h.write_str("sky_s").write_u64(arrays.usizes(heights))
            }
            KernelCall::CgSolve {
                pattern,
                iterations,
                precond,
            } => h
                .write_str("cg")
                .write_u64(arrays.pattern(pattern))
                .write_usize(*iterations)
                .write_str(&format!("{precond:?}")),
            KernelCall::FgmresSolve {
                pattern,
                iterations,
                restart,
                precond,
            } => h
                .write_str("fgmres")
                .write_u64(arrays.pattern(pattern))
                .write_usize(*iterations)
                .write_usize(*restart)
                .write_str(&format!("{precond:?}")),
            KernelCall::ConstitutiveUpdate {
                gauss_points,
                material,
            } => h
                .write_str("const")
                .write_usize(*gauss_points)
                .write_str(&format!("{material:?}")),
            KernelCall::ContactSearch { outcomes } => {
                h.write_str("contact").write_u64(arrays.bools(outcomes))
            }
            KernelCall::OmpBarrier { spin_iters } => {
                h.write_str("barrier").write_usize(*spin_iters)
            }
            KernelCall::BcApply { n } => h.write_str("bc").write_usize(*n),
            KernelCall::MeshUpdate { n_nodes } => h.write_str("mesh").write_usize(*n_nodes),
            KernelCall::RigidUpdate { n_bodies, n_joints } => h
                .write_str("rigid")
                .write_usize(*n_bodies)
                .write_usize(*n_joints),
            KernelCall::ConvergenceCheck { n } => h.write_str("conv").write_usize(*n),
        };
    }
    h.finish()
}

/// A workload-preparation failure, carrying *which* workload failed.
#[derive(Debug, Clone)]
pub struct PrepareError {
    /// Identifier of the workload that failed to prepare.
    pub workload: String,
    /// The underlying FE failure.
    pub source: FemError,
}

impl std::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "workload `{}` failed to prepare: {}",
            self.workload, self.source
        )
    }
}

impl std::error::Error for PrepareError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Prepares a list of workloads; failures abort with the failing workload
/// named.
///
/// # Errors
///
/// The first preparation failure, annotated with the workload id.
pub fn prepare_all(specs: &[WorkloadSpec]) -> Result<Vec<Experiment>, PrepareError> {
    specs
        .iter()
        .map(|spec| {
            Experiment::prepare(spec).map_err(|source| PrepareError {
                workload: spec.id.to_string(),
                source,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use belenos_workloads::by_id;

    #[test]
    fn prepare_and_simulate_smallest_workload() {
        let spec = by_id("pd").expect("pd exists");
        let exp = Experiment::prepare(&spec).unwrap();
        assert!(exp.solve.converged);
        assert!(!exp.log().is_empty());
        let stats = exp.simulate_baseline(50_000);
        assert!(stats.committed_ops > 10_000);
        assert!(stats.ipc() > 0.05);
        let (r, fe, bs, be) = stats.topdown();
        assert!((r + fe + bs + be - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prepare_all_names_the_failing_workload() {
        // A spec whose model cannot converge: reuse `pd` but poison the
        // builder with an invalid mesh via a synthetic spec is not
        // possible from here, so exercise the error type directly.
        let err = PrepareError {
            workload: "eye".into(),
            source: FemError::InvalidModel("bad".into()),
        };
        assert!(err.to_string().contains("workload `eye`"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn fingerprint_distinguishes_expand_configs() {
        // `co` appears with different expansion knobs in catalog() vs
        // gem5_set(); their fingerprints must differ or the result cache
        // would alias them.
        let gem5_co = belenos_workloads::gem5_set()
            .into_iter()
            .find(|w| w.id == "co")
            .unwrap();
        let cat_co = belenos_workloads::catalog()
            .into_iter()
            .find(|w| w.id == "co")
            .unwrap();
        assert_ne!(
            gem5_co.expand.sample, cat_co.expand.sample,
            "premise of this test"
        );
        let a = Experiment::prepare(&gem5_co).unwrap();
        let b = Experiment::prepare(&cat_co).unwrap();
        use belenos_runner::Simulate;
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Same spec prepared twice fingerprints identically (determinism).
        let a2 = Experiment::prepare(&gem5_co).unwrap();
        assert_eq!(a.fingerprint(), a2.fingerprint());
    }

    #[test]
    fn sampling_off_is_bit_identical_to_prefix_mode() {
        let exp = Experiment::prepare(&by_id("pd").expect("pd")).unwrap();
        let cfg = CoreConfig::gem5_baseline();
        let prefix = exp.simulate(&cfg, 30_000);
        let off = exp.simulate_sampled(&cfg, 30_000, &SamplingConfig::off());
        assert_eq!(prefix, off, "sampling=off must reproduce prefix mode");
    }

    #[test]
    fn sampled_run_tracks_full_simulation() {
        let exp = Experiment::prepare(&by_id("pd").expect("pd")).unwrap();
        let cfg = CoreConfig::gem5_baseline();
        let total = exp.total_trace_ops();
        let full = exp.simulate(&cfg, 0);
        assert_eq!(
            full.committed_ops, total,
            "every emitted op commits exactly once"
        );

        // One interval whose budget covers the whole trace is exactly
        // O3Core::run.
        let single = exp.simulate_sampled(&cfg, total as usize, &SamplingConfig::smarts(1));
        assert_eq!(single, full, "full-budget interval must equal run()");

        // A 10x reduced budget over many small intervals extrapolates
        // close to the full simulation. (Few large intervals alias with
        // the trace's phase structure — SMARTS' core observation is that
        // many small windows beat few large ones at equal budget.)
        let sampled = exp.simulate_sampled(&cfg, total as usize / 10, &SamplingConfig::smarts(100));
        let ipc_err = (sampled.ipc() - full.ipc()).abs() / full.ipc();
        assert!(
            ipc_err < 0.05,
            "sampled IPC {} vs full {} (err {:.1}%)",
            sampled.ipc(),
            full.ipc(),
            ipc_err * 100.0
        );
        // Extrapolated op count lands near the whole trace.
        let op_err = (sampled.committed_ops as f64 - total as f64).abs() / total as f64;
        assert!(op_err < 0.02, "extrapolated ops {}", sampled.committed_ops);
        // And it must beat prefix truncation's bias on the cycle
        // estimate... at minimum, be a whole-trace-scale estimate at all
        // (prefix mode reports only the measured window).
        assert!(sampled.cycles > full.cycles / 2);
        assert!(sampled.cycles < full.cycles * 2);
    }

    #[test]
    fn oversized_budget_in_prefix_mode_still_measures() {
        // Regression: a budget whose quarter-warmup exceeded the whole
        // trace used to make run_warm's empty-measurement clamp zero out
        // the stats; the warmup is now a quarter of min(budget, trace).
        let exp = Experiment::prepare(&by_id("pd").expect("pd")).unwrap();
        let cfg = CoreConfig::gem5_baseline();
        let total = exp.total_trace_ops();
        let stats = exp.simulate(&cfg, (total as usize) * 10);
        assert!(stats.committed_ops > 0, "oversized budget must not zero");
        // Measured window = trace minus the quarter-trace warmup.
        assert!(stats.committed_ops <= total * 3 / 4 + 8);
        assert!(stats.committed_ops >= total / 2);
        assert!(stats.ipc() > 0.1);
    }

    #[test]
    fn sampling_windows_cover_late_trace_phases() {
        let total = 1_000_000u64;
        let windows = sampling_windows(total, 100_000, 10);
        assert_eq!(windows.len(), 10);
        for (start, len) in &windows {
            assert_eq!(*len, 10_000);
            assert!(start + len <= total);
        }
        // Windows are strictly increasing and evenly spread.
        for w in windows.windows(2) {
            assert_eq!(w[1].0 - w[0].0, 100_000, "equal periods");
        }
        // The last window reaches the trace tail — budgeted measurement
        // is no longer a prefix.
        let (last_start, last_len) = *windows.last().unwrap();
        assert!(last_start + last_len == total);
        assert!(last_start as f64 > 0.89 * total as f64);

        // Degenerate shapes.
        assert_eq!(sampling_windows(100, 200, 4), vec![(0, 100)]);
        assert_eq!(sampling_windows(0, 100, 4), vec![]);
        assert_eq!(sampling_windows(100, 0, 4), vec![]);
        // More intervals than budget ops: clamped, never empty windows.
        let tiny = sampling_windows(1000, 3, 10);
        assert_eq!(tiny.len(), 3);
        assert!(tiny.iter().all(|&(_, len)| len == 1));
    }

    #[test]
    fn same_log_different_configs() {
        let spec = by_id("pd").expect("pd exists");
        let exp = Experiment::prepare(&spec).unwrap();
        let slow = exp.simulate(&CoreConfig::gem5_baseline().with_frequency(1.0), 30_000);
        let fast = exp.simulate(&CoreConfig::gem5_baseline().with_frequency(4.0), 30_000);
        // Warmup snapshots land on commit-group boundaries, so counts can
        // differ by less than one commit group across configs.
        assert!(
            slow.committed_ops.abs_diff(fast.committed_ops) < 8,
            "same trace must replay: {} vs {}",
            slow.committed_ops,
            fast.committed_ops
        );
        assert!(fast.seconds() < slow.seconds());
    }
}

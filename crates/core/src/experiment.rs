//! One workload through the full pipeline: numeric solve → phase log →
//! micro-op expansion → cycle-level simulation.

use belenos_fem::FemError;
use belenos_trace::expand::{ExpandConfig, Expander};
use belenos_trace::{FlatTrace, KernelCall, MicroOp, PhaseLog};
use belenos_uarch::{build_model, CoreConfig, CoreModel, Fnv64, SamplingConfig, SimStats};
use belenos_workloads::{ScenarioError, ScenarioSpec};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Summary of the numeric solve that produced the phase log.
#[derive(Debug, Clone)]
pub struct SolveSummary {
    /// Wall-clock time of the numeric FE solve (Fig. 5/6 y-axis).
    pub wall_time: Duration,
    /// Degrees of freedom.
    pub n_dofs: usize,
    /// Total Newton/Picard iterations.
    pub iterations: usize,
    /// Estimated input-file size in kB (Fig. 5 x-axis).
    pub size_kb: f64,
    /// Whether all steps converged.
    pub converged: bool,
}

/// A prepared experiment: the workload was solved once; the recorded
/// phase log can be replayed under any machine configuration.
#[derive(Debug)]
pub struct Experiment {
    /// Owned, validated scenario identifier (report rows, cache keys,
    /// runner job labels).
    pub id: String,
    /// Numeric-solve summary.
    pub solve: SolveSummary,
    /// The scenario this experiment was prepared from (family, mesh,
    /// physics parameters) — reports like the mesh-scaling analysis
    /// group and label rows by it.
    scenario: ScenarioSpec,
    scenario_digest: u64,
    log: PhaseLog,
    expand: ExpandConfig,
    fingerprint: u64,
    /// Total ops of the full trace, counted lazily on first use (interval
    /// placement needs the trace length before simulating it).
    total_ops: OnceLock<u64>,
    /// Largest op count the trace is *known to reach* (monotone lower
    /// bound), so repeated budget-clamp checks never re-count.
    trace_at_least: std::sync::atomic::AtomicU64,
    /// Memoized expanded-trace prefix (see [`Experiment::cached_trace`]).
    trace_cache: Mutex<TraceCache>,
    /// Lazy reader for a store entry's flat section: installed by a
    /// store hit, consumed (once) by the first whole-trace request in
    /// [`Experiment::cached_trace`] in place of a re-expansion pass.
    flat_handle: Mutex<Option<crate::trace_store::FlatHandle>>,
    /// Pooled core model reused across simulation calls (see
    /// [`Experiment::pooled_model`]).
    model_pool: ModelPool,
}

/// One-slot pool holding the most recently used core model together
/// with the configuration it was built for. Rebuilding a model per
/// `simulate` call was the single largest cost of a short timed run —
/// the ring buffers, cache tag arrays and predictor tables are freed
/// and re-allocated (and re-page-faulted) every call. Reusing the model
/// via [`CoreModel::reset`] keeps those arrays resident; the reset
/// contract guarantees bit-identical statistics, which the backend
/// digest pins enforce. A config change simply misses the pool and
/// rebuilds, so alternating-config sweeps are never worse than before.
#[derive(Default)]
struct ModelPool {
    slot: Mutex<Option<(CoreConfig, Box<dyn CoreModel>)>>,
}

impl std::fmt::Debug for ModelPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let occupied = self.slot.lock().map(|s| s.is_some()).unwrap_or(false);
        f.debug_struct("ModelPool")
            .field("occupied", &occupied)
            .finish()
    }
}

/// Memoized expansion of a trace prefix, stored as a struct-of-arrays
/// [`FlatTrace`]. Replaying a cached flat trace yields the exact op
/// sequence streaming expansion yields (expansion is deterministic and
/// prefix-closed), so every backend's results are bit-identical either
/// way — but repeated runs over the same experiment (sweeps,
/// cross-backend comparisons) skip the per-op generation cost, and the
/// columnar layout feeds the simulators' hot loops with a denser,
/// monomorphized stream (see [`belenos_uarch::CoreModel::run_warm_flat`]).
#[derive(Debug, Default)]
struct TraceCache {
    /// Longest prefix expanded so far, shared with in-flight runs.
    ops: Option<Arc<FlatTrace>>,
    /// The cached prefix is the entire trace.
    complete: bool,
    /// The full trace exceeds the cache cap; never re-attempt it.
    too_big: bool,
}

/// Process-wide trace-cache budget in ops, from `BELENOS_TRACE_CACHE_MB`
/// (default 2048 MiB ≈ 64 M ops; `0` disables trace caching entirely).
/// The budget is shared by every live [`Experiment`] — a campaign over
/// dozens of workloads stays bounded instead of holding one cap each.
fn trace_cache_budget_ops() -> u64 {
    static CAP: OnceLock<u64> = OnceLock::new();
    *CAP.get_or_init(|| {
        let mb = std::env::var("BELENOS_TRACE_CACHE_MB")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(2048);
        mb.saturating_mul(1 << 20) / std::mem::size_of::<MicroOp>() as u64
    })
}

/// Ops currently held by trace caches across all experiments. Updated
/// under each experiment's cache lock; concurrent expansions can
/// transiently overshoot the budget by at most one in-flight request per
/// worker (a soft bound, which is all the OOM guard needs).
static TRACE_CACHE_USED_OPS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Largest expanded trace embedded into a store artifact: 4 M ops
/// (~120 MiB on disk). Longer traces persist log-only — replay still
/// skips the FE solve, it just re-expands the log — keeping single store
/// entries bounded and the save path from spending longer expanding than
/// the solve it is caching.
const STORE_EMBED_CAP_OPS: u64 = 4 << 20;

impl Experiment {
    /// Validates the scenario, builds and solves its model, and captures
    /// the phase log.
    ///
    /// # Errors
    ///
    /// A [`PrepareError`] naming the scenario: either its parameters are
    /// structurally invalid, or the FE solve failed.
    pub fn prepare(spec: &ScenarioSpec) -> Result<Self, PrepareError> {
        Self::prepare_with_store(spec, crate::trace_store::global())
    }

    /// [`Experiment::prepare`] against an explicit trace store (`None`
    /// disables persistence). The public entry point passes the
    /// process-wide store; tests pass their own to avoid environment
    /// races.
    pub fn prepare_with_store(
        spec: &ScenarioSpec,
        store: Option<&crate::trace_store::TraceStore>,
    ) -> Result<Self, PrepareError> {
        let tele = belenos_telemetry::global();
        let _span = tele.span(
            "phase",
            &[
                ("phase", "prepare".into()),
                ("workload", spec.id.as_str().into()),
            ],
        );
        let started = std::time::Instant::now();
        let expand = spec.expand_config();
        let scenario_digest = spec.stable_digest();

        if let Some(store) = store {
            if let Some((artifact, flat)) = store.load(&spec.id, scenario_digest, &expand) {
                let exp = Self::from_artifact(spec, scenario_digest, expand, artifact, flat);
                tele.gauge(
                    "prepare_wall_s",
                    started.elapsed().as_secs_f64(),
                    &[("workload", spec.id.as_str().into())],
                );
                return Ok(exp);
            }
        }

        let fail = |source| PrepareError {
            workload: spec.id.clone(),
            source,
        };
        let mut model = spec
            .build_model()
            .map_err(|e| fail(PrepareFailure::Scenario(e)))?;
        let size_kb = model.input_size_kb();
        let report = model.solve().map_err(|e| fail(PrepareFailure::Fem(e)))?;
        let fingerprint = trace_fingerprint(&report.log, &expand);
        let exp = Experiment {
            id: spec.id.clone(),
            scenario: spec.clone(),
            scenario_digest,
            solve: SolveSummary {
                wall_time: report.wall_time,
                n_dofs: report.n_dofs,
                iterations: report.total_iterations,
                size_kb,
                converged: report.converged,
            },
            log: report.log,
            expand,
            fingerprint,
            total_ops: OnceLock::new(),
            trace_at_least: std::sync::atomic::AtomicU64::new(0),
            trace_cache: Mutex::new(TraceCache::default()),
            flat_handle: Mutex::new(None),
            model_pool: ModelPool::default(),
        };
        if let Some(store) = store {
            store.save(&exp.id, &exp.to_artifact(), &exp.expand);
        }
        tele.gauge(
            "prepare_wall_s",
            started.elapsed().as_secs_f64(),
            &[("workload", spec.id.as_str().into())],
        );
        Ok(exp)
    }

    /// Rebuilds a prepared experiment from a verified store artifact —
    /// the FE model is never built or solved. When the entry carries a
    /// flat section, its (lazy) handle is installed so the first
    /// whole-trace simulation decodes it from disk instead of
    /// re-expanding; the prepare wall itself never touches those bytes.
    fn from_artifact(
        spec: &ScenarioSpec,
        scenario_digest: u64,
        expand: ExpandConfig,
        artifact: belenos_trace::TraceArtifact,
        flat: Option<crate::trace_store::FlatHandle>,
    ) -> Self {
        let exp = Experiment {
            id: spec.id.clone(),
            scenario: spec.clone(),
            scenario_digest,
            solve: SolveSummary {
                wall_time: Duration::new(
                    artifact.solve.wall_secs,
                    artifact.solve.wall_subsec_nanos,
                ),
                n_dofs: artifact.solve.n_dofs,
                iterations: artifact.solve.iterations,
                size_kb: artifact.solve.size_kb,
                converged: artifact.solve.converged,
            },
            log: artifact.log,
            expand,
            fingerprint: artifact.trace_fingerprint,
            total_ops: OnceLock::new(),
            trace_at_least: std::sync::atomic::AtomicU64::new(0),
            trace_cache: Mutex::new(TraceCache::default()),
            flat_handle: Mutex::new(flat),
            model_pool: ModelPool::default(),
        };
        if let Some(handle) = exp.flat_handle.lock().unwrap().as_ref() {
            // The stored flat section is always the *complete* trace, so
            // its length is the total op count — known from the header
            // without reading a single flat byte.
            let _ = exp.total_ops.set(handle.n_ops());
        }
        exp
    }

    /// Snapshot of this experiment as a store artifact. The expanded
    /// trace is embedded when it is already memoized or small enough to
    /// expand on the spot ([`STORE_EMBED_CAP_OPS`]); otherwise the
    /// artifact is log-only and replay re-expands (still skipping the FE
    /// solve entirely).
    fn to_artifact(&self) -> belenos_trace::TraceArtifact {
        belenos_trace::TraceArtifact {
            scenario_digest: self.scenario_digest,
            expand_fingerprint: expand_fingerprint(&self.expand),
            trace_fingerprint: self.fingerprint,
            solve: belenos_trace::SolveMeta {
                wall_secs: self.solve.wall_time.as_secs(),
                wall_subsec_nanos: self.solve.wall_time.subsec_nanos(),
                n_dofs: self.solve.n_dofs,
                iterations: self.solve.iterations,
                size_kb: self.solve.size_kb,
                converged: self.solve.converged,
            },
            log: self.log.clone(),
            flat: self.embeddable_flat(),
        }
    }

    /// The complete expanded trace, if cheap to come by: either already
    /// memoized in full, or short enough to expand within
    /// [`STORE_EMBED_CAP_OPS`]. `None` means "too large to embed".
    fn embeddable_flat(&self) -> Option<Arc<FlatTrace>> {
        {
            let cache = self.trace_cache.lock().unwrap();
            if cache.complete {
                return cache.ops.clone();
            }
        }
        if let Some(&total) = self.total_ops.get() {
            if total > STORE_EMBED_CAP_OPS {
                return None;
            }
        }
        let mut ops = FlatTrace::new();
        let mut expander = Expander::with_config(&self.log, self.expand.clone());
        for op in &mut expander {
            if ops.len() as u64 >= STORE_EMBED_CAP_OPS {
                return None;
            }
            ops.push(op);
        }
        let _ = self.total_ops.set(ops.len() as u64);
        Some(Arc::new(ops))
    }

    /// The scenario this experiment was prepared from.
    pub fn scenario(&self) -> &ScenarioSpec {
        &self.scenario
    }

    /// Content fingerprint of the trace the (log, expansion-config) pair
    /// replays — the pre-scenario-era cache identity, still pinned by
    /// the golden tests to prove presets build bit-identical models.
    pub fn trace_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The recorded phase log.
    pub fn log(&self) -> &PhaseLog {
        &self.log
    }

    /// Expands the log and runs it on a core configuration, simulating at
    /// most `max_ops` micro-ops (0 = unlimited). The core-model backend
    /// is selected by `cfg.model` (`BELENOS_MODEL` in the bench
    /// binaries); the default `o3` backend reproduces the historical
    /// behavior bit for bit.
    ///
    /// This is the historical *prefix-truncation* mode: a budgeted run
    /// measures only the first `max_ops` ops of the trace, which biases
    /// budgeted figures toward assembly and early Newton iterations. For
    /// representative budgeted measurements use
    /// [`Experiment::simulate_sampled`].
    pub fn simulate(&self, cfg: &CoreConfig, max_ops: usize) -> SimStats {
        let tele = belenos_telemetry::global();
        let _span = tele.span(
            "phase",
            &[
                ("phase", "simulate".into()),
                ("mode", "prefix".into()),
                ("workload", self.id.as_str().into()),
                ("max_ops", max_ops.into()),
            ],
        );
        let stats = self.simulate_prefix(cfg, max_ops);
        if tele.enabled() {
            emit_stage_counters(&tele, &stats);
        }
        stats
    }

    /// Takes the pooled model for `cfg` (reset to its just-built state),
    /// or builds a fresh one on a pool miss. Pair with
    /// [`Experiment::pool_model`] to return it after the run.
    fn pooled_model(&self, cfg: &CoreConfig) -> Box<dyn CoreModel> {
        let mut slot = self.model_pool.slot.lock().unwrap();
        if slot.as_ref().is_some_and(|(pooled, _)| pooled == cfg) {
            let (_, mut model) = slot.take().expect("checked occupied");
            drop(slot);
            model.reset();
            return model;
        }
        drop(slot);
        build_model(cfg)
    }

    /// Returns a model to the pool for the next run on this config.
    fn pool_model(&self, cfg: &CoreConfig, model: Box<dyn CoreModel>) {
        *self.model_pool.slot.lock().unwrap() = Some((cfg.clone(), model));
    }

    /// Prefix-mode simulation body (see [`Experiment::simulate`], which
    /// wraps it in a telemetry `phase` span).
    fn simulate_prefix(&self, cfg: &CoreConfig, max_ops: usize) -> SimStats {
        let mut model = self.pooled_model(cfg);
        let stats = self.simulate_prefix_on(model.as_mut(), max_ops);
        self.pool_model(cfg, model);
        stats
    }

    fn simulate_prefix_on(&self, model: &mut dyn CoreModel, max_ops: usize) -> SimStats {
        if max_ops == 0 {
            if let Some(ops) = self.cached_trace(None) {
                self.count_flat_hit();
                return model.run_flat(&ops);
            }
            let mut expander = Expander::with_config(&self.log, self.expand.clone());
            return model.run(&mut expander);
        }
        // Discard the first quarter as measurement warmup (cold caches
        // and untrained predictors), as gem5 checkpointed runs do. The
        // quarter is of the *measured* window — the smaller of budget
        // and actual trace — so an oversized budget cannot discard the
        // whole trace as warmup and report empty statistics.
        if let Some(ops) = self.cached_trace(Some(max_ops as u64)) {
            self.count_flat_hit();
            let end = max_ops.min(ops.len());
            let measured = end as u64;
            return model.run_warm_flat(&ops, 0, end, measured / 4);
        }
        let measured = (max_ops as u64).min(self.trace_ops_up_to(max_ops as u64));
        let expander = Expander::with_config(&self.log, self.expand.clone());
        let mut limited = expander.take(max_ops);
        model.run_warm(&mut limited, measured / 4)
    }

    /// Returns a memoized expanded prefix of at least `need` ops (or the
    /// whole trace when `need` is `None`), expanding and caching it on
    /// first use. `None` when caching is disabled
    /// (`BELENOS_TRACE_CACHE_MB=0`), the request exceeds the cap, or a
    /// whole-trace request finds the trace larger than the cap — callers
    /// fall back to streaming expansion, which is always bit-equivalent.
    fn cached_trace(&self, need: Option<u64>) -> Option<Arc<FlatTrace>> {
        use std::sync::atomic::Ordering;
        let budget = trace_cache_budget_ops();
        if budget == 0 {
            return None;
        }
        let tele = belenos_telemetry::global();
        let mut cache = self.trace_cache.lock().unwrap();
        if cache.complete {
            tele.counter(
                "trace_memo_hit",
                1,
                &[("workload", self.id.as_str().into())],
            );
            return cache.ops.clone();
        }
        let held = cache.ops.as_ref().map_or(0, |ops| ops.len() as u64);
        // What this experiment may grow to: the process-wide budget minus
        // what *other* experiments' caches already hold.
        let cap = budget.saturating_sub(
            TRACE_CACHE_USED_OPS
                .load(Ordering::Relaxed)
                .saturating_sub(held),
        );
        match need {
            Some(n) => {
                if n > cap {
                    return None;
                }
                if let Some(ops) = &cache.ops {
                    if ops.len() as u64 >= n {
                        tele.counter(
                            "trace_memo_hit",
                            1,
                            &[("workload", self.id.as_str().into())],
                        );
                        return cache.ops.clone();
                    }
                }
            }
            None => {
                if cache.too_big {
                    return None;
                }
                if let Some(&total) = self.total_ops.get() {
                    if total > cap {
                        // Over the whole budget: permanently too big.
                        // Merely crowded out by other caches: retry later.
                        cache.too_big = total > budget;
                        return None;
                    }
                }
            }
        }
        // A store hit left a lazy handle to the entry's flat section:
        // decoding it yields the complete trace and replaces the whole
        // re-expansion pass. Single-shot — success installs the complete
        // memo; failure warns (inside `read`) and falls through to
        // expansion, which is always bit-equivalent.
        let handle = {
            let mut slot = self.flat_handle.lock().unwrap();
            if slot.as_ref().is_some_and(|h| h.n_ops() <= cap) {
                slot.take()
            } else {
                None
            }
        };
        if let Some(handle) = handle {
            if let Some(ops) = handle.read() {
                let n = ops.len() as u64;
                self.trace_at_least.fetch_max(n, Ordering::Relaxed);
                let _ = self.total_ops.set(n);
                TRACE_CACHE_USED_OPS.fetch_add(n - held, Ordering::Relaxed);
                cache.complete = true;
                cache.ops = Some(ops);
                return cache.ops.clone();
            }
        }
        // (Re-)expand from the log. The expander cannot resume mid-stream,
        // so growing a cached prefix pays a fresh pass — rare in practice,
        // since op budgets are constant within one binary.
        tele.counter(
            "trace_memo_miss",
            1,
            &[("workload", self.id.as_str().into())],
        );
        let limit = need.unwrap_or(u64::MAX).min(cap.saturating_add(1));
        let mut ops = FlatTrace::with_capacity(limit.min(1 << 22) as usize);
        let mut expander = Expander::with_config(&self.log, self.expand.clone());
        let mut exhausted = false;
        while (ops.len() as u64) < limit {
            match expander.next() {
                Some(op) => ops.push(op),
                None => {
                    exhausted = true;
                    break;
                }
            }
        }
        self.trace_at_least
            .fetch_max(ops.len() as u64, Ordering::Relaxed);
        if !exhausted && need.is_none() {
            // Whole-trace request, and the trace outruns the cap. Only
            // outrunning the whole process budget is permanent; being
            // crowded out by other experiments' caches is worth retrying.
            cache.too_big = limit > budget;
            return None;
        }
        let n = ops.len() as u64;
        if exhausted {
            let _ = self.total_ops.set(n);
            cache.complete = true;
        }
        TRACE_CACHE_USED_OPS.fetch_add(n - held, Ordering::Relaxed);
        cache.ops = Some(Arc::new(ops));
        cache.ops.clone()
    }

    /// Records that a simulation consumed the memoized [`FlatTrace`]
    /// directly (the struct-of-arrays fast path, as opposed to streaming
    /// expansion).
    fn count_flat_hit(&self) {
        let tele = belenos_telemetry::global();
        if tele.enabled() {
            tele.counter(
                "flat_trace_hits",
                1,
                &[("workload", self.id.as_str().into())],
            );
        }
    }

    /// Releases this experiment's trace cache back to the process-wide
    /// budget and drops the memoized ops (in-flight clones stay valid).
    pub fn release_trace_cache(&self) {
        let mut cache = self.trace_cache.lock().unwrap();
        if let Some(ops) = cache.ops.take() {
            TRACE_CACHE_USED_OPS.fetch_sub(ops.len() as u64, std::sync::atomic::Ordering::Relaxed);
        }
        cache.complete = false;
    }

    /// Total micro-ops the full trace expands to (counted once, lazily;
    /// generation-only, far cheaper than simulating).
    pub fn total_trace_ops(&self) -> u64 {
        *self
            .total_ops
            .get_or_init(|| Expander::with_config(&self.log, self.expand.clone()).into_total_ops())
    }

    /// Trace length for clamping against `limit`: the memoized full
    /// count when already known, otherwise a generation pass that stops
    /// at `limit` — `O(min(limit, total))`, so a small budgeted run
    /// never pays a full-trace expansion just to learn "long enough".
    fn trace_ops_up_to(&self, limit: u64) -> u64 {
        use std::sync::atomic::Ordering;
        if let Some(&total) = self.total_ops.get() {
            return total;
        }
        let known = self.trace_at_least.load(Ordering::Relaxed);
        if known >= limit {
            return known;
        }
        let n = Expander::with_config(&self.log, self.expand.clone()).total_ops_up_to(limit);
        if n < limit {
            // The bounded pass exhausted the trace: that IS the total.
            let _ = self.total_ops.set(n);
        } else {
            self.trace_at_least.fetch_max(n, Ordering::Relaxed);
        }
        n
    }

    /// Simulates under `cfg` with the op budget placed per `sampling`.
    ///
    /// * `sampling` off (or `max_ops == 0`): identical to
    ///   [`Experiment::simulate`], bit for bit.
    /// * budget covering the whole trace: an exact full-trace run
    ///   (identical to `max_ops == 0`).
    /// * otherwise, SMARTS-style systematic sampling: the budget is split
    ///   into `sampling.intervals` measurement windows placed evenly over
    ///   the whole trace, the gaps between them are *functionally warmed*
    ///   ([`belenos_uarch::CoreModel::warm_only`]: caches, TLBs, BTB and
    ///   branch predictor
    ///   observe every op at zero pipeline cost), the first
    ///   `sampling.warmup_frac` of each window is discarded as detailed
    ///   warmup, and the merged measurements are extrapolated to
    ///   whole-trace estimates.
    pub fn simulate_sampled(
        &self,
        cfg: &CoreConfig,
        max_ops: usize,
        sampling: &SamplingConfig,
    ) -> SimStats {
        if sampling.is_off() || max_ops == 0 {
            return self.simulate(cfg, max_ops);
        }
        let tele = belenos_telemetry::global();
        let _span = tele.span(
            "phase",
            &[
                ("phase", "simulate".into()),
                ("mode", "sampled".into()),
                ("workload", self.id.as_str().into()),
                ("max_ops", max_ops.into()),
                ("intervals", sampling.intervals.into()),
            ],
        );
        let stats = self.simulate_sampled_inner(cfg, max_ops, sampling);
        if tele.enabled() {
            emit_stage_counters(&tele, &stats);
        }
        stats
    }

    /// Sampled-mode simulation body (see [`Experiment::simulate_sampled`],
    /// which wraps it in a telemetry `phase` span). Only reached when
    /// sampling is actually on.
    fn simulate_sampled_inner(
        &self,
        cfg: &CoreConfig,
        max_ops: usize,
        sampling: &SamplingConfig,
    ) -> SimStats {
        let mut model = self.pooled_model(cfg);
        let stats = self.simulate_sampled_on(model.as_mut(), cfg, max_ops, sampling);
        self.pool_model(cfg, model);
        stats
    }

    fn simulate_sampled_on(
        &self,
        model: &mut dyn CoreModel,
        cfg: &CoreConfig,
        max_ops: usize,
        sampling: &SamplingConfig,
    ) -> SimStats {
        let cached = self.cached_trace(None);
        let total = cached
            .as_ref()
            .map_or_else(|| self.total_trace_ops(), |ops| ops.len() as u64);
        if let Some(ops) = &cached {
            self.count_flat_hit();
            if max_ops as u64 >= total {
                // One interval covering the whole trace: simulate exactly.
                return model.run_flat(ops);
            }
            // Window positions are absolute trace offsets, so the flat
            // path warms and measures by range with no counting adapter.
            let windows = sampling_windows(total, max_ops as u64, sampling.intervals);
            let mut merged = SimStats {
                freq_ghz: cfg.freq_ghz,
                ..SimStats::default()
            };
            let mut pos = 0usize;
            for (start, len) in windows {
                let start = start as usize;
                let gap = start.saturating_sub(pos);
                model.warm_only_flat(ops, pos, start, gap as u64);
                let warmup = (len as f64 * sampling.warmup_frac) as u64;
                let end = start + len as usize;
                let stats = model.run_warm_flat(ops, start, end, warmup);
                merged.merge(&stats);
                pos = end;
            }
            if merged.committed_ops == 0 {
                return merged;
            }
            return merged.scaled(total as f64 / merged.committed_ops as f64);
        }
        let mut inner = Expander::with_config(&self.log, self.expand.clone());
        if max_ops as u64 >= total {
            // One interval covering the whole trace: simulate it exactly.
            return model.run(&mut inner);
        }
        let windows = sampling_windows(total, max_ops as u64, sampling.intervals);
        let mut trace = Counted { inner, consumed: 0 };
        let mut merged = SimStats {
            freq_ghz: cfg.freq_ghz,
            ..SimStats::default()
        };
        for (start, len) in windows {
            let gap = start.saturating_sub(trace.consumed);
            model.warm_only(&mut trace, gap);
            let warmup = (len as f64 * sampling.warmup_frac) as u64;
            let mut window = (&mut trace).take(len as usize);
            let stats = model.run_warm(&mut window, warmup);
            merged.merge(&stats);
        }
        if merged.committed_ops == 0 {
            return merged;
        }
        merged.scaled(total as f64 / merged.committed_ops as f64)
    }

    /// Convenience: simulate on the Table II gem5 baseline.
    pub fn simulate_baseline(&self, max_ops: usize) -> SimStats {
        self.simulate(&CoreConfig::gem5_baseline(), max_ops)
    }

    /// Convenience: simulate on the host-like (VTune workstation) config.
    pub fn simulate_host(&self, max_ops: usize) -> SimStats {
        self.simulate(&CoreConfig::host_like(), max_ops)
    }
}

impl Drop for Experiment {
    fn drop(&mut self) {
        self.release_trace_cache();
    }
}

impl belenos_runner::Simulate for Experiment {
    fn workload_id(&self) -> &str {
        &self.id
    }

    /// Trace fingerprint folded with the scenario's content digest: two
    /// parametric variants sharing an id — even ones whose *traces*
    /// coincide structurally (e.g. the `bp07`–`bp09` permeability axis)
    /// — can never alias a cached result.
    fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.fingerprint)
            .write_u64(self.scenario_digest);
        h.finish()
    }

    fn simulate(&self, config: &CoreConfig, max_ops: usize, sampling: &SamplingConfig) -> SimStats {
        Experiment::simulate_sampled(self, config, max_ops, sampling)
    }

    /// The scenario's explicit JSON normal form: a worker process on
    /// another host can `ScenarioSpec::parse` + `Experiment::prepare` it
    /// and land on the same deterministic model (same trace fingerprint,
    /// same cache key), which is what makes experiments distributable.
    fn scenario_json(&self) -> Option<String> {
        Some(self.scenario.to_json())
    }
}

/// Iterator adapter counting consumed items, so the sampling driver knows
/// its absolute position in the trace across warming and measuring.
struct Counted<I> {
    inner: I,
    consumed: u64,
}

impl<I: Iterator<Item = MicroOp>> Iterator for Counted<I> {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        let op = self.inner.next();
        if op.is_some() {
            self.consumed += 1;
        }
        op
    }
}

/// Emits the per-stage cycle breakdown of a finished simulation as
/// telemetry counters, attributed to the thread's current `phase` span.
/// Purely observational: reads the already-computed [`SimStats`], never
/// touches the model.
fn emit_stage_counters(tele: &belenos_telemetry::Telemetry, stats: &SimStats) {
    tele.counter("sim_cycles", stats.cycles, &[]);
    tele.counter("sim_committed_ops", stats.committed_ops, &[]);
    tele.counter("sim_squashed_ops", stats.squashed_ops, &[]);
    tele.counter("sim_active_fetch_cycles", stats.active_fetch_cycles, &[]);
    tele.counter("sim_icache_stall_cycles", stats.icache_stall_cycles, &[]);
    tele.counter("sim_tlb_stall_cycles", stats.tlb_stall_cycles, &[]);
    tele.counter("sim_squash_cycles", stats.squash_cycles, &[]);
    tele.counter("sim_misc_stall_cycles", stats.misc_stall_cycles, &[]);
    if stats.seconds() > 0.0 {
        // Simulated-time MIPS of the modeled core (distinct from the
        // runner's host-throughput `simulated_mips` gauge).
        tele.gauge(
            "core_mips",
            stats.committed_ops as f64 / stats.seconds() / 1e6,
            &[],
        );
        tele.gauge("ipc", stats.ipc(), &[]);
    }
}

/// Placement of SMARTS-style measurement windows: `(start, len)` pairs in
/// trace-op coordinates for a detailed budget of `budget` ops split into
/// `intervals` windows over a trace of `total` ops.
///
/// Each window sits at the *end* of its equal-length period, so the
/// functional-warming gap precedes every measurement and the last window
/// reaches the tail of the trace — budgeted runs observe steady-state
/// solver phases, not just the assembly-heavy prefix.
pub fn sampling_windows(total: u64, budget: u64, intervals: usize) -> Vec<(u64, u64)> {
    if total == 0 || budget == 0 {
        return Vec::new();
    }
    if budget >= total {
        return vec![(0, total)];
    }
    let n = (intervals.max(1) as u64).min(budget);
    let measured = (budget / n).max(1);
    let period = (total / n).max(measured);
    (0..n)
        .map(|i| (i * period + (period - measured), measured))
        .collect()
}

/// Memoizes content hashes of the `Arc`'d index arrays kernel calls
/// carry, keyed by allocation address: repeated kernels over the same
/// structure (the common case — every Newton iteration reuses the same
/// pattern/factor arrays) hash their contents exactly once.
#[derive(Default)]
struct ArrayHasher {
    memo: std::collections::HashMap<usize, u64>,
}

impl ArrayHasher {
    fn memoized(&mut self, ptr: usize, hash: impl FnOnce() -> u64) -> u64 {
        *self.memo.entry(ptr).or_insert_with(hash)
    }

    fn pattern(&mut self, p: &std::sync::Arc<belenos_sparse::CsrPattern>) -> u64 {
        self.memoized(std::sync::Arc::as_ptr(p) as usize, || {
            let mut h = Fnv64::new();
            h.write_usize(p.nrows()).write_usize(p.ncols());
            for &r in p.row_ptr() {
                h.write_usize(r);
            }
            for &c in p.col_idx() {
                h.write_u64(c as u64);
            }
            h.finish()
        })
    }

    fn u32s(&mut self, v: &std::sync::Arc<Vec<u32>>) -> u64 {
        self.memoized(std::sync::Arc::as_ptr(v) as *const u8 as usize, || {
            let mut h = Fnv64::new();
            h.write_usize(v.len());
            for &x in v.iter() {
                h.write_u64(x as u64);
            }
            h.finish()
        })
    }

    fn usizes(&mut self, v: &std::sync::Arc<Vec<usize>>) -> u64 {
        self.memoized(std::sync::Arc::as_ptr(v) as *const u8 as usize, || {
            let mut h = Fnv64::new();
            h.write_usize(v.len());
            for &x in v.iter() {
                h.write_usize(x);
            }
            h.finish()
        })
    }

    fn bools(&mut self, v: &std::sync::Arc<Vec<bool>>) -> u64 {
        self.memoized(std::sync::Arc::as_ptr(v) as *const u8 as usize, || {
            let mut h = Fnv64::new();
            h.write_usize(v.len());
            for &x in v.iter() {
                h.write_u64(x as u64);
            }
            h.finish()
        })
    }
}

/// Stable fingerprint of the trace a (log, expansion-config) pair will
/// replay. The same workload id can appear in several workload sets with
/// different expansion knobs (e.g. `co` in the catalog vs the gem5 set),
/// so the runner's cache key needs this beyond the id alone. Index
/// arrays are hashed by *content* (memoized per allocation), so a model
/// change that alters trace structure — even at equal sizes, e.g. a
/// different node numbering with identical nnz — changes the
/// fingerprint and can never alias a persistent cache entry.
pub(crate) fn trace_fingerprint(log: &PhaseLog, expand: &ExpandConfig) -> u64 {
    let mut arrays = ArrayHasher::default();
    let mut h = Fnv64::new();
    h.write_str("trace-v2");
    // Exhaustive destructuring: adding a field to `ExpandConfig` fails to
    // compile here until it is hashed (or consciously ignored), so a new
    // expansion knob can never silently alias runner-cache entries.
    let ExpandConfig {
        sample,
        code_bloat,
        spin_scale,
        max_kernel_ops,
    } = expand;
    h.write_usize(*sample);
    h.write_u64(*code_bloat as u64);
    h.write_f64(*spin_scale);
    h.write_usize(*max_kernel_ops);
    h.write_usize(log.len());
    for call in log.calls() {
        match call {
            KernelCall::Dot { n } => h.write_str("dot").write_usize(*n),
            KernelCall::Axpy { n } => h.write_str("axpy").write_usize(*n),
            KernelCall::Norm { n } => h.write_str("norm").write_usize(*n),
            KernelCall::VecOp { n } => h.write_str("vecop").write_usize(*n),
            KernelCall::SpMv { pattern } => h.write_str("spmv").write_u64(arrays.pattern(pattern)),
            KernelCall::AssembleStiffness {
                conn,
                nodes_per_elem,
                dofs_per_node,
                gauss_points,
                material,
                pattern,
            } => h
                .write_str("asm_k")
                .write_u64(arrays.u32s(conn))
                .write_usize(*nodes_per_elem)
                .write_usize(*dofs_per_node)
                .write_usize(*gauss_points)
                .write_str(&format!("{material:?}"))
                .write_u64(arrays.pattern(pattern)),
            KernelCall::AssembleResidual {
                conn,
                nodes_per_elem,
                dofs_per_node,
                gauss_points,
                material,
            } => h
                .write_str("asm_r")
                .write_u64(arrays.u32s(conn))
                .write_usize(*nodes_per_elem)
                .write_usize(*dofs_per_node)
                .write_usize(*gauss_points)
                .write_str(&format!("{material:?}")),
            KernelCall::LdlFactor { col_ptr, row_idx } => h
                .write_str("ldl_f")
                .write_u64(arrays.usizes(col_ptr))
                .write_u64(arrays.u32s(row_idx)),
            KernelCall::LdlSolve { col_ptr, row_idx } => h
                .write_str("ldl_s")
                .write_u64(arrays.usizes(col_ptr))
                .write_u64(arrays.u32s(row_idx)),
            KernelCall::SkylineFactor { heights } => {
                h.write_str("sky_f").write_u64(arrays.usizes(heights))
            }
            KernelCall::SkylineSolve { heights } => {
                h.write_str("sky_s").write_u64(arrays.usizes(heights))
            }
            KernelCall::CgSolve {
                pattern,
                iterations,
                precond,
            } => h
                .write_str("cg")
                .write_u64(arrays.pattern(pattern))
                .write_usize(*iterations)
                .write_str(&format!("{precond:?}")),
            KernelCall::FgmresSolve {
                pattern,
                iterations,
                restart,
                precond,
            } => h
                .write_str("fgmres")
                .write_u64(arrays.pattern(pattern))
                .write_usize(*iterations)
                .write_usize(*restart)
                .write_str(&format!("{precond:?}")),
            KernelCall::ConstitutiveUpdate {
                gauss_points,
                material,
            } => h
                .write_str("const")
                .write_usize(*gauss_points)
                .write_str(&format!("{material:?}")),
            KernelCall::ContactSearch { outcomes } => {
                h.write_str("contact").write_u64(arrays.bools(outcomes))
            }
            KernelCall::OmpBarrier { spin_iters } => {
                h.write_str("barrier").write_usize(*spin_iters)
            }
            KernelCall::BcApply { n } => h.write_str("bc").write_usize(*n),
            KernelCall::MeshUpdate { n_nodes } => h.write_str("mesh").write_usize(*n_nodes),
            KernelCall::RigidUpdate { n_bodies, n_joints } => h
                .write_str("rigid")
                .write_usize(*n_bodies)
                .write_usize(*n_joints),
            KernelCall::ConvergenceCheck { n } => h.write_str("conv").write_usize(*n),
        };
    }
    h.finish()
}

/// Stable fingerprint of an [`ExpandConfig`] alone — the second half of
/// the trace store's content address (`scenario_digest` × this). The
/// exhaustive destructure mirrors [`trace_fingerprint`]: a new expansion
/// knob fails to compile here until it is hashed, so it can never
/// silently alias a persisted trace.
pub(crate) fn expand_fingerprint(expand: &ExpandConfig) -> u64 {
    let ExpandConfig {
        sample,
        code_bloat,
        spin_scale,
        max_kernel_ops,
    } = expand;
    let mut h = Fnv64::new();
    h.write_str("expand-v1");
    h.write_usize(*sample);
    h.write_u64(*code_bloat as u64);
    h.write_f64(*spin_scale);
    h.write_usize(*max_kernel_ops);
    h.finish()
}

/// What stopped a scenario from preparing.
#[derive(Debug, Clone)]
pub enum PrepareFailure {
    /// The scenario's parameters failed validation (never built a model).
    Scenario(ScenarioError),
    /// The FE model failed to solve.
    Fem(FemError),
    /// The preparation job panicked on its worker thread; the payload is
    /// the captured panic message.
    Panic(String),
}

impl std::fmt::Display for PrepareFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrepareFailure::Scenario(e) => e.fmt(f),
            PrepareFailure::Fem(e) => e.fmt(f),
            PrepareFailure::Panic(msg) => msg.fmt(f),
        }
    }
}

impl std::error::Error for PrepareFailure {}

/// A scenario-preparation failure, carrying *which* scenario failed.
#[derive(Debug, Clone)]
pub struct PrepareError {
    /// Identifier of the scenario that failed to prepare.
    pub workload: String,
    /// The underlying failure.
    pub source: PrepareFailure,
}

impl std::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "workload `{}` failed to prepare: {}",
            self.workload, self.source
        )
    }
}

impl std::error::Error for PrepareError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Prepares a list of scenarios; failures abort with the failing scenario
/// named.
///
/// With more than one scenario the prepares run as first-class jobs on
/// the `belenos-runner` worker pool (`BELENOS_JOBS` threads), each with
/// its own queue-wait/exec telemetry span. Results come back in input
/// order, so parallel and serial preparation are observationally
/// identical apart from wall time.
///
/// # Errors
///
/// The first preparation failure *in input order*, annotated with the
/// scenario id. A panicking prepare job is contained on its worker
/// thread and surfaces as [`PrepareFailure::Panic`].
pub fn prepare_all(specs: &[ScenarioSpec]) -> Result<Vec<Experiment>, PrepareError> {
    let refs: Vec<&ScenarioSpec> = specs.iter().collect();
    prepare_refs(&refs)
}

/// [`prepare_all`] over borrowed specs: the shared engine behind both the
/// slice entry point and `Campaign::prepare`'s cross-set batch.
pub(crate) fn prepare_refs(specs: &[&ScenarioSpec]) -> Result<Vec<Experiment>, PrepareError> {
    if specs.len() <= 1 {
        return specs.iter().map(|spec| Experiment::prepare(spec)).collect();
    }
    let results = belenos_runner::parallel_jobs(
        "prepare",
        None,
        specs,
        |spec| spec.id.clone(),
        |spec| Experiment::prepare(spec),
    );
    specs
        .iter()
        .zip(results)
        .map(|(spec, result)| match result {
            Ok(prepared) => prepared,
            Err(panic_msg) => Err(PrepareError {
                workload: spec.id.clone(),
                source: PrepareFailure::Panic(panic_msg),
            }),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use belenos_workloads::by_id;

    #[test]
    fn prepare_and_simulate_smallest_workload() {
        let spec = by_id("pd").expect("pd exists");
        let exp = Experiment::prepare(&spec).unwrap();
        assert!(exp.solve.converged);
        assert!(!exp.log().is_empty());
        let stats = exp.simulate_baseline(50_000);
        assert!(stats.committed_ops > 10_000);
        assert!(stats.ipc() > 0.05);
        let (r, fe, bs, be) = stats.topdown();
        assert!((r + fe + bs + be - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prepare_all_names_the_failing_workload() {
        // An invalid scenario (zero-resolution mesh) fails preparation
        // with its id in the message, before any model is built.
        let mut bad = by_id("pd").expect("pd");
        bad.id = "pd-broken".into();
        bad.mesh.nx = 0;
        let err = prepare_all(&[bad]).unwrap_err();
        assert!(err.to_string().contains("workload `pd-broken`"), "{err}");
        assert!(err.to_string().contains("mesh.nx"), "{err}");
        assert!(std::error::Error::source(&err).is_some());
        // A solver failure carries the same shape.
        let err = PrepareError {
            workload: "eye".into(),
            source: PrepareFailure::Fem(FemError::InvalidModel("bad".into())),
        };
        assert!(err.to_string().contains("workload `eye`"));
    }

    #[test]
    fn fingerprint_distinguishes_expand_configs() {
        // `co` appears with different expansion knobs in catalog() vs
        // gem5_set(); their fingerprints must differ or the result cache
        // would alias them.
        let gem5_co = belenos_workloads::gem5_set()
            .into_iter()
            .find(|w| w.id == "co")
            .unwrap();
        let cat_co = belenos_workloads::catalog()
            .into_iter()
            .find(|w| w.id == "co")
            .unwrap();
        assert_ne!(
            gem5_co.expand.sample, cat_co.expand.sample,
            "premise of this test"
        );
        let a = Experiment::prepare(&gem5_co).unwrap();
        let b = Experiment::prepare(&cat_co).unwrap();
        use belenos_runner::Simulate;
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Same spec prepared twice fingerprints identically (determinism).
        let a2 = Experiment::prepare(&gem5_co).unwrap();
        assert_eq!(a.fingerprint(), a2.fingerprint());
    }

    #[test]
    fn sampling_off_is_bit_identical_to_prefix_mode() {
        let exp = Experiment::prepare(&by_id("pd").expect("pd")).unwrap();
        let cfg = CoreConfig::gem5_baseline();
        let prefix = exp.simulate(&cfg, 30_000);
        let off = exp.simulate_sampled(&cfg, 30_000, &SamplingConfig::off());
        assert_eq!(prefix, off, "sampling=off must reproduce prefix mode");
    }

    #[test]
    fn sampled_run_tracks_full_simulation() {
        let exp = Experiment::prepare(&by_id("pd").expect("pd")).unwrap();
        let cfg = CoreConfig::gem5_baseline();
        let total = exp.total_trace_ops();
        let full = exp.simulate(&cfg, 0);
        assert_eq!(
            full.committed_ops, total,
            "every emitted op commits exactly once"
        );

        // One interval whose budget covers the whole trace is exactly
        // O3Core::run.
        let single = exp.simulate_sampled(&cfg, total as usize, &SamplingConfig::smarts(1));
        assert_eq!(single, full, "full-budget interval must equal run()");

        // A 10x reduced budget over many small intervals extrapolates
        // close to the full simulation. (Few large intervals alias with
        // the trace's phase structure — SMARTS' core observation is that
        // many small windows beat few large ones at equal budget.)
        let sampled = exp.simulate_sampled(&cfg, total as usize / 10, &SamplingConfig::smarts(100));
        let ipc_err = (sampled.ipc() - full.ipc()).abs() / full.ipc();
        assert!(
            ipc_err < 0.05,
            "sampled IPC {} vs full {} (err {:.1}%)",
            sampled.ipc(),
            full.ipc(),
            ipc_err * 100.0
        );
        // Extrapolated op count lands near the whole trace.
        let op_err = (sampled.committed_ops as f64 - total as f64).abs() / total as f64;
        assert!(op_err < 0.02, "extrapolated ops {}", sampled.committed_ops);
        // And it must beat prefix truncation's bias on the cycle
        // estimate... at minimum, be a whole-trace-scale estimate at all
        // (prefix mode reports only the measured window).
        assert!(sampled.cycles > full.cycles / 2);
        assert!(sampled.cycles < full.cycles * 2);
    }

    #[test]
    fn oversized_budget_in_prefix_mode_still_measures() {
        // Regression: a budget whose quarter-warmup exceeded the whole
        // trace used to make run_warm's empty-measurement clamp zero out
        // the stats; the warmup is now a quarter of min(budget, trace).
        let exp = Experiment::prepare(&by_id("pd").expect("pd")).unwrap();
        let cfg = CoreConfig::gem5_baseline();
        let total = exp.total_trace_ops();
        let stats = exp.simulate(&cfg, (total as usize) * 10);
        assert!(stats.committed_ops > 0, "oversized budget must not zero");
        // Measured window = trace minus the quarter-trace warmup.
        assert!(stats.committed_ops <= total * 3 / 4 + 8);
        assert!(stats.committed_ops >= total / 2);
        assert!(stats.ipc() > 0.1);
    }

    #[test]
    fn sampling_windows_cover_late_trace_phases() {
        let total = 1_000_000u64;
        let windows = sampling_windows(total, 100_000, 10);
        assert_eq!(windows.len(), 10);
        for (start, len) in &windows {
            assert_eq!(*len, 10_000);
            assert!(start + len <= total);
        }
        // Windows are strictly increasing and evenly spread.
        for w in windows.windows(2) {
            assert_eq!(w[1].0 - w[0].0, 100_000, "equal periods");
        }
        // The last window reaches the trace tail — budgeted measurement
        // is no longer a prefix.
        let (last_start, last_len) = *windows.last().unwrap();
        assert!(last_start + last_len == total);
        assert!(last_start as f64 > 0.89 * total as f64);

        // Degenerate shapes.
        assert_eq!(sampling_windows(100, 200, 4), vec![(0, 100)]);
        assert_eq!(sampling_windows(0, 100, 4), vec![]);
        assert_eq!(sampling_windows(100, 0, 4), vec![]);
        // More intervals than budget ops: clamped, never empty windows.
        let tiny = sampling_windows(1000, 3, 10);
        assert_eq!(tiny.len(), 3);
        assert!(tiny.iter().all(|&(_, len)| len == 1));
    }

    #[test]
    fn sampling_windows_budget_at_least_total_is_one_exact_window() {
        // budget == total and budget > total both degenerate to a single
        // exact window covering the whole trace, for any interval count.
        for budget in [500u64, 501, 10_000] {
            for intervals in [0usize, 1, 7, 1000] {
                assert_eq!(
                    sampling_windows(500, budget, intervals),
                    vec![(0, 500)],
                    "budget {budget}, intervals {intervals}"
                );
            }
        }
    }

    #[test]
    fn sampling_windows_never_overlap_or_overrun() {
        // Windows are disjoint, ordered, in-bounds and spend exactly the
        // usable budget across a spread of awkward shapes.
        for (total, budget, intervals) in [
            (1_000_000u64, 100_000u64, 10usize),
            (999_983, 31_337, 17), // primes: nothing divides evenly
            (1000, 999, 3),
            (64, 63, 64),   // intervals > budget/interval
            (1000, 3, 10),  // intervals > budget
            (10, 9, 1),     // single window
            (8192, 1, 128), // one-op budget
        ] {
            let windows = sampling_windows(total, budget, intervals);
            assert!(!windows.is_empty(), "({total},{budget},{intervals})");
            let mut prev_end = 0u64;
            for &(start, len) in &windows {
                assert!(len > 0, "empty window in ({total},{budget},{intervals})");
                assert!(
                    start >= prev_end,
                    "overlap in ({total},{budget},{intervals})"
                );
                assert!(
                    start + len <= total,
                    "overrun in ({total},{budget},{intervals})"
                );
                prev_end = start + len;
            }
            let spent: u64 = windows.iter().map(|&(_, len)| len).sum();
            assert!(
                spent <= budget.max(windows.len() as u64),
                "overspent budget in ({total},{budget},{intervals}): {spent}"
            );
        }
    }

    #[test]
    fn sampling_windows_zero_trace_and_zero_budget_are_empty() {
        assert_eq!(sampling_windows(0, 0, 0), vec![]);
        assert_eq!(sampling_windows(0, 1, 1), vec![]);
        assert_eq!(sampling_windows(1, 0, 1), vec![]);
        // A 1-op trace with any budget is one exact 1-op window.
        assert_eq!(sampling_windows(1, 1, 5), vec![(0, 1)]);
    }

    #[test]
    fn sampled_zero_length_trace_reports_empty_stats() {
        // A sampled run over a trace the windows never reach (empty
        // merge) must report zeros, not extrapolate garbage.
        let exp = Experiment::prepare(&by_id("pd").expect("pd")).unwrap();
        let cfg = CoreConfig::gem5_baseline();
        // Budget 0 falls back to prefix mode's unlimited run; instead
        // exercise the merge-empty path via a 1-op budget at 1 interval:
        // the window measures ops, so committed stays > 0 — the guard in
        // simulate_sampled is the `merged.committed_ops == 0` branch,
        // reachable only with an empty window set on a non-empty trace,
        // which sampling_windows never produces. Assert that invariant.
        let total = exp.total_trace_ops();
        assert!(total > 0);
        for intervals in [1usize, 4, 1000] {
            assert!(
                !sampling_windows(total, 1, intervals).is_empty(),
                "non-empty trace with non-zero budget always measures"
            );
        }
        let stats = exp.simulate_sampled(&cfg, 1, &SamplingConfig::smarts(4));
        assert!(stats.committed_ops > 0, "1-op budget still extrapolates");
    }

    #[test]
    fn window_merge_extrapolation_preserves_ratios_and_scale() {
        // Merged-and-scaled interval stats: extrapolated committed ops
        // land on the whole trace, and intensive ratios (IPC, MPKI)
        // survive scaling unchanged up to rounding.
        let exp = Experiment::prepare(&by_id("pd").expect("pd")).unwrap();
        let cfg = CoreConfig::gem5_baseline();
        let total = exp.total_trace_ops();
        let sampled = exp.simulate_sampled(&cfg, total as usize / 8, &SamplingConfig::smarts(32));
        let op_err = (sampled.committed_ops as f64 - total as f64).abs() / total as f64;
        assert!(op_err < 0.05, "extrapolated ops {}", sampled.committed_ops);
        // Slot identity survives merge + scale within rounding slack.
        let width = cfg.commit_width as u64;
        let slack = sampled.total_slots() / 100 + 64;
        assert!(
            sampled.total_slots().abs_diff(sampled.cycles * width) <= slack,
            "slots {} vs cycles*width {}",
            sampled.total_slots(),
            sampled.cycles * width
        );
    }

    #[test]
    fn cached_trace_replay_is_bit_identical_to_streaming_expansion() {
        // `simulate` memoizes the expanded trace (pd fits the default
        // cap); a hand-driven streaming expansion must produce the exact
        // same statistics, and repeated (cache-hit) runs must too.
        let spec = by_id("pd").expect("pd exists");
        let exp = Experiment::prepare(&spec).unwrap();
        let cfg = CoreConfig::gem5_baseline();

        let full = exp.simulate(&cfg, 0);
        let mut model = build_model(&cfg);
        let mut streamed = Expander::with_config(exp.log(), spec.expand_config());
        assert_eq!(full, model.run(&mut streamed), "full-trace replay");
        assert_eq!(full, exp.simulate(&cfg, 0), "cache-hit replay");

        let budget = 40_000usize;
        let budgeted = exp.simulate(&cfg, budget);
        let mut model = build_model(&cfg);
        let mut limited = Expander::with_config(exp.log(), spec.expand_config()).take(budget);
        assert_eq!(
            budgeted,
            model.run_warm(&mut limited, budget as u64 / 4),
            "budgeted replay"
        );
        assert_eq!(budgeted, exp.simulate(&cfg, budget), "budgeted cache hit");
    }

    #[test]
    fn same_log_different_configs() {
        let spec = by_id("pd").expect("pd exists");
        let exp = Experiment::prepare(&spec).unwrap();
        let slow = exp.simulate(&CoreConfig::gem5_baseline().with_frequency(1.0), 30_000);
        let fast = exp.simulate(&CoreConfig::gem5_baseline().with_frequency(4.0), 30_000);
        // Warmup snapshots land on commit-group boundaries, so counts can
        // differ by less than one commit group across configs.
        assert!(
            slow.committed_ops.abs_diff(fast.committed_ops) < 8,
            "same trace must replay: {} vs {}",
            slow.committed_ops,
            fast.committed_ops
        );
        assert!(fast.seconds() < slow.seconds());
    }
}

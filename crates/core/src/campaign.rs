//! The declarative campaign API.
//!
//! A [`CampaignSpec`] is a first-class, serializable description of an
//! experiment campaign: which workloads, under which simulation options
//! ([`SimOptions`]: budget × sampling × backend), producing which
//! analyses (the paper's figures/tables plus the supplementary
//! reports). Specs round-trip through JSON ([`CampaignSpec::to_json`] /
//! [`CampaignSpec::parse`]), are validated on construction, and are
//! executed by [`Campaign::run`], which routes every simulation through
//! the cache-aware [`Runner`] — so two analyses sharing a grid point
//! (every sweep contains the Table II baseline) simulate it once.
//!
//! ```no_run
//! use belenos::campaign::CampaignSpec;
//! use belenos_runner::Runner;
//!
//! let spec = CampaignSpec::parse(
//!     r#"{
//!         "name": "smoke",
//!         "workloads": ["pd"],
//!         "options": {"max_ops": 20000, "model": "o3"},
//!         "analyses": ["table1", "topdown", "frequency"]
//!     }"#,
//! )
//! .expect("valid spec");
//! let report = spec.prepare().expect("models solve").run(&Runner::from_env());
//! print!("{}", report.to_text());
//! std::fs::write("report.json", report.to_json()).unwrap();
//! ```

use crate::experiment::{Experiment, PrepareError};
use crate::figures;
use crate::options::{SimFailure, SimOptions};
use crate::report::Report;
use belenos_json::{FromJson, Json, JsonError, ToJson};
use belenos_runner::Runner;
use belenos_workloads::{ScenarioError, ScenarioSpec};
use std::collections::HashMap;

/// Mesh resolutions [`Analysis::MeshScaling`] sweeps when the campaign's
/// workload set does not carry its own resolution axis.
pub const DEFAULT_MESH_RESOLUTIONS: [usize; 3] = [3, 4, 5];

/// Which workloads a campaign covers.
///
/// Beyond the named paper sets and preset-id lists, a set can carry
/// **inline scenarios** (full [`ScenarioSpec`] JSON objects, mixed
/// freely with preset ids) and a **mesh-resolution axis**
/// ([`WorkloadSet::MeshSweep`]): base scenarios expanded at each listed
/// resolution via [`ScenarioSpec::with_resolution`] — the parametric
/// workload space the static catalog could never express.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum WorkloadSet {
    /// Per-analysis paper sets: each analysis uses the workload set the
    /// paper evaluated it on (VTune set for the profile figures, gem5
    /// set for the sensitivity sweeps, full catalog for hotspots and
    /// scaling). The default.
    #[default]
    Paper,
    /// The VTune set (11 models + eye).
    Vtune,
    /// The gem5 set.
    Gem5,
    /// The full Table I catalog.
    Catalog,
    /// An explicit list of preset ids.
    Ids(Vec<String>),
    /// Explicit scenarios: presets resolved from ids and/or inline
    /// scenario documents (`[{"id": ..., "family": ...}, "pd"]`).
    Scenarios(Vec<ScenarioSpec>),
    /// A parametric mesh-resolution axis: every base scenario expanded
    /// at every resolution (`{"base": [...], "resolutions": [3, 4, 6]}`).
    MeshSweep {
        /// The base scenarios the axis refines.
        base: Vec<ScenarioSpec>,
        /// Mesh resolutions (`r` → an `r`×`r`×`r` variant per base).
        resolutions: Vec<usize>,
    },
}

impl WorkloadSet {
    /// Stable spelling used in specs and `belenos list`.
    pub fn label(&self) -> String {
        match self {
            WorkloadSet::Paper => "paper".into(),
            WorkloadSet::Vtune => "vtune".into(),
            WorkloadSet::Gem5 => "gem5".into(),
            WorkloadSet::Catalog => "catalog".into(),
            WorkloadSet::Ids(ids) => ids.join(","),
            WorkloadSet::Scenarios(specs) => specs
                .iter()
                .map(|s| s.id.as_str())
                .collect::<Vec<_>>()
                .join(","),
            WorkloadSet::MeshSweep { base, resolutions } => format!(
                "{}@r{}",
                base.iter()
                    .map(|s| s.id.as_str())
                    .collect::<Vec<_>>()
                    .join(","),
                resolutions
                    .iter()
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join("/")
            ),
        }
    }

    /// Parses a named set (not an id list).
    pub fn parse_named(s: &str) -> Option<WorkloadSet> {
        match s.trim().to_ascii_lowercase().as_str() {
            "paper" | "default" => Some(WorkloadSet::Paper),
            "vtune" => Some(WorkloadSet::Vtune),
            "gem5" => Some(WorkloadSet::Gem5),
            "catalog" | "all" => Some(WorkloadSet::Catalog),
            _ => None,
        }
    }

    /// The scenarios this set resolves to, with `fallback` naming the
    /// paper set [`WorkloadSet::Paper`] means in this context. The
    /// single source of truth for named-set membership — the CLI
    /// harnesses resolve through here too.
    pub fn resolve(&self, fallback: PaperSet) -> Vec<ScenarioSpec> {
        let named = match self {
            WorkloadSet::Paper => fallback,
            WorkloadSet::Vtune => PaperSet::Vtune,
            WorkloadSet::Gem5 => PaperSet::Gem5,
            WorkloadSet::Catalog => PaperSet::Catalog,
            WorkloadSet::Ids(ids) => {
                return ids
                    .iter()
                    .filter_map(|id| belenos_workloads::by_id(id))
                    .collect()
            }
            WorkloadSet::Scenarios(specs) => return specs.clone(),
            WorkloadSet::MeshSweep { base, resolutions } => {
                return base
                    .iter()
                    .flat_map(|s| resolutions.iter().map(|&r| s.with_resolution(r)))
                    .collect()
            }
        };
        match named {
            PaperSet::Vtune => belenos_workloads::vtune_set(),
            PaperSet::Gem5 => belenos_workloads::gem5_set(),
            PaperSet::Catalog => belenos_workloads::catalog(),
        }
    }

    /// The scenarios this set resolves to for `analysis`. A
    /// [`Analysis::MeshScaling`] request on a set without its own
    /// resolution axis gets the [`DEFAULT_MESH_RESOLUTIONS`] applied to
    /// every resolved scenario.
    pub fn specs_for(&self, analysis: Analysis) -> Vec<ScenarioSpec> {
        let specs = self.resolve(analysis.paper_set());
        if analysis == Analysis::MeshScaling && !matches!(self, WorkloadSet::MeshSweep { .. }) {
            return specs
                .iter()
                .flat_map(|s| {
                    DEFAULT_MESH_RESOLUTIONS
                        .iter()
                        .map(|&r| s.with_resolution(r))
                })
                .collect();
        }
        specs
    }

    /// Checks the set's own consistency (inline scenarios validate,
    /// ids are unique within an explicit set, sweep axes are sane).
    fn validate(&self) -> Result<(), SpecError> {
        let check_specs = |specs: &[ScenarioSpec]| -> Result<(), SpecError> {
            if specs.is_empty() {
                return Err(SpecError::NoWorkloads);
            }
            let mut seen = std::collections::HashSet::new();
            for spec in specs {
                spec.validate().map_err(SpecError::Scenario)?;
                if !seen.insert(spec.id.as_str()) {
                    return Err(SpecError::DuplicateScenario(spec.id.clone()));
                }
            }
            Ok(())
        };
        match self {
            WorkloadSet::Ids(ids) => {
                if ids.is_empty() {
                    return Err(SpecError::NoWorkloads);
                }
                let mut seen = std::collections::HashSet::new();
                for id in ids {
                    if belenos_workloads::by_id(id).is_none() {
                        return Err(SpecError::UnknownWorkload(id.clone()));
                    }
                    if !seen.insert(id.as_str()) {
                        return Err(SpecError::DuplicateScenario(id.clone()));
                    }
                }
                Ok(())
            }
            WorkloadSet::Scenarios(specs) => check_specs(specs),
            WorkloadSet::MeshSweep { base, resolutions } => {
                check_specs(base)?;
                if resolutions.is_empty() {
                    return Err(SpecError::MeshSweep(
                        "`resolutions` must list at least one resolution".into(),
                    ));
                }
                let mut seen = std::collections::HashSet::new();
                for &r in resolutions {
                    if !(1..=64).contains(&r) {
                        return Err(SpecError::MeshSweep(format!(
                            "resolution {r} out of range (1..=64)"
                        )));
                    }
                    if !seen.insert(r) {
                        return Err(SpecError::MeshSweep(format!("duplicate resolution {r}")));
                    }
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// Parses a workloads array: all-strings stays an id list; any inline
/// object resolves everything (ids included) into full scenarios.
fn scenario_array_from_json(items: &[Json]) -> Result<WorkloadSet, JsonError> {
    if items.iter().all(|j| j.as_str().is_some()) {
        let ids = items
            .iter()
            .map(|j| j.as_str().expect("all strings").to_string())
            .collect();
        return Ok(WorkloadSet::Ids(ids));
    }
    let mut specs = Vec::with_capacity(items.len());
    for item in items {
        match item.as_str() {
            Some(id) => {
                specs.push(belenos_workloads::by_id(id).ok_or_else(|| {
                    JsonError::new(format!("workloads: unknown preset id `{id}`"))
                })?)
            }
            None => specs.push(
                ScenarioSpec::from_json(item)
                    .map_err(|e| JsonError::new(format!("workloads: {e}")))?,
            ),
        }
    }
    Ok(WorkloadSet::Scenarios(specs))
}

/// Parses a mesh-sweep `base`: a non-`paper` named set or a scenario
/// array (`paper` is per-analysis and would make the axis ambiguous).
fn sweep_base_from_json(v: &Json) -> Result<Vec<ScenarioSpec>, JsonError> {
    match v {
        Json::Str(s) => match WorkloadSet::parse_named(s) {
            Some(WorkloadSet::Paper) => Err(JsonError::new(
                "workloads.base: `paper` is per-analysis; name vtune, gem5 or catalog",
            )),
            Some(named) => Ok(named.resolve(PaperSet::Catalog)),
            None => Err(JsonError::new(format!(
                "workloads.base: unknown set `{s}` (expected vtune, gem5, catalog or a list)"
            ))),
        },
        Json::Arr(items) => Ok(match scenario_array_from_json(items)? {
            WorkloadSet::Ids(ids) => {
                let mut specs = Vec::with_capacity(ids.len());
                for id in &ids {
                    specs.push(belenos_workloads::by_id(id).ok_or_else(|| {
                        JsonError::new(format!("workloads.base: unknown preset id `{id}`"))
                    })?);
                }
                specs
            }
            WorkloadSet::Scenarios(specs) => specs,
            _ => unreachable!("scenario_array_from_json returns Ids or Scenarios"),
        }),
        _ => Err(JsonError::new(
            "workloads.base: expected a set name or a list of scenarios",
        )),
    }
}

impl ToJson for WorkloadSet {
    fn to_json(&self) -> Json {
        match self {
            WorkloadSet::Ids(ids) => ids.to_json(),
            WorkloadSet::Scenarios(specs) => Json::Arr(specs.iter().map(ToJson::to_json).collect()),
            WorkloadSet::MeshSweep { base, resolutions } => Json::obj(vec![
                (
                    "base",
                    Json::Arr(base.iter().map(ToJson::to_json).collect()),
                ),
                ("resolutions", resolutions.to_json()),
            ]),
            named => Json::Str(named.label()),
        }
    }
}

impl FromJson for WorkloadSet {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => WorkloadSet::parse_named(s).ok_or_else(|| {
                JsonError::new(format!(
                    "workloads: unknown set `{s}` (expected paper, vtune, gem5, catalog, \
                     or a list of ids/scenarios)"
                ))
            }),
            Json::Arr(items) => scenario_array_from_json(items),
            Json::Obj(_) => {
                v.reject_unknown_fields("workloads", &["base", "resolutions"])?;
                let base = sweep_base_from_json(v.expect_field("base")?)?;
                let resolutions = Vec::<usize>::from_json(v.expect_field("resolutions")?)
                    .map_err(|e| JsonError::new(format!("workloads.resolutions: {e}")))?;
                Ok(WorkloadSet::MeshSweep { base, resolutions })
            }
            _ => Err(JsonError::new(
                "workloads: expected a set name, a list of ids/scenarios, \
                 or a {base, resolutions} sweep",
            )),
        }
    }
}

/// Which paper workload set an analysis defaults to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperSet {
    /// The VTune profiling set.
    Vtune,
    /// The gem5 sensitivity set.
    Gem5,
    /// The full Table I catalog.
    Catalog,
}

/// One analysis a campaign can request — a paper table/figure or a
/// supplementary report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Analysis {
    /// Table I: dataset models breakdown.
    Table1,
    /// Table II: baseline CPU and system configuration.
    Table2,
    /// Fig. 2: top-down pipeline breakdown.
    Topdown,
    /// Fig. 3: FE/BE stall breakdown.
    Stalls,
    /// Fig. 4: hotspot-category prevalence.
    Hotspots,
    /// Fig. 5: solve time vs model size.
    Scaling,
    /// Fig. 6: execution time by model group.
    ExecTime,
    /// Fig. 7: pipeline stage breakdowns.
    Pipeline,
    /// Fig. 8: frequency sweep.
    Frequency,
    /// Fig. 9: cache-size sweeps.
    CacheSweep,
    /// Fig. 10: pipeline-width sweep.
    Width,
    /// Fig. 11: LQ/SQ depth sweep.
    Lsq,
    /// Fig. 12: branch-predictor sweep.
    Branch,
    /// Supplementary memory profiles.
    Memory,
    /// ROB/IQ instruction-window ablation (§IV-C4).
    RobIq,
    /// Mesh-resolution scaling: IPC and bottleneck class per family as
    /// the mesh refines (needs the parametric scenario space).
    MeshScaling,
}

impl Analysis {
    /// Every analysis, in `belenos figure all` / `all_figures` print
    /// order (tables first, then figures by number, then supplements).
    pub const ALL: [Analysis; 16] = [
        Analysis::Table1,
        Analysis::Table2,
        Analysis::Topdown,
        Analysis::Stalls,
        Analysis::Hotspots,
        Analysis::Scaling,
        Analysis::ExecTime,
        Analysis::Pipeline,
        Analysis::Frequency,
        Analysis::CacheSweep,
        Analysis::Width,
        Analysis::Lsq,
        Analysis::Branch,
        Analysis::Memory,
        Analysis::RobIq,
        Analysis::MeshScaling,
    ];

    /// Stable spec/CLI identifier.
    pub fn id(self) -> &'static str {
        match self {
            Analysis::Table1 => "table1",
            Analysis::Table2 => "table2",
            Analysis::Topdown => "topdown",
            Analysis::Stalls => "stalls",
            Analysis::Hotspots => "hotspots",
            Analysis::Scaling => "scaling",
            Analysis::ExecTime => "exec_time",
            Analysis::Pipeline => "pipeline",
            Analysis::Frequency => "frequency",
            Analysis::CacheSweep => "cache",
            Analysis::Width => "width",
            Analysis::Lsq => "lsq",
            Analysis::Branch => "branch",
            Analysis::Memory => "memory",
            Analysis::RobIq => "rob_iq",
            Analysis::MeshScaling => "mesh_scaling",
        }
    }

    /// One-line description for `belenos list`.
    pub fn describe(self) -> &'static str {
        match self {
            Analysis::Table1 => "Table I: dataset models breakdown",
            Analysis::Table2 => "Table II: baseline CPU and system configuration",
            Analysis::Topdown => "Fig. 2: top-down pipeline breakdown",
            Analysis::Stalls => "Fig. 3: FE/BE stall breakdown",
            Analysis::Hotspots => "Fig. 4: hotspot-category share of clockticks",
            Analysis::Scaling => "Fig. 5: solve time vs model size",
            Analysis::ExecTime => "Fig. 6: execution time by model group",
            Analysis::Pipeline => "Fig. 7: fetch/execute/commit stage breakdowns",
            Analysis::Frequency => "Fig. 8: execution time and IPC vs core frequency",
            Analysis::CacheSweep => "Fig. 9: L1/L2 cache-size sensitivity",
            Analysis::Width => "Fig. 10: pipeline-width sensitivity",
            Analysis::Lsq => "Fig. 11: LQ/SQ depth sensitivity",
            Analysis::Branch => "Fig. 12: branch-predictor sensitivity",
            Analysis::Memory => "memory profiles (MPKIs, DRAM bandwidth)",
            Analysis::RobIq => "ROB/IQ instruction-window ablation",
            Analysis::MeshScaling => "IPC and bottleneck class vs mesh resolution per family",
        }
    }

    /// Parses a spec/CLI identifier (accepts `figNN` aliases).
    pub fn parse(s: &str) -> Option<Analysis> {
        match s.trim().to_ascii_lowercase().as_str() {
            "table1" | "table_1" | "1" => Some(Analysis::Table1),
            "table2" | "table_2" | "2" => Some(Analysis::Table2),
            "topdown" | "fig02" | "fig2" => Some(Analysis::Topdown),
            "stalls" | "fig03" | "fig3" => Some(Analysis::Stalls),
            "hotspots" | "fig04" | "fig4" => Some(Analysis::Hotspots),
            "scaling" | "fig05" | "fig5" => Some(Analysis::Scaling),
            "exec_time" | "exec-time" | "fig06" | "fig6" => Some(Analysis::ExecTime),
            "pipeline" | "fig07" | "fig7" => Some(Analysis::Pipeline),
            "frequency" | "freq" | "fig08" | "fig8" => Some(Analysis::Frequency),
            "cache" | "fig09" | "fig9" => Some(Analysis::CacheSweep),
            "width" | "fig10" => Some(Analysis::Width),
            "lsq" | "fig11" => Some(Analysis::Lsq),
            "branch" | "fig12" => Some(Analysis::Branch),
            "memory" | "memory_profiles" => Some(Analysis::Memory),
            "rob_iq" | "rob-iq" | "robiq" => Some(Analysis::RobIq),
            "mesh_scaling" | "mesh-scaling" | "meshscaling" => Some(Analysis::MeshScaling),
            _ => None,
        }
    }

    /// Which paper set this analysis ran on (what the per-figure bench
    /// binaries used to hardcode).
    pub fn paper_set(self) -> PaperSet {
        match self {
            Analysis::Topdown | Analysis::Stalls | Analysis::ExecTime | Analysis::Memory => {
                PaperSet::Vtune
            }
            Analysis::Hotspots | Analysis::Scaling => PaperSet::Catalog,
            Analysis::Table1 | Analysis::Table2 => PaperSet::Catalog,
            // The scaling axis over the gem5 sensitivity set by default;
            // a MeshSweep workload set overrides the axis entirely.
            Analysis::MeshScaling => PaperSet::Gem5,
            _ => PaperSet::Gem5,
        }
    }

    /// True when the analysis needs prepared (solved) workload models.
    pub fn needs_experiments(self) -> bool {
        !matches!(self, Analysis::Table1 | Analysis::Table2)
    }
}

impl ToJson for Analysis {
    fn to_json(&self) -> Json {
        Json::Str(self.id().to_string())
    }
}

impl FromJson for Analysis {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let s = v
            .as_str()
            .ok_or_else(|| JsonError::new("analyses: expected analysis id strings"))?;
        Analysis::parse(s)
            .ok_or_else(|| JsonError::new(format!("analyses: unknown analysis `{s}`")))
    }
}

/// A structurally invalid campaign spec.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document was not valid JSON, or a field had the wrong shape
    /// (including zero-interval sampling).
    Json(JsonError),
    /// A workload id does not exist in the catalog.
    UnknownWorkload(String),
    /// The spec requests no analyses.
    NoAnalyses,
    /// The spec's workload list is empty.
    NoWorkloads,
    /// An inline scenario failed its own validation.
    Scenario(ScenarioError),
    /// Two scenarios in one explicit set share an id (their report rows
    /// would be indistinguishable).
    DuplicateScenario(String),
    /// The mesh-resolution axis is malformed.
    MeshSweep(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "invalid campaign spec: {e}"),
            SpecError::UnknownWorkload(id) => {
                write!(f, "invalid campaign spec: unknown workload id `{id}`")
            }
            SpecError::NoAnalyses => {
                write!(
                    f,
                    "invalid campaign spec: `analyses` must name at least one analysis"
                )
            }
            SpecError::NoWorkloads => {
                write!(
                    f,
                    "invalid campaign spec: `workloads` must name at least one workload"
                )
            }
            SpecError::Scenario(e) => write!(f, "invalid campaign spec: {e}"),
            SpecError::DuplicateScenario(id) => {
                write!(f, "invalid campaign spec: duplicate scenario id `{id}`")
            }
            SpecError::MeshSweep(msg) => {
                write!(f, "invalid campaign spec: mesh sweep: {msg}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::Json(e)
    }
}

/// Why a campaign could not be prepared.
#[derive(Debug)]
pub enum CampaignError {
    /// The spec failed validation.
    Spec(SpecError),
    /// A workload model failed to solve.
    Prepare(PrepareError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Spec(e) => e.fmt(f),
            CampaignError::Prepare(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<SpecError> for CampaignError {
    fn from(e: SpecError) -> Self {
        CampaignError::Spec(e)
    }
}

impl From<PrepareError> for CampaignError {
    fn from(e: PrepareError) -> Self {
        CampaignError::Prepare(e)
    }
}

/// A declarative, serializable campaign description.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (free-form; appears in reports).
    pub name: String,
    /// Workload selection.
    pub workloads: WorkloadSet,
    /// Simulation options every analysis runs under.
    pub options: SimOptions,
    /// Requested analyses, in output order.
    pub analyses: Vec<Analysis>,
}

impl CampaignSpec {
    /// An empty campaign with default workloads (paper sets) and default
    /// options (unlimited budget, sampling off, `o3`).
    pub fn new(name: impl Into<String>) -> CampaignSpec {
        CampaignSpec {
            name: name.into(),
            workloads: WorkloadSet::Paper,
            options: SimOptions::default(),
            analyses: Vec::new(),
        }
    }

    /// The full paper campaign: every analysis the retired `all_figures`
    /// binary printed, in the same order, on the paper workload sets.
    pub fn paper_campaign(options: SimOptions) -> CampaignSpec {
        CampaignSpec {
            name: "paper".into(),
            workloads: WorkloadSet::Paper,
            options,
            analyses: vec![
                Analysis::Table1,
                Analysis::Table2,
                Analysis::Topdown,
                Analysis::Stalls,
                Analysis::ExecTime,
                Analysis::Memory,
                Analysis::Hotspots,
                Analysis::Scaling,
                Analysis::Pipeline,
                Analysis::Frequency,
                Analysis::CacheSweep,
                Analysis::Width,
                Analysis::Lsq,
                Analysis::Branch,
            ],
        }
    }

    /// Builder: sets the workload selection.
    pub fn with_workloads(mut self, workloads: WorkloadSet) -> CampaignSpec {
        self.workloads = workloads;
        self
    }

    /// Builder: sets the simulation options.
    pub fn with_options(mut self, options: SimOptions) -> CampaignSpec {
        self.options = options;
        self
    }

    /// Builder: appends an analysis.
    pub fn with_analysis(mut self, analysis: Analysis) -> CampaignSpec {
        self.analyses.push(analysis);
        self
    }

    /// Checks the spec's internal consistency: at least one analysis,
    /// every explicit workload id must exist, inline scenarios must
    /// validate, and a mesh-sweep axis must be sane.
    ///
    /// # Errors
    ///
    /// The first violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.analyses.is_empty() {
            return Err(SpecError::NoAnalyses);
        }
        self.workloads.validate()
    }

    /// Parses and validates a JSON campaign spec.
    ///
    /// # Errors
    ///
    /// A [`SpecError`] for malformed JSON, wrong field shapes
    /// (including zero-interval sampling), unknown analyses, or unknown
    /// workload ids.
    pub fn parse(text: &str) -> Result<CampaignSpec, SpecError> {
        let spec = CampaignSpec::from_json(&Json::parse(text)?)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Serializes the spec as a pretty-printed JSON document that
    /// [`CampaignSpec::parse`] accepts back unchanged.
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).pretty()
    }

    /// Validates the spec and solves every workload model it needs
    /// (each distinct set once, shared across analyses).
    ///
    /// # Errors
    ///
    /// [`CampaignError::Spec`] when the spec is invalid,
    /// [`CampaignError::Prepare`] when a workload model fails to solve.
    pub fn prepare(&self) -> Result<Campaign, CampaignError> {
        Campaign::prepare(self.clone())
    }
}

impl ToJson for CampaignSpec {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("workloads", self.workloads.to_json()),
            ("options", self.options.to_json()),
            ("analyses", self.analyses.to_json()),
        ])
    }
}

impl FromJson for CampaignSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if v.as_obj().is_none() {
            return Err(JsonError::new("campaign spec: expected a JSON object"));
        }
        v.reject_unknown_fields(
            "campaign spec",
            &["name", "workloads", "options", "analyses"],
        )?;
        let name = match v.get("name") {
            Some(n) => String::from_json(n).map_err(|e| JsonError::new(format!("name: {e}")))?,
            None => "campaign".to_string(),
        };
        let workloads = match v.get("workloads") {
            Some(w) => WorkloadSet::from_json(w)?,
            None => WorkloadSet::Paper,
        };
        let options = match v.get("options") {
            Some(o) => SimOptions::from_json(o)?,
            None => SimOptions::default(),
        };
        let analyses = Vec::<Analysis>::from_json(v.expect_field("analyses")?)?;
        Ok(CampaignSpec {
            name,
            workloads,
            options,
            analyses,
        })
    }
}

/// The outcome of one analysis in a campaign.
#[derive(Debug, Clone)]
pub struct AnalysisOutcome {
    /// Which analysis ran.
    pub analysis: Analysis,
    /// Its report, or the failure that stopped it. A failed analysis
    /// never aborts the rest of the campaign.
    pub result: Result<Report, SimFailure>,
}

/// Everything a campaign produced: one outcome per requested analysis,
/// in spec order.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The campaign's name (from the spec).
    pub name: String,
    /// Per-analysis outcomes.
    pub outcomes: Vec<AnalysisOutcome>,
    /// Telemetry roll-up: per-analysis wall time and cache traffic,
    /// present only when a telemetry sink is configured (so runs without
    /// one — including the golden-pinned tests — render byte-identically
    /// to the pre-telemetry format).
    pub rollup: Option<Report>,
}

impl CampaignReport {
    /// Plain-text rendering: each report in order followed by a blank
    /// line — byte-identical to what the retired per-figure binaries
    /// printed in sequence. Failed analyses render as a
    /// `FIGURE FAILED:` marker line, exactly as before.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            match &o.result {
                Ok(report) => out.push_str(&report.to_text()),
                Err(e) => out.push_str(&format!("FIGURE FAILED: {e}")),
            }
            out.push('\n');
        }
        if let Some(rollup) = &self.rollup {
            out.push_str(&rollup.to_text());
            out.push('\n');
        }
        out
    }

    /// JSON rendering: every report's structured rows plus failure
    /// records.
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).pretty()
    }

    /// CSV rendering of every successful report.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            match &o.result {
                Ok(report) => out.push_str(&report.to_csv()),
                Err(e) => out.push_str(&format!("# {}: FAILED: {e}\n", o.analysis.id())),
            }
        }
        if let Some(rollup) = &self.rollup {
            if !self.outcomes.is_empty() {
                out.push('\n');
            }
            out.push_str(&rollup.to_csv());
        }
        out
    }

    /// The failure records, if any analysis had a wedged point.
    pub fn failures(&self) -> Vec<&SimFailure> {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().err())
            .collect()
    }
}

impl ToJson for CampaignReport {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("campaign", Json::Str(self.name.clone())),
            (
                "reports",
                Json::Arr(
                    self.outcomes
                        .iter()
                        .map(|o| match &o.result {
                            Ok(report) => ToJson::to_json(report),
                            Err(e) => Json::obj(vec![
                                ("report", Json::Str(o.analysis.id().to_string())),
                                ("error", e.to_json()),
                            ]),
                        })
                        .collect(),
                ),
            ),
        ];
        // Emitted only when present, so telemetry-off documents keep the
        // historical schema exactly.
        if let Some(rollup) = &self.rollup {
            pairs.push(("rollup", ToJson::to_json(rollup)));
        }
        Json::obj(pairs)
    }
}

/// A validated campaign with its workload models solved, ready to run.
#[derive(Debug)]
pub struct Campaign {
    spec: CampaignSpec,
    /// Prepared experiments per resolved workload-set key.
    experiments: HashMap<String, Vec<Experiment>>,
}

impl Campaign {
    /// Validates `spec` and solves each distinct workload set it needs.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Spec`] when the spec is invalid,
    /// [`CampaignError::Prepare`] when a model fails to solve.
    pub fn prepare(spec: CampaignSpec) -> Result<Campaign, CampaignError> {
        spec.validate()?;
        // Resolve the distinct workload sets first, then push every
        // scenario across every set through one worker-pool batch, so a
        // campaign's prepare wall is bounded by its slowest solve rather
        // than the sum of all of them.
        let mut keys: Vec<String> = Vec::new();
        let mut sets: Vec<Vec<ScenarioSpec>> = Vec::new();
        for &analysis in &spec.analyses {
            if !analysis.needs_experiments() {
                continue;
            }
            let specs = spec.workloads.specs_for(analysis);
            let key = set_key(&specs);
            if !keys.contains(&key) {
                keys.push(key);
                sets.push(specs);
            }
        }
        let flat: Vec<&ScenarioSpec> = sets.iter().flatten().collect();
        let mut prepared = crate::experiment::prepare_refs(&flat)?.into_iter();
        let experiments = keys
            .into_iter()
            .zip(&sets)
            .map(|(key, set)| (key, prepared.by_ref().take(set.len()).collect()))
            .collect();
        Ok(Campaign { spec, experiments })
    }

    /// The spec this campaign was prepared from.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Runs every requested analysis through `runner`, collecting
    /// per-analysis reports and failure records. Grid points shared
    /// between analyses hit the runner's content-addressed cache.
    ///
    /// With a telemetry sink configured, the run is wrapped in a
    /// `campaign` span, each analysis in an `analysis` span, and the
    /// returned report carries a [`CampaignReport::rollup`] section
    /// tabulating per-analysis wall time and cache traffic.
    pub fn run(&self, runner: &Runner) -> CampaignReport {
        let tele = belenos_telemetry::global();
        let campaign_span = tele.span(
            "campaign",
            &[
                ("campaign", self.spec.name.as_str().into()),
                ("analyses", self.spec.analyses.len().into()),
            ],
        );
        let opts = &self.spec.options;
        let mut rollup_rows: Vec<RollupRow> = Vec::new();
        let outcomes: Vec<AnalysisOutcome> = self
            .spec
            .analyses
            .iter()
            .map(|&analysis| {
                let _analysis_span = tele.span("analysis", &[("analysis", analysis.id().into())]);
                let before = runner.cache().stats();
                let t0 = std::time::Instant::now();
                let exps: &[Experiment] = if analysis.needs_experiments() {
                    let key = set_key(&self.spec.workloads.specs_for(analysis));
                    self.experiments.get(&key).map(Vec::as_slice).unwrap_or(&[])
                } else {
                    &[]
                };
                let result = run_analysis(runner, analysis, exps, opts);
                if tele.enabled() {
                    let after = runner.cache().stats();
                    rollup_rows.push(RollupRow {
                        analysis: analysis.id().to_string(),
                        wall_s: t0.elapsed().as_secs_f64(),
                        lookups: after.lookups().saturating_sub(before.lookups()),
                        hits: after.hits.saturating_sub(before.hits),
                        ok: result.is_ok(),
                    });
                }
                AnalysisOutcome { analysis, result }
            })
            .collect();
        let rollup = tele.enabled().then(|| rollup_report(&rollup_rows));
        drop(campaign_span);
        CampaignReport {
            name: self.spec.name.clone(),
            outcomes,
            rollup,
        }
    }
}

/// One analysis line of the telemetry roll-up.
struct RollupRow {
    analysis: String,
    wall_s: f64,
    lookups: u64,
    hits: u64,
    ok: bool,
}

/// Builds the roll-up [`Report`] appended to a telemetry-enabled
/// campaign: one row per analysis with wall time and the cache traffic it
/// generated, plus a totals row.
fn rollup_report(rows: &[RollupRow]) -> Report {
    let mut report = Report::new("telemetry_rollup");
    let section = report.section(
        "Telemetry roll-up: per-analysis wall time and runner-cache traffic",
        &["Analysis", "Wall (s)", "Lookups", "Hits", "Status"],
    );
    for r in rows {
        section.row(vec![
            crate::report::Cell::text(&r.analysis),
            crate::report::Cell::num(r.wall_s, 2),
            crate::report::Cell::num(r.lookups as f64, 0),
            crate::report::Cell::num(r.hits as f64, 0),
            crate::report::Cell::text(if r.ok { "ok" } else { "FAILED" }),
        ]);
    }
    section.row(vec![
        crate::report::Cell::text("total"),
        crate::report::Cell::num(rows.iter().map(|r| r.wall_s).sum(), 2),
        crate::report::Cell::num(rows.iter().map(|r| r.lookups).sum::<u64>() as f64, 0),
        crate::report::Cell::num(rows.iter().map(|r| r.hits).sum::<u64>() as f64, 0),
        crate::report::Cell::text(if rows.iter().all(|r| r.ok) {
            "ok"
        } else {
            "FAILED"
        }),
    ]);
    report
}

/// Keys a resolved workload set by id *and* content digest, so two
/// analyses resolving same-id scenarios with different parameters can
/// never share prepared experiments by accident.
fn set_key(specs: &[ScenarioSpec]) -> String {
    specs
        .iter()
        .map(|s| format!("{}:{:016x}", s.id, s.stable_digest()))
        .collect::<Vec<_>>()
        .join(",")
}

fn run_analysis(
    runner: &Runner,
    analysis: Analysis,
    exps: &[Experiment],
    opts: &SimOptions,
) -> Result<Report, SimFailure> {
    match analysis {
        Analysis::Table1 => Ok(figures::table1()),
        Analysis::Table2 => Ok(figures::table2()),
        Analysis::Topdown => figures::fig02_topdown(runner, exps, opts),
        Analysis::Stalls => figures::fig03_stalls(runner, exps, opts),
        Analysis::Hotspots => figures::fig04_hotspots(runner, exps, opts),
        Analysis::Scaling => Ok(figures::fig05_scaling(exps)),
        Analysis::ExecTime => Ok(figures::fig06_exec_time(exps)),
        Analysis::Pipeline => figures::fig07_pipeline(runner, exps, opts),
        Analysis::Frequency => figures::fig08_frequency(runner, exps, opts),
        Analysis::CacheSweep => figures::fig09_cache(runner, exps, opts),
        Analysis::Width => figures::fig10_width(runner, exps, opts),
        Analysis::Lsq => figures::fig11_lsq(runner, exps, opts),
        Analysis::Branch => figures::fig12_branch(runner, exps, opts),
        Analysis::Memory => figures::memory_profiles(runner, exps, opts),
        Analysis::RobIq => figures::ablation_rob_iq(runner, exps, opts),
        Analysis::MeshScaling => figures::mesh_scaling(runner, exps, opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use belenos_uarch::{ModelKind, SamplingConfig};

    #[test]
    fn spec_json_roundtrip() {
        let spec = CampaignSpec::new("roundtrip")
            .with_workloads(WorkloadSet::Ids(vec!["pd".into(), "co".into()]))
            .with_options(
                SimOptions::new(40_000)
                    .with_sampling(SamplingConfig::smarts(8))
                    .with_model(ModelKind::Analytic),
            )
            .with_analysis(Analysis::Topdown)
            .with_analysis(Analysis::Frequency);
        let text = spec.to_json();
        let back = CampaignSpec::parse(&text).expect("roundtrip");
        assert_eq!(back, spec);
    }

    #[test]
    fn named_sets_roundtrip() {
        for set in [
            WorkloadSet::Paper,
            WorkloadSet::Vtune,
            WorkloadSet::Gem5,
            WorkloadSet::Catalog,
        ] {
            let spec = CampaignSpec::new("sets")
                .with_workloads(set.clone())
                .with_analysis(Analysis::Table1);
            let back = CampaignSpec::parse(&spec.to_json()).unwrap();
            assert_eq!(back.workloads, set);
        }
    }

    #[test]
    fn every_analysis_id_parses_back() {
        for a in Analysis::ALL {
            assert_eq!(Analysis::parse(a.id()), Some(a), "{}", a.id());
        }
        assert_eq!(Analysis::parse("fig08"), Some(Analysis::Frequency));
        assert_eq!(Analysis::parse("nope"), None);
    }

    #[test]
    fn unknown_workload_id_is_rejected() {
        let err = CampaignSpec::parse(r#"{"workloads": ["pd", "zz"], "analyses": ["table1"]}"#)
            .unwrap_err();
        assert_eq!(err, SpecError::UnknownWorkload("zz".into()));
        assert!(err.to_string().contains("zz"));
    }

    #[test]
    fn zero_interval_sampling_is_rejected() {
        let err = CampaignSpec::parse(
            r#"{"workloads": ["pd"], "options": {"sampling": 0}, "analyses": ["topdown"]}"#,
        )
        .unwrap_err();
        match err {
            SpecError::Json(e) => assert!(e.to_string().contains("ambiguous"), "{e}"),
            other => panic!("expected a JSON shape error, got {other:?}"),
        }
    }

    #[test]
    fn empty_or_unknown_analyses_are_rejected() {
        assert_eq!(
            CampaignSpec::parse(r#"{"analyses": []}"#).unwrap_err(),
            SpecError::NoAnalyses
        );
        assert!(CampaignSpec::parse(r#"{"analyses": ["fig99"]}"#).is_err());
        assert!(CampaignSpec::parse(r#"{"workloads": [], "analyses": ["table1"]}"#).is_err());
        // `analyses` is the one required field.
        assert!(CampaignSpec::parse(r#"{"name": "x"}"#).is_err());
    }

    #[test]
    fn misspelled_fields_are_rejected_not_defaulted() {
        // A typo must fail validation loudly, never silently run with
        // defaults (an unlimited-budget campaign instead of a smoke run).
        for bad in [
            r#"{"option": {"max_ops": 2000}, "analyses": ["table1"]}"#,
            r#"{"options": {"max_op": 2000}, "analyses": ["table1"]}"#,
            r#"{"options": {"sampling": {"intervls": 8}}, "analyses": ["table1"]}"#,
        ] {
            let err = CampaignSpec::parse(bad).unwrap_err();
            assert!(err.to_string().contains("unknown field"), "{bad} -> {err}");
        }
    }

    #[test]
    fn terse_spec_defaults() {
        let spec = CampaignSpec::parse(r#"{"analyses": ["table1"]}"#).unwrap();
        assert_eq!(spec.name, "campaign");
        assert_eq!(spec.workloads, WorkloadSet::Paper);
        assert_eq!(spec.options, SimOptions::default());
    }

    #[test]
    fn paper_campaign_covers_the_old_all_figures_sequence() {
        let spec = CampaignSpec::paper_campaign(SimOptions::new(1_000_000));
        assert_eq!(spec.analyses.len(), 14);
        assert_eq!(spec.analyses[0], Analysis::Table1);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn campaign_runs_tables_and_a_tiny_figure() {
        let spec = CampaignSpec::new("tiny")
            .with_workloads(WorkloadSet::Ids(vec!["pd".into()]))
            .with_options(SimOptions::new(20_000))
            .with_analysis(Analysis::Table1)
            .with_analysis(Analysis::Topdown);
        let campaign = spec.prepare().expect("pd solves");
        let report = campaign.run(&Runner::isolated(2));
        assert_eq!(report.outcomes.len(), 2);
        assert!(report.failures().is_empty());
        let text = report.to_text();
        assert!(text.contains("Table I"));
        assert!(text.contains("Fig. 2"));
        // Structured form parses and names both reports.
        let json = Json::parse(&report.to_json()).unwrap();
        let reports = json.get("reports").unwrap().as_arr().unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(
            reports[1].get("report").unwrap().as_str(),
            Some("fig02_topdown")
        );
    }

    #[test]
    fn invalid_spec_fails_prepare_with_a_named_error() {
        let spec = CampaignSpec::new("broken");
        let err = spec.prepare().unwrap_err();
        assert!(err.to_string().contains("analyses"), "{err}");
    }
}

//! Persistent content-addressed trace store.
//!
//! [`TraceStore`] keys prepared traces by `ScenarioSpec::stable_digest` ×
//! an [`ExpandConfig`] fingerprint and persists them under
//! `BELENOS_TRACE_DIR` (or `--trace-dir`) in the versioned binary format
//! of [`belenos_trace::store`]. A hit lets [`Experiment::prepare`]
//! reconstruct the phase log — and often the fully expanded trace —
//! without building or solving the FE model, so the prepare phase is paid
//! once *ever* per scenario across processes, sweeps, and fleet workers.
//!
//! Trust model: the store is a cache, never an authority. Every load
//! re-verifies the embedded trace fingerprint against the decoded log, so
//! a corrupt, truncated, stale, or misfiled entry degrades to a recompute
//! (with a structured telemetry `warn`), never to a wrong trace. Writes
//! go through a write-then-rename so concurrent processes sharing one
//! store directory can race safely.
//!
//! [`Experiment::prepare`]: crate::experiment::Experiment::prepare

use crate::experiment::{expand_fingerprint, trace_fingerprint};
use belenos_trace::expand::ExpandConfig;
use belenos_trace::{FlatTrace, StoreHeader, TraceArtifact, HEADER_LEN};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// A directory of content-addressed trace artifacts.
#[derive(Debug, Clone)]
pub struct TraceStore {
    dir: PathBuf,
}

static DIR_OVERRIDE: OnceLock<PathBuf> = OnceLock::new();
static GLOBAL: OnceLock<Option<TraceStore>> = OnceLock::new();

/// Routes the process-wide store at `dir` (the `--trace-dir` flag).
///
/// Must run before the first [`global`] call; returns `false` when an
/// override was already installed (first caller wins, matching the
/// telemetry `install` contract).
pub fn install_dir(dir: impl Into<PathBuf>) -> bool {
    DIR_OVERRIDE.set(dir.into()).is_ok()
}

/// The process-wide trace store: the `--trace-dir` override when
/// installed, else `BELENOS_TRACE_DIR` (read once, here — keeping the
/// one-env-read-per-knob rule), else `None` (store disabled).
pub fn global() -> Option<&'static TraceStore> {
    GLOBAL
        .get_or_init(|| {
            if let Some(dir) = DIR_OVERRIDE.get() {
                return Some(TraceStore::at(dir.clone()));
            }
            match std::env::var("BELENOS_TRACE_DIR") {
                Ok(dir) if !dir.is_empty() => Some(TraceStore::at(dir)),
                _ => None,
            }
        })
        .as_ref()
}

impl TraceStore {
    /// A store rooted at `dir` (created lazily on first save).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        TraceStore { dir: dir.into() }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// On-disk path of the entry for (scenario, expansion-config).
    pub fn entry_path(&self, scenario_digest: u64, expand: &ExpandConfig) -> PathBuf {
        let expand_fp = expand_fingerprint(expand);
        self.dir
            .join(format!("trace-{scenario_digest:016x}-{expand_fp:016x}.bin"))
    }

    /// Looks up the artifact for (scenario, expansion-config), verifying
    /// structure, key identity, and the trace fingerprint end to end.
    ///
    /// Only the header and log section are read and decoded — KBs, where
    /// the flat section of a long trace is MBs. When the entry carries a
    /// flat section, the returned [`FlatHandle`] locates it for lazy
    /// decoding at simulate time (`artifact.flat` is always `None` here).
    ///
    /// Any anomaly — unreadable file, truncation, version skew, checksum
    /// or fingerprint mismatch — emits a telemetry `warn` and reads as a
    /// miss, so callers always recompute instead of erroring out.
    /// Emits `trace_store_hit` / `trace_store_miss` counters either way.
    pub fn load(
        &self,
        workload: &str,
        scenario_digest: u64,
        expand: &ExpandConfig,
    ) -> Option<(TraceArtifact, Option<FlatHandle>)> {
        let tele = belenos_telemetry::global();
        let path = self.entry_path(scenario_digest, expand);
        let miss = |tele: &belenos_telemetry::Telemetry| {
            tele.counter("trace_store_miss", 1, &[("workload", workload.into())]);
        };
        let (header, log_section, file_len) = match read_log_section(&path) {
            Ok(parts) => parts,
            Err(ReadError::NotFound) => {
                miss(&tele);
                return None;
            }
            Err(ReadError::Io(e)) => {
                tele.warn(&format!(
                    "trace store: failed to read {}: {e}",
                    path.display()
                ));
                miss(&tele);
                return None;
            }
            Err(ReadError::Store(e)) => {
                tele.warn(&format!(
                    "trace store: discarding {}: {e}; recomputing",
                    path.display()
                ));
                miss(&tele);
                return None;
            }
        };
        if file_len != header.total_len() {
            tele.warn(&format!(
                "trace store: discarding {}: {}; recomputing",
                path.display(),
                belenos_trace::StoreError::Truncated
            ));
            miss(&tele);
            return None;
        }
        let expand_fp = expand_fingerprint(expand);
        if header.scenario_digest != scenario_digest || header.expand_fingerprint != expand_fp {
            tele.warn(&format!(
                "trace store: {} is keyed for a different scenario \
                 (found {:016x}/{:016x}, wanted {scenario_digest:016x}/{expand_fp:016x}); \
                 recomputing",
                path.display(),
                header.scenario_digest,
                header.expand_fingerprint,
            ));
            miss(&tele);
            return None;
        }
        let artifact = match TraceArtifact::decode_log(&header, &log_section) {
            Ok(a) => a,
            Err(e) => {
                tele.warn(&format!(
                    "trace store: discarding {}: {e}; recomputing",
                    path.display()
                ));
                miss(&tele);
                return None;
            }
        };
        if trace_fingerprint(&artifact.log, expand) != artifact.trace_fingerprint {
            tele.warn(&format!(
                "trace store: {} fingerprint mismatch (stale or corrupt entry); recomputing",
                path.display()
            ));
            miss(&tele);
            return None;
        }
        tele.counter("trace_store_hit", 1, &[("workload", workload.into())]);
        let flat = (header.flat_ops > 0).then(|| FlatHandle {
            path,
            header,
            workload: workload.to_string(),
        });
        Some((artifact, flat))
    }

    /// Persists `artifact` under its content address, atomically
    /// (write-then-rename, so concurrent writers and crashed processes
    /// never leave a half-written entry at the final path).
    ///
    /// Failures warn and return; the store is an optimization, never a
    /// reason to fail a prepare. Emits `trace_store_write_bytes`.
    pub fn save(&self, workload: &str, artifact: &TraceArtifact, expand: &ExpandConfig) {
        let tele = belenos_telemetry::global();
        let path = self.entry_path(artifact.scenario_digest, expand);
        if let Err(e) = std::fs::create_dir_all(&self.dir) {
            tele.warn(&format!(
                "trace store: cannot create {}: {e}",
                self.dir.display()
            ));
            return;
        }
        let bytes = artifact.encode();
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        if let Err(e) = std::fs::write(&tmp, &bytes) {
            tele.warn(&format!("trace store: write {} failed: {e}", tmp.display()));
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if let Err(e) = std::fs::rename(&tmp, &path) {
            tele.warn(&format!(
                "trace store: rename to {} failed: {e}",
                path.display()
            ));
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        tele.counter(
            "trace_store_write_bytes",
            bytes.len() as u64,
            &[("workload", workload.into())],
        );
    }
}

/// Locates a store entry's flat section for lazy decoding: a verified
/// store hit hands one of these to the experiment, which reads it only
/// when a simulation first wants the whole expanded trace (replacing a
/// re-expansion pass, not adding to the prepare wall).
#[derive(Debug)]
pub struct FlatHandle {
    path: PathBuf,
    header: StoreHeader,
    workload: String,
}

impl FlatHandle {
    /// Micro-op count of the flat section (known without reading it).
    pub fn n_ops(&self) -> u64 {
        self.header.flat_ops
    }

    /// Reads, verifies, and decodes the flat section. Any failure —
    /// the file changed, truncation, checksum — warns and returns
    /// `None`; the caller re-expands from the already-verified log, so
    /// a bad flat section can never produce a wrong trace.
    pub fn read(&self) -> Option<Arc<FlatTrace>> {
        let tele = belenos_telemetry::global();
        let fail = |msg: String| {
            tele.warn(&format!(
                "trace store: flat section of {} for `{}`: {msg}; re-expanding",
                self.path.display(),
                self.workload
            ));
            None
        };
        let mut section = Vec::new();
        match std::fs::File::open(&self.path).and_then(|mut f| {
            f.seek(SeekFrom::Start(self.header.flat_offset()))?;
            f.read_to_end(&mut section)
        }) {
            Ok(_) => {}
            Err(e) => return fail(e.to_string()),
        }
        match TraceArtifact::decode_flat(&self.header, &section) {
            Ok(flat) => Some(Arc::new(flat)),
            Err(e) => fail(e.to_string()),
        }
    }
}

/// Why the partial entry read failed.
enum ReadError {
    /// No entry at this key (a silent miss).
    NotFound,
    /// The file exists but could not be read.
    Io(std::io::Error),
    /// The header or section structure is invalid.
    Store(belenos_trace::StoreError),
}

/// Opens `path` and reads exactly the header and the log section
/// (payload + checksum), returning them with the file's total length so
/// the caller can detect truncation without touching the flat bytes.
fn read_log_section(path: &Path) -> Result<(StoreHeader, Vec<u8>, u64), ReadError> {
    let mut file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(ReadError::NotFound),
        Err(e) => return Err(ReadError::Io(e)),
    };
    let file_len = file.metadata().map_err(ReadError::Io)?.len();
    let mut header_bytes = [0u8; HEADER_LEN];
    if file_len < HEADER_LEN as u64 {
        return Err(ReadError::Store(belenos_trace::StoreError::Truncated));
    }
    file.read_exact(&mut header_bytes).map_err(ReadError::Io)?;
    let header = StoreHeader::decode(&header_bytes).map_err(ReadError::Store)?;
    let log_section_len = header
        .log_len
        .checked_add(8)
        .filter(|&n| n <= file_len.saturating_sub(HEADER_LEN as u64))
        .ok_or(ReadError::Store(belenos_trace::StoreError::Truncated))?;
    let mut section = vec![0u8; log_section_len as usize];
    file.read_exact(&mut section).map_err(ReadError::Io)?;
    Ok((header, section, file_len))
}

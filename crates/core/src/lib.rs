//! # belenos
//!
//! Bottleneck Evaluation to Link Biomechanics to Novel Computing
//! Optimizations — the experiment harness reproducing the IISWC 2025
//! Belenos paper.
//!
//! The paper characterizes FEBio finite-element biomechanics workloads with
//! Intel VTune (real hardware) and gem5 (microarchitectural sensitivity).
//! This crate ties the reproduction's substrates together:
//!
//! * `belenos-fem` solves the workload models numerically and records a
//!   kernel-level phase log;
//! * `belenos-trace` expands the log into a micro-op stream;
//! * `belenos-uarch` executes the stream on a cycle-level out-of-order
//!   core (the gem5 substitute);
//! * `belenos-profiler` produces the VTune-style analyses.
//!
//! [`experiment`] runs one workload through that pipeline; [`sweep`] runs
//! the paper's sensitivity studies (frequency, cache sizes, pipeline
//! width, load/store queues, branch predictors); [`figures`] regenerates
//! every table and figure of the paper as structured [`Report`]s
//! (text/JSON/CSV renderers over the same rows); [`campaign`] wraps all
//! of it behind a declarative, JSON-serializable [`CampaignSpec`]
//! executed by [`Campaign::run`].
//!
//! Every sweep and figure submits its (workload × config) grid to the
//! `belenos-runner` batch engine: points execute in parallel across
//! `BELENOS_JOBS` worker threads and land in a content-addressed result
//! cache, so configurations shared between figures (the Table II
//! baseline appears in every sweep) are simulated exactly once per
//! process. Parallel and serial runs are bit-identical.
//!
//! Campaigns run under [`SimOptions`]: op budget, budget placement
//! (prefix vs SMARTS interval sampling) and the core-model backend
//! (`belenos_uarch::ModelKind` — cycle-level out-of-order, scalar
//! in-order, or the fast analytical bound model), so the same figures
//! can be regenerated at any speed/fidelity point and cross-validated
//! across backends, mirroring the paper's gem5-vs-VTune methodology.
//!
//! ```no_run
//! use belenos::experiment::Experiment;
//! use belenos_uarch::CoreConfig;
//!
//! let spec = belenos_workloads::by_id("ar").expect("known workload");
//! let exp = Experiment::prepare(&spec).expect("model solves");
//! let stats = exp.simulate(&CoreConfig::gem5_baseline(), 200_000);
//! println!("ar: IPC {:.2}", stats.ipc());
//! ```

pub mod campaign;
pub mod env;
pub mod experiment;
pub mod figures;
pub mod options;
pub mod report;
pub mod sweep;
pub mod trace_store;

pub use campaign::{
    Analysis, Campaign, CampaignError, CampaignReport, CampaignSpec, SpecError, WorkloadSet,
};
pub use env::EnvOverrides;
pub use experiment::{Experiment, PrepareError};
pub use options::{SimFailure, SimOptions};
pub use report::{Cell, Report, Section};

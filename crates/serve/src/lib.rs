//! `belenos serve` — a long-running simulation server.
//!
//! One process, one persistent [`Runner`]: the
//! in-memory result cache, the disk cache, and the trace store warm up
//! once and stay warm across requests, which is the whole point of
//! serving instead of forking a CLI per spec. On top of that runner the
//! server adds the three things a shared long-lived endpoint needs and
//! a one-shot CLI does not:
//!
//! * **admission control** — an op-budget ceiling per request, a
//!   bounded job queue (full → 429 with a `Retry-After` hint), and a
//!   worker pool sized independently of the simulation thread count;
//! * **in-flight dedup** — submissions with an identical spec digest
//!   share one execution (one simulation, N watchers);
//! * **cache GC** — an optional background sweep holding the disk
//!   cache and trace store under a byte budget (see
//!   [`belenos_runner::gc`]).
//!
//! The HTTP layer is hand-rolled HTTP/1.1 over `std::net` (see
//! [`http`]) for the same reason `belenos-json` exists: the toolchain
//! has no registry access, and the API surface is small enough that a
//! framework would be mostly dead weight.
//!
//! # API
//!
//! | Method & path            | Meaning                                   |
//! |--------------------------|-------------------------------------------|
//! | `POST /v1/campaigns`     | submit a campaign spec → `202` + job id   |
//! | `POST /v1/scenarios/run` | submit a scenario batch → `202` + job id  |
//! | `GET /v1/jobs/{id}`      | job state document                        |
//! | `GET /v1/jobs/{id}/report` | the bare report (byte-equal to the CLI) |
//! | `GET /v1/jobs/{id}/events` | NDJSON stream of the job's telemetry    |
//! | `GET /v1/stats`          | server counters and latency percentiles   |
//! | `GET /v1/healthz`        | liveness probe                            |
//! | `POST /v1/shutdown`      | graceful drain and exit                   |

pub mod events;
pub mod http;
pub mod jobs;
pub mod signal;
pub mod stats;

pub use events::EventRouter;
pub use jobs::{JobKind, JobManager, JobSnapshot, JobState, Reject, Submission};
pub use stats::ServeStats;

use belenos::campaign::CampaignSpec;
use belenos::env::DEFAULT_MAX_OPS;
use belenos::SimOptions;
use belenos_json::{FromJson, Json};
use belenos_runner::{gc, Runner, RunnerConfig};
use belenos_telemetry::Telemetry;
use belenos_workloads::ScenarioSpec;
use http::{read_request, respond_error, respond_json, start_ndjson, write_ndjson_line, Request};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Everything tunable about a server, with serving-friendly defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`BELENOS_SERVE_ADDR` / `--addr`).
    pub addr: String,
    /// Concurrent jobs (pool threads); each job still parallelizes
    /// internally through the runner's own workers.
    pub workers: usize,
    /// Jobs that may wait beyond the running ones; more → 429.
    pub queue_depth: usize,
    /// Per-request `options.max_ops` ceiling; `0` disables the check
    /// (and then unlimited-budget specs are admitted too).
    pub op_budget_ceiling: usize,
    /// Request body cap in bytes.
    pub max_body_bytes: usize,
    /// Simulation threads inside the runner; `0` = `BELENOS_JOBS` or
    /// the machine's parallelism.
    pub runner_threads: usize,
    /// Combined disk budget for `gc_dirs` in bytes; `0` = GC off.
    pub cache_budget_bytes: u64,
    /// Seconds between background GC sweeps.
    pub gc_interval_s: u64,
    /// Directories the GC budget covers (disk cache, trace store).
    pub gc_dirs: Vec<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 2,
            queue_depth: 32,
            op_budget_ceiling: 100_000_000,
            max_body_bytes: 1024 * 1024,
            runner_threads: 0,
            cache_budget_bytes: 0,
            gc_interval_s: 60,
            gc_dirs: Vec::new(),
        }
    }
}

struct ServerState {
    config: ServeConfig,
    addr: SocketAddr,
    manager: JobManager,
    router: Arc<EventRouter>,
    stats: Arc<ServeStats>,
    runner: Runner,
    shutdown: AtomicBool,
    draining: AtomicBool,
    /// The telemetry handle displaced by the router's callback sink,
    /// reinstalled on shutdown.
    prev_telemetry: Mutex<Option<Telemetry>>,
}

/// A bound, not-yet-running server. [`Server::run`] blocks until a
/// graceful shutdown completes.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A cloneable control handle: trigger shutdown from a signal handler
/// watcher, or pause job pickup (the deterministic seam the integration
/// tests use to pile up a queue over real sockets).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Requests a graceful drain-and-exit: stop accepting, run every
    /// accepted job to completion, finish the event streams, return.
    pub fn shutdown(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    /// Holds (`true`) or resumes (`false`) job pickup while the queue
    /// keeps accepting — lets tests (and operators) stage dedup and
    /// queue-full situations deterministically.
    pub fn pause_workers(&self, on: bool) {
        self.state.manager.pause(on);
    }
}

impl Server {
    /// Binds the listener, builds the persistent runner, and replaces
    /// the process-global telemetry handle with the event router's
    /// callback sink (the displaced handle keeps receiving every line,
    /// so `--telemetry` output is unchanged by serving).
    ///
    /// # Errors
    ///
    /// The bind error for an unusable address.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let mut runner_config = RunnerConfig::from_env();
        // Job progress goes to watchers via the event stream; the
        // server's stderr stays quiet.
        runner_config.progress = false;
        if config.runner_threads > 0 {
            runner_config.threads = Some(config.runner_threads);
        }
        let runner = runner_config.build();
        let router = Arc::new(EventRouter::new());
        let sink_router = router.clone();
        let prev =
            belenos_telemetry::install(Telemetry::to_callback(move |line| sink_router.route(line)));
        router.set_upstream(prev.clone());
        let stats = Arc::new(ServeStats::new());
        let manager = JobManager::new(
            runner.clone(),
            router.clone(),
            stats.clone(),
            config.workers,
            config.queue_depth,
            config.op_budget_ceiling,
        );
        let state = Arc::new(ServerState {
            config,
            addr,
            manager,
            router,
            stats,
            runner,
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            prev_telemetry: Mutex::new(Some(prev)),
        });
        Ok(Server { listener, state })
    }

    /// A control handle (cloneable, usable from any thread).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: self.state.clone(),
        }
    }

    /// The address the server actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until shutdown is requested, then drains: every accepted
    /// job runs to completion, event streams end, connection handlers
    /// are joined, and the pre-server telemetry handle is reinstalled.
    ///
    /// # Errors
    ///
    /// A non-transient accept error.
    pub fn run(self) -> std::io::Result<()> {
        let gc_thread = spawn_gc_sweeper(&self.state);
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.state.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = self.state.clone();
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(&state, stream)
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            handlers.retain(|h| !h.is_finished());
        }
        // Graceful drain: fence off new submissions, run out the queue
        // (unpausing first — a paused pool would strand queued jobs and
        // their watchers), then let the finished event streams unwind
        // the remaining connection handlers.
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.manager.pause(false);
        self.state.manager.drain();
        for handler in handlers {
            let _ = handler.join();
        }
        if let Some(handle) = gc_thread {
            let _ = handle.join();
        }
        if let Some(prev) = self.state.prev_telemetry.lock().unwrap().take() {
            belenos_telemetry::install(prev);
        }
        Ok(())
    }
}

/// Background GC: holds the configured directories under the combined
/// byte budget, sweeping on a fixed cadence until shutdown.
fn spawn_gc_sweeper(state: &Arc<ServerState>) -> Option<std::thread::JoinHandle<()>> {
    let budget = state.config.cache_budget_bytes;
    if budget == 0 || state.config.gc_dirs.is_empty() {
        return None;
    }
    let state = state.clone();
    Some(
        std::thread::Builder::new()
            .name("serve-gc".into())
            .spawn(move || {
                let interval = Duration::from_secs(state.config.gc_interval_s.max(1));
                loop {
                    match gc::gc_dirs(&state.config.gc_dirs, budget) {
                        Ok(outcome) => state
                            .stats
                            .note_gc_sweep(outcome.deleted_files as u64, outcome.deleted_bytes),
                        Err(e) => {
                            belenos_telemetry::global().warn(&format!("cache gc sweep failed: {e}"))
                        }
                    }
                    // Sleep in short slices so shutdown isn't held up by
                    // a long sweep interval.
                    let mut waited = Duration::ZERO;
                    while waited < interval {
                        if state.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(100));
                        waited += Duration::from_millis(100);
                    }
                }
            })
            .expect("spawn gc thread"),
    )
}

fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    // Accepted sockets must block (the listener is non-blocking), and a
    // stalled client shouldn't pin a handler thread forever.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let request = match read_request(&mut stream, state.config.max_body_bytes) {
        Ok(request) => request,
        Err(e) => {
            let _ = respond_error(&mut stream, e.status, &e.message, None, &[]);
            return;
        }
    };
    let _ = route_request(state, &mut stream, &request);
}

fn route_request(
    state: &Arc<ServerState>,
    stream: &mut TcpStream,
    request: &Request,
) -> std::io::Result<()> {
    let method = request.method.as_str();
    let path = request.path.as_str();
    match (method, path) {
        ("POST", "/v1/campaigns") => submit_campaign(state, stream, request),
        ("POST", "/v1/scenarios/run") => submit_scenarios(state, stream, request),
        ("GET", "/v1/stats") => respond_json(stream, 200, &[], &stats_document(state)),
        ("GET", "/v1/healthz") => {
            respond_json(stream, 200, &[], &Json::obj(vec![("ok", Json::Bool(true))]))
        }
        ("POST", "/v1/shutdown") => {
            state.draining.store(true, Ordering::SeqCst);
            state.shutdown.store(true, Ordering::SeqCst);
            respond_json(
                stream,
                200,
                &[],
                &Json::obj(vec![("draining", Json::Bool(true))]),
            )
        }
        _ => {
            if let Some(rest) = path.strip_prefix("/v1/jobs/") {
                if method != "GET" {
                    return respond_error(stream, 405, "jobs are read-only", None, &[]);
                }
                return job_request(state, stream, rest);
            }
            if matches!(
                path,
                "/v1/campaigns"
                    | "/v1/scenarios/run"
                    | "/v1/stats"
                    | "/v1/healthz"
                    | "/v1/shutdown"
            ) {
                return respond_error(
                    stream,
                    405,
                    &format!("method {method} not allowed for {path}"),
                    None,
                    &[],
                );
            }
            respond_error(stream, 404, &format!("no route for {path}"), None, &[])
        }
    }
}

/// Parses `{id}`, `{id}/report`, `{id}/events` after `/v1/jobs/`.
fn job_request(
    state: &Arc<ServerState>,
    stream: &mut TcpStream,
    rest: &str,
) -> std::io::Result<()> {
    let (id_text, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return respond_error(stream, 400, &format!("bad job id `{id_text}`"), None, &[]);
    };
    match tail {
        None => job_status(state, stream, id),
        Some("report") => job_report(state, stream, id),
        Some("events") => job_events(state, stream, id),
        Some(other) => respond_error(
            stream,
            404,
            &format!("no such job endpoint `{other}`"),
            None,
            &[],
        ),
    }
}

fn submit_campaign(
    state: &Arc<ServerState>,
    stream: &mut TcpStream,
    request: &Request,
) -> std::io::Result<()> {
    let Some(text) = body_text(stream, request)? else {
        return Ok(());
    };
    // `CampaignSpec::parse` is the same validate-everything entry the
    // CLI uses; its errors already name the offending field path.
    let spec = match CampaignSpec::parse(text) {
        Ok(spec) => spec,
        Err(e) => {
            state.stats.note_rejected_invalid();
            return respond_error(stream, 400, &e.to_string(), None, &[]);
        }
    };
    submit(state, stream, JobKind::Campaign(spec))
}

fn submit_scenarios(
    state: &Arc<ServerState>,
    stream: &mut TcpStream,
    request: &Request,
) -> std::io::Result<()> {
    let Some(text) = body_text(stream, request)? else {
        return Ok(());
    };
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => {
            state.stats.note_rejected_invalid();
            return respond_error(stream, 400, &e.to_string(), None, &[]);
        }
    };
    match parse_scenario_request(&doc) {
        Ok((specs, options)) => submit(state, stream, JobKind::Scenarios { specs, options }),
        Err((message, field)) => {
            state.stats.note_rejected_invalid();
            respond_error(stream, 400, &message, field, &[])
        }
    }
}

/// A submission-validation failure: the message plus the offending
/// field's name for the structured 400 body.
type FieldError = (String, Option<&'static str>);

/// Accepts `{"scenarios": [...], "options": {...}}`, a bare scenario
/// array, or a single scenario object; options default to the CLI's
/// (`DEFAULT_MAX_OPS` budget, sampling off).
fn parse_scenario_request(doc: &Json) -> Result<(Vec<ScenarioSpec>, SimOptions), FieldError> {
    let (list_json, options) = match doc.get("scenarios") {
        Some(list) => {
            let options = match doc.get("options") {
                Some(v) => {
                    SimOptions::from_json(v).map_err(|e| (e.to_string(), Some("options")))?
                }
                None => SimOptions::new(DEFAULT_MAX_OPS),
            };
            (list.clone(), options)
        }
        None => (doc.clone(), SimOptions::new(DEFAULT_MAX_OPS)),
    };
    let items: Vec<Json> = match list_json {
        Json::Arr(items) => items,
        obj @ Json::Obj(_) => vec![obj],
        _ => {
            return Err((
                "scenarios: expected a scenario object or an array of them".to_string(),
                Some("scenarios"),
            ))
        }
    };
    if items.is_empty() {
        return Err((
            "scenarios: empty scenario list".to_string(),
            Some("scenarios"),
        ));
    }
    let mut specs: Vec<ScenarioSpec> = Vec::with_capacity(items.len());
    for item in &items {
        let spec = ScenarioSpec::from_json(item).map_err(|e| (e.to_string(), Some("scenarios")))?;
        spec.validate()
            .map_err(|e| (e.to_string(), Some("scenarios")))?;
        // Same rule as the CLI's scenario loader: duplicate ids would
        // produce indistinguishable report rows.
        if specs.iter().any(|s| s.id == spec.id) {
            return Err((
                format!("duplicate scenario id `{}`", spec.id),
                Some("scenarios"),
            ));
        }
        specs.push(spec);
    }
    Ok((specs, options))
}

/// Shared submission tail: drain fence, admission, 202/400/429.
fn submit(state: &Arc<ServerState>, stream: &mut TcpStream, kind: JobKind) -> std::io::Result<()> {
    if state.draining.load(Ordering::SeqCst) {
        return respond_error(
            stream,
            503,
            "server is draining; not accepting new jobs",
            None,
            &[],
        );
    }
    match state.manager.submit(kind) {
        Ok(sub) => respond_json(
            stream,
            202,
            &[],
            &Json::obj(vec![
                ("job", Json::Num(sub.job as f64)),
                ("state", Json::Str(sub.state.as_str().to_string())),
                ("joined", Json::Bool(sub.joined)),
                ("status_url", Json::Str(format!("/v1/jobs/{}", sub.job))),
                (
                    "events_url",
                    Json::Str(format!("/v1/jobs/{}/events", sub.job)),
                ),
            ]),
        ),
        Err(Reject::Budget { message, field }) => {
            respond_error(stream, 400, &message, Some(field), &[])
        }
        Err(Reject::Busy {
            queued,
            capacity,
            retry_after_s,
        }) => respond_json(
            stream,
            429,
            &[("retry-after", retry_after_s.to_string())],
            &Json::obj(vec![
                (
                    "error",
                    Json::Str(format!(
                        "job queue is full ({queued}/{capacity}); retry after {retry_after_s}s"
                    )),
                ),
                ("queued", Json::Num(queued as f64)),
                ("capacity", Json::Num(capacity as f64)),
                ("retry_after_s", Json::Num(retry_after_s as f64)),
            ]),
        ),
    }
}

/// UTF-8 body or an error response already written (`None`).
fn body_text<'a>(stream: &mut TcpStream, request: &'a Request) -> std::io::Result<Option<&'a str>> {
    if request.body.is_empty() {
        respond_error(stream, 400, "request body required", None, &[])?;
        return Ok(None);
    }
    match std::str::from_utf8(&request.body) {
        Ok(text) => Ok(Some(text)),
        Err(_) => {
            respond_error(stream, 400, "request body is not valid UTF-8", None, &[])?;
            Ok(None)
        }
    }
}

fn job_status(state: &Arc<ServerState>, stream: &mut TcpStream, id: u64) -> std::io::Result<()> {
    let Some(snap) = state.manager.snapshot(id) else {
        return respond_error(stream, 404, &format!("no such job {id}"), None, &[]);
    };
    respond_json(stream, 200, &[], &job_document(&snap))
}

fn job_document(snap: &JobSnapshot) -> Json {
    let mut fields = vec![
        ("job", Json::Num(snap.id as f64)),
        ("kind", Json::Str(snap.kind.to_string())),
        ("name", Json::Str(snap.name.clone())),
        ("state", Json::Str(snap.state.as_str().to_string())),
        ("joined", Json::Num(snap.joined as f64)),
        ("digest", Json::Str(format!("{:016x}", snap.digest))),
    ];
    if let Some(position) = snap.queue_position {
        fields.push(("queue_position", Json::Num(position as f64)));
    }
    if let Some(wait) = snap.queue_wait_s {
        fields.push(("queue_wait_s", Json::Num(wait)));
    }
    if let Some(wall) = snap.wall_s {
        fields.push(("wall_s", Json::Num(wall)));
    }
    if let Some(error) = &snap.error {
        fields.push(("error", Json::Str(error.clone())));
    }
    if let Some(report) = &snap.report {
        fields.push(("report", report.clone()));
    }
    Json::obj(fields)
}

/// The bare report document — exactly what `belenos campaign run
/// --json` prints for the same spec, so clients can diff bytes.
fn job_report(state: &Arc<ServerState>, stream: &mut TcpStream, id: u64) -> std::io::Result<()> {
    let Some(snap) = state.manager.snapshot(id) else {
        return respond_error(stream, 404, &format!("no such job {id}"), None, &[]);
    };
    match (&snap.report, snap.state) {
        (Some(report), _) => respond_json(stream, 200, &[], report),
        (None, JobState::Failed) => respond_error(
            stream,
            409,
            snap.error.as_deref().unwrap_or("job failed"),
            None,
            &[],
        ),
        (None, state) => respond_error(
            stream,
            409,
            &format!("job {id} is {}; no report yet", state.as_str()),
            None,
            &[],
        ),
    }
}

/// NDJSON event stream: buffered backlog first, then live lines until
/// the job finishes (the stream then ends) or the client hangs up.
fn job_events(state: &Arc<ServerState>, stream: &mut TcpStream, id: u64) -> std::io::Result<()> {
    let Some(subscription) = state.router.subscribe(id) else {
        return respond_error(stream, 404, &format!("no such job {id}"), None, &[]);
    };
    // Live delivery can idle while a long simulation computes; don't
    // let the handler's read timeout semantics apply to writes.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    start_ndjson(stream)?;
    for line in &subscription.backlog {
        write_ndjson_line(stream, line)?;
    }
    if let Some(live) = subscription.live {
        // Ends when the router disconnects the watchers (job finished)
        // or the write fails (client gone).
        while let Ok(line) = live.recv() {
            write_ndjson_line(stream, &line)?;
        }
    }
    Ok(())
}

fn stats_document(state: &Arc<ServerState>) -> Json {
    let stats = &state.stats;
    let [submitted, joined, completed, failed, rejected_busy, rejected_invalid] =
        stats.job_counts();
    let [gc_sweeps, gc_files, gc_bytes] = stats.gc_counts();
    let (wait_p50, wait_p95) = stats.queue_wait_percentiles_s();
    let (wall_p50, wall_p95) = stats.job_wall_percentiles_s();
    let cache = state.runner.cache().stats();
    let lookups = cache.lookups();
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        cache.hits as f64 / lookups as f64
    };
    Json::obj(vec![
        ("uptime_s", Json::Num(stats.uptime_s())),
        ("workers", Json::Num(state.manager.workers() as f64)),
        ("queue_depth", Json::Num(state.config.queue_depth as f64)),
        ("queued", Json::Num(state.manager.queued() as f64)),
        ("running", Json::Num(state.manager.running() as f64)),
        (
            "draining",
            Json::Bool(state.draining.load(Ordering::SeqCst)),
        ),
        (
            "jobs",
            Json::obj(vec![
                ("submitted", Json::Num(submitted as f64)),
                ("joined", Json::Num(joined as f64)),
                ("completed", Json::Num(completed as f64)),
                ("failed", Json::Num(failed as f64)),
                ("rejected_queue_full", Json::Num(rejected_busy as f64)),
                ("rejected_invalid", Json::Num(rejected_invalid as f64)),
            ]),
        ),
        (
            "queue_wait_s",
            Json::obj(vec![
                ("p50", Json::Num(wait_p50)),
                ("p95", Json::Num(wait_p95)),
            ]),
        ),
        (
            "job_wall_s",
            Json::obj(vec![
                ("p50", Json::Num(wall_p50)),
                ("p95", Json::Num(wall_p95)),
            ]),
        ),
        (
            "worker_utilization",
            Json::Num(stats.worker_utilization(state.manager.workers())),
        ),
        (
            "cache",
            Json::obj(vec![
                ("hits", Json::Num(cache.hits as f64)),
                ("misses", Json::Num(cache.misses as f64)),
                ("lookups", Json::Num(lookups as f64)),
                ("hit_rate", Json::Num(hit_rate)),
                ("entries", Json::Num(state.runner.cache().len() as f64)),
            ]),
        ),
        (
            "gc",
            Json::obj(vec![
                ("sweeps", Json::Num(gc_sweeps as f64)),
                ("deleted_files", Json::Num(gc_files as f64)),
                ("deleted_bytes", Json::Num(gc_bytes as f64)),
            ]),
        ),
    ])
    .with_dist_section()
}

trait DistSection {
    fn with_dist_section(self) -> Json;
}

impl DistSection for Json {
    /// Appends a `dist` object — the job-board census of the directory
    /// named by `BELENOS_DIST_DIR` — when this server shares a host
    /// with a distributed campaign. Absent otherwise, so existing
    /// stats consumers see an unchanged document.
    fn with_dist_section(self) -> Json {
        let Ok(dir) = std::env::var("BELENOS_DIST_DIR") else {
            return self;
        };
        if dir.is_empty() {
            return self;
        }
        let board = belenos_dist::board_stats(
            std::path::Path::new(&dir),
            belenos_dist::board::DEFAULT_LEASE_TTL,
        );
        let Json::Obj(mut fields) = self else {
            return self;
        };
        fields.push((
            "dist".to_string(),
            Json::obj(vec![
                ("dir", Json::Str(dir)),
                ("open", Json::Num(board.open as f64)),
                ("claimed", Json::Num(board.claimed as f64)),
                ("stale_leases", Json::Num(board.stale as f64)),
                ("done", Json::Num(board.done as f64)),
            ]),
        ));
        Json::Obj(fields)
    }
}

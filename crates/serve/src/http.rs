//! Minimal HTTP/1.1 over `TcpStream` — just enough for the serve API.
//!
//! Hand-rolled for the same reason as `belenos-json`: no registry
//! access, so hyper/axum are out of reach. The subset is deliberate:
//! one request per connection (`Connection: close` on every response),
//! `Content-Length` bodies only (no chunked requests), and hard caps on
//! header and body size — the parser sees untrusted network bytes, so
//! every limit violation is a clean 4xx, never unbounded memory.

use belenos_json::Json;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Header section cap: request line + headers must fit in 16 KiB.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request: method, path (with any query string stripped),
/// lower-cased headers, and the raw body bytes.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path, query string removed.
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A request that could not be read; maps to one error response.
#[derive(Debug)]
pub struct HttpError {
    /// Status code to answer with.
    pub status: u16,
    /// Human-readable description (becomes the JSON `error` field).
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// Reads and parses one request from `stream`, holding the body to
/// `max_body` bytes.
///
/// # Errors
///
/// An [`HttpError`] carrying the right status: 400 for malformed
/// framing, 413 for an oversized body, 431 for an oversized header
/// section, 501 for transfer encodings we don't implement.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let split = loop {
        if let Some(i) = find_head_end(&head) {
            break i;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(431, "request header section too large"));
        }
        let n = stream
            .read(&mut buf)
            .map_err(|e| HttpError::new(400, format!("read failed: {e}")))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-request"));
        }
        head.extend_from_slice(&buf[..n]);
    };
    let (head_bytes, rest) = head.split_at(split);
    let rest = &rest[4..]; // skip the \r\n\r\n
    let head_text = std::str::from_utf8(head_bytes)
        .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::new(400, "malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(
            400,
            format!("unsupported version {version}"),
        ));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let request = Request {
        method: method.to_string(),
        path: target.split('?').next().unwrap_or(target).to_string(),
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::new(
            501,
            "chunked request bodies are not supported",
        ));
    }
    let length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::new(400, format!("bad content-length `{v}`")))?,
    };
    if length > max_body {
        return Err(HttpError::new(
            413,
            format!("body of {length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = rest.to_vec();
    if body.len() > length {
        return Err(HttpError::new(400, "body longer than content-length"));
    }
    let mut remaining = length - body.len();
    while remaining > 0 {
        let take = remaining.min(buf.len());
        let n = stream
            .read(&mut buf[..take])
            .map_err(|e| HttpError::new(400, format!("body read failed: {e}")))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-body"));
        }
        body.extend_from_slice(&buf[..n]);
        remaining -= n;
    }
    Ok(Request { body, ..request })
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete JSON response (status, extra headers, body) and
/// leaves the connection to be closed by the caller.
///
/// # Errors
///
/// The underlying socket error (the client usually just went away).
pub fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &Json,
) -> std::io::Result<()> {
    // Stream the body into a buffer first: Content-Length framing keeps
    // curl-without-flags ergonomic for the quickstart.
    let mut payload = Vec::new();
    body.pretty_to(&mut payload)?;
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        payload.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&payload)?;
    stream.flush()
}

/// Writes a structured JSON error: `{"error": ..., "field": ...?}`.
///
/// # Errors
///
/// The underlying socket error.
pub fn respond_error(
    stream: &mut TcpStream,
    status: u16,
    message: &str,
    field: Option<&str>,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut fields = vec![("error", Json::Str(message.to_string()))];
    if let Some(f) = field {
        fields.push(("field", Json::Str(f.to_string())));
    }
    respond_json(stream, status, extra_headers, &Json::obj(fields))
}

/// Starts a newline-delimited JSON stream: writes the response head and
/// returns; the caller then writes one line per event with
/// [`write_ndjson_line`] and closes the connection to end the stream.
///
/// # Errors
///
/// The underlying socket error.
pub fn start_ndjson(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\ncontent-type: application/x-ndjson\r\nconnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// Writes one event line of an NDJSON stream and flushes it, so
/// watchers see progress as it happens rather than on close.
///
/// # Errors
///
/// The underlying socket error (the watcher hung up).
pub fn write_ndjson_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_head_end_locates_blank_line() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }
}

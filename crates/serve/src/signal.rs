//! Termination signals (`SIGTERM`/`SIGINT`) as an `AtomicBool`.
//!
//! The serve CLI wants a graceful drain on `kill -TERM`, and the
//! workspace has no `libc` crate to lean on. `signal(2)` is in every
//! libc the toolchain links anyway, so a two-line `extern "C"`
//! declaration is all the FFI needed. The handler body does the only
//! thing an async-signal-safe handler may: one atomic store. The serve
//! accept loop polls the flag.

use std::sync::atomic::AtomicBool;
use std::sync::{Arc, OnceLock};

static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a relaxed-or-stronger atomic store only.
        if let Some(flag) = super::FLAG.get() {
            flag.store(true, Ordering::SeqCst);
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// Installs the handlers (first call only) and returns the shared flag;
/// it flips to `true` when the process receives SIGTERM or SIGINT. On
/// non-Unix targets the flag simply never flips.
pub fn termination_flag() -> Arc<AtomicBool> {
    FLAG.get_or_init(|| {
        #[cfg(unix)]
        imp::install();
        Arc::new(AtomicBool::new(false))
    })
    .clone()
}

//! Server-lifetime counters and latency samples for `GET /v1/stats`.
//!
//! Everything here is owned by the serving layer: job acceptance
//! outcomes, queue-wait and job-wall latency distributions, GC sweep
//! totals. Simulation-side numbers (cache hit rate, entries) come
//! straight from the runner's [`belenos_runner::CacheStats`] at
//! snapshot time instead of being mirrored here.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Latency samples kept per series; oldest are discarded past this, so
/// the percentiles describe recent behavior on a long-lived server.
const MAX_SAMPLES: usize = 4096;

#[derive(Default)]
struct Samples {
    queue_wait_s: Vec<f64>,
    job_wall_s: Vec<f64>,
    /// Total worker-seconds spent executing jobs (for utilization).
    busy_s: f64,
}

/// Monotonic counters plus bounded latency reservoirs.
pub struct ServeStats {
    started: Instant,
    submitted: AtomicU64,
    joined: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected_busy: AtomicU64,
    rejected_invalid: AtomicU64,
    gc_sweeps: AtomicU64,
    gc_deleted_files: AtomicU64,
    gc_deleted_bytes: AtomicU64,
    samples: Mutex<Samples>,
}

impl ServeStats {
    /// Fresh stats; uptime is measured from this call.
    pub fn new() -> ServeStats {
        ServeStats {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            joined: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            rejected_invalid: AtomicU64::new(0),
            gc_sweeps: AtomicU64::new(0),
            gc_deleted_files: AtomicU64::new(0),
            gc_deleted_bytes: AtomicU64::new(0),
            samples: Mutex::new(Samples::default()),
        }
    }

    /// Seconds since the server came up.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// A new job was accepted and enqueued.
    pub fn note_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// A submission joined an in-flight duplicate.
    pub fn note_joined(&self) {
        self.joined.fetch_add(1, Ordering::Relaxed);
    }

    /// A job finished with a report.
    pub fn note_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// A job finished with an error.
    pub fn note_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A submission bounced off the full queue.
    pub fn note_rejected_busy(&self) {
        self.rejected_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// A submission violated an admission limit.
    pub fn note_rejected_invalid(&self) {
        self.rejected_invalid.fetch_add(1, Ordering::Relaxed);
    }

    /// One background GC sweep ran, deleting the given totals.
    pub fn note_gc_sweep(&self, deleted_files: u64, deleted_bytes: u64) {
        self.gc_sweeps.fetch_add(1, Ordering::Relaxed);
        self.gc_deleted_files
            .fetch_add(deleted_files, Ordering::Relaxed);
        self.gc_deleted_bytes
            .fetch_add(deleted_bytes, Ordering::Relaxed);
    }

    /// Records how long a job waited for a worker.
    pub fn record_queue_wait_s(&self, wait_s: f64) {
        push_sample(&mut self.samples.lock().unwrap().queue_wait_s, wait_s);
    }

    /// Records a finished job's execution wall time.
    pub fn record_job_wall_s(&self, wall_s: f64) {
        let mut samples = self.samples.lock().unwrap();
        samples.busy_s += wall_s;
        push_sample(&mut samples.job_wall_s, wall_s);
    }

    /// Counter values in `/v1/stats` order: submitted, joined,
    /// completed, failed, rejected_queue_full, rejected_invalid.
    pub fn job_counts(&self) -> [u64; 6] {
        [
            self.submitted.load(Ordering::Relaxed),
            self.joined.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
            self.rejected_busy.load(Ordering::Relaxed),
            self.rejected_invalid.load(Ordering::Relaxed),
        ]
    }

    /// GC totals: sweeps, deleted files, deleted bytes.
    pub fn gc_counts(&self) -> [u64; 3] {
        [
            self.gc_sweeps.load(Ordering::Relaxed),
            self.gc_deleted_files.load(Ordering::Relaxed),
            self.gc_deleted_bytes.load(Ordering::Relaxed),
        ]
    }

    /// (p50, p95) of recent queue waits, seconds; zeros before any job.
    pub fn queue_wait_percentiles_s(&self) -> (f64, f64) {
        percentiles(&self.samples.lock().unwrap().queue_wait_s)
    }

    /// (p50, p95) of recent job wall times, seconds.
    pub fn job_wall_percentiles_s(&self) -> (f64, f64) {
        percentiles(&self.samples.lock().unwrap().job_wall_s)
    }

    /// Median job wall time (the retry-hint basis); zero before any job.
    pub fn job_wall_p50_s(&self) -> f64 {
        self.job_wall_percentiles_s().0
    }

    /// Fraction of worker capacity spent executing jobs since start.
    pub fn worker_utilization(&self, workers: usize) -> f64 {
        let busy = self.samples.lock().unwrap().busy_s;
        let capacity = self.uptime_s() * workers.max(1) as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            (busy / capacity).min(1.0)
        }
    }
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats::new()
    }
}

fn push_sample(series: &mut Vec<f64>, value: f64) {
    if series.len() >= MAX_SAMPLES {
        series.remove(0);
    }
    series.push(value);
}

fn percentiles(series: &[f64]) -> (f64, f64) {
    if series.is_empty() {
        return (0.0, 0.0);
    }
    let mut sorted = series.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    // Nearest-rank: the smallest value with at least p of the mass at
    // or below it.
    let at = |p: f64| {
        let rank = (sorted.len() as f64 * p).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    };
    (at(0.50), at(0.95))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_a_simple_series() {
        let stats = ServeStats::new();
        for w in 1..=100 {
            stats.record_job_wall_s(w as f64);
        }
        let (p50, p95) = stats.job_wall_percentiles_s();
        assert_eq!(p50, 50.0);
        assert_eq!(p95, 95.0);
    }

    #[test]
    fn counters_land_in_their_slots() {
        let stats = ServeStats::new();
        stats.note_submitted();
        stats.note_submitted();
        stats.note_joined();
        stats.note_failed();
        stats.note_rejected_busy();
        assert_eq!(stats.job_counts(), [2, 1, 0, 1, 1, 0]);
        stats.note_gc_sweep(3, 4096);
        assert_eq!(stats.gc_counts(), [1, 3, 4096]);
    }
}

//! Per-job telemetry event routing.
//!
//! The simulation stack already narrates everything that happens —
//! spans, counters, gauges, progress — through the process-global
//! telemetry handle. A server with concurrent jobs needs those events
//! *demultiplexed*: `GET /v1/jobs/{id}/events` must stream exactly the
//! subtree of the job it names. [`EventRouter`] does this without
//! touching the emitting layers: the server installs a callback sink
//! (`Telemetry::to_callback`) whose lines all land in
//! [`EventRouter::route`], which
//!
//! 1. tees every line to the sink that was installed before the server
//!    started (`--telemetry` keeps working unchanged, via
//!    `Telemetry::emit_raw`), and
//! 2. follows the span parent chain from each job's root `serve_job`
//!    span (opened by the job worker with the job id as a field) to tag
//!    descendant events with their job, buffering them and fanning them
//!    out to any subscribed watchers.
//!
//! Lock discipline: `route` runs under the telemetry sink's line lock
//! and takes only the router's own lock plus the *upstream* sink's lock
//! — never the new global sink again — so there is no cycle.

use belenos_json::Json;
use belenos_telemetry::Telemetry;
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Mutex;

/// Per-job buffers hold at most this many lines; older watchers that
/// connect late still see the whole story for any sane job, while a
/// pathological one can't hold the server's memory hostage.
const MAX_BUFFERED_LINES: usize = 10_000;

/// The span name job workers open as each job's subtree root.
pub const JOB_ROOT_SPAN: &str = "serve_job";

#[derive(Default)]
struct JobEvents {
    lines: Vec<String>,
    watchers: Vec<Sender<String>>,
    dropped: usize,
    closed: bool,
}

#[derive(Default)]
struct RouterInner {
    /// Open span id → owning job, seeded by `serve_job` roots and grown
    /// along `span_open.parent` edges; entries retire on `span_close`.
    span_to_job: HashMap<u64, u64>,
    jobs: HashMap<u64, JobEvents>,
}

/// Demultiplexes the global telemetry stream into per-job event feeds.
pub struct EventRouter {
    inner: Mutex<RouterInner>,
    upstream: Mutex<Telemetry>,
}

/// A subscription to one job's event feed: everything buffered so far,
/// plus a live receiver (`None` when the job already finished — the
/// backlog is the whole story).
pub struct Subscription {
    /// Lines emitted before the subscription.
    pub backlog: Vec<String>,
    /// Live lines from now on; dropped (disconnecting the receiver)
    /// when the job finishes.
    pub live: Option<Receiver<String>>,
}

impl EventRouter {
    /// A router with no upstream sink (installed separately, because the
    /// router must exist before the callback sink replaces the global
    /// handle that becomes its upstream).
    pub fn new() -> EventRouter {
        EventRouter {
            inner: Mutex::new(RouterInner::default()),
            upstream: Mutex::new(Telemetry::disabled()),
        }
    }

    /// Sets the sink every line is teed to (the pre-server global).
    pub fn set_upstream(&self, upstream: Telemetry) {
        *self.upstream.lock().unwrap() = upstream;
    }

    /// Creates the event feed for a job; called at submission so events
    /// (and subscribers) can never race the feed's existence.
    pub fn open_job(&self, job: u64) {
        self.inner
            .lock()
            .unwrap()
            .jobs
            .insert(job, JobEvents::default());
    }

    /// Marks a job's feed complete: delivers one final synthetic
    /// `job_state` line, then disconnects the watchers so their streams
    /// end. The backlog stays readable for late subscribers until
    /// [`EventRouter::evict_job`].
    pub fn finish_job(&self, job: u64, state: &str) {
        let line = Json::obj(vec![
            ("ev", Json::Str("job_state".into())),
            ("job", Json::Num(job as f64)),
            ("state", Json::Str(state.to_string())),
        ])
        .render();
        let mut inner = self.inner.lock().unwrap();
        if let Some(feed) = inner.jobs.get_mut(&job) {
            push_line(feed, line);
            feed.closed = true;
            feed.watchers.clear();
        }
    }

    /// Drops a finished job's buffered feed (record eviction).
    pub fn evict_job(&self, job: u64) {
        self.inner.lock().unwrap().jobs.remove(&job);
    }

    /// Subscribes to a job's feed; `None` for unknown jobs.
    pub fn subscribe(&self, job: u64) -> Option<Subscription> {
        let mut inner = self.inner.lock().unwrap();
        let feed = inner.jobs.get_mut(&job)?;
        let backlog = feed.lines.clone();
        let live = if feed.closed {
            None
        } else {
            let (tx, rx) = std::sync::mpsc::channel();
            feed.watchers.push(tx);
            Some(rx)
        };
        Some(Subscription { backlog, live })
    }

    /// The callback-sink entry point: one rendered JSONL event line.
    pub fn route(&self, line: &str) {
        self.upstream.lock().unwrap().emit_raw(line);
        let Ok(event) = Json::parse(line) else { return };
        let num = |key: &str| event.get(key).and_then(Json::as_f64).map(|n| n as u64);
        let mut inner = self.inner.lock().unwrap();
        let job = match event.get("ev").and_then(Json::as_str) {
            Some("span_open") => {
                let (Some(id), Some(parent)) = (num("id"), num("parent")) else {
                    return;
                };
                let job = if event.get("name").and_then(Json::as_str) == Some(JOB_ROOT_SPAN) {
                    num("job")
                } else {
                    inner.span_to_job.get(&parent).copied()
                };
                if let Some(job) = job {
                    inner.span_to_job.insert(id, job);
                }
                job
            }
            Some("span_close") => num("id").and_then(|id| inner.span_to_job.remove(&id)),
            // counter / gauge / progress carry the owning span.
            Some(_) => num("span").and_then(|span| inner.span_to_job.get(&span).copied()),
            None => None,
        };
        if let Some(job) = job {
            if let Some(feed) = inner.jobs.get_mut(&job) {
                push_line(feed, line.to_string());
            }
        }
    }
}

impl Default for EventRouter {
    fn default() -> Self {
        EventRouter::new()
    }
}

fn push_line(feed: &mut JobEvents, line: String) {
    if feed.lines.len() >= MAX_BUFFERED_LINES {
        feed.dropped += 1;
    } else {
        feed.lines.push(line.clone());
    }
    feed.watchers.retain(|w| w.send(line.clone()).is_ok());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_line(id: u64, parent: u64, name: &str, job: Option<u64>) -> String {
        let mut fields = vec![
            ("ev", Json::Str("span_open".into())),
            ("id", Json::Num(id as f64)),
            ("parent", Json::Num(parent as f64)),
            ("name", Json::Str(name.to_string())),
        ];
        if let Some(job) = job {
            fields.push(("job", Json::Num(job as f64)));
        }
        Json::obj(fields).render()
    }

    #[test]
    fn routes_a_job_subtree_and_ignores_other_events() {
        let router = EventRouter::new();
        router.open_job(7);
        router.route(&open_line(1, 0, JOB_ROOT_SPAN, Some(7)));
        router.route(&open_line(2, 1, "campaign", None));
        router.route(r#"{"ev":"counter","name":"cache_hits","value":1,"span":2}"#);
        // A root span of some unrelated work: not routed anywhere.
        router.route(&open_line(9, 0, "batch", None));
        router.route(r#"{"ev":"counter","name":"noise","value":1,"span":9}"#);
        let sub = router.subscribe(7).unwrap();
        assert_eq!(sub.backlog.len(), 3);
        assert!(sub.backlog[2].contains("cache_hits"));
        assert!(sub.live.is_some());
        assert!(router.subscribe(8).is_none());
    }

    #[test]
    fn live_watchers_get_lines_then_disconnect_on_finish() {
        let router = EventRouter::new();
        router.open_job(3);
        router.route(&open_line(1, 0, JOB_ROOT_SPAN, Some(3)));
        let sub = router.subscribe(3).unwrap();
        let live = sub.live.unwrap();
        router.route(r#"{"ev":"progress","msg":"working","span":1}"#);
        assert!(live.recv().unwrap().contains("working"));
        router.finish_job(3, "completed");
        // The synthetic terminal line arrives, then the channel closes.
        assert!(live.recv().unwrap().contains("job_state"));
        assert!(live.recv().is_err());
        // Late subscribers get the backlog and no live channel.
        let late = router.subscribe(3).unwrap();
        assert!(late.live.is_none());
        assert_eq!(late.backlog.len(), 3);
    }

    #[test]
    fn tees_every_line_upstream() {
        let (upstream, buf) = Telemetry::to_buffer();
        let router = EventRouter::new();
        router.set_upstream(upstream);
        router.route(r#"{"ev":"warn","msg":"not job-scoped"}"#);
        assert_eq!(buf.lines().len(), 1);
    }
}

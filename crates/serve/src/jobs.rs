//! Job lifecycle: admission control, in-flight dedup, execution.
//!
//! A *job* is one accepted submission — a whole campaign spec or a
//! scenario batch — executed on the server's persistent
//! [`WorkerPool`]. The manager enforces the admission contract at the
//! front door:
//!
//! * **op-budget ceiling** — a spec asking for more detailed ops per
//!   simulation than the server allows (or for an unlimited budget) is
//!   rejected with a structured error naming `options.max_ops`, before
//!   any model is solved;
//! * **bounded queue** — when the pool's queue is at capacity the
//!   submission is rejected as *busy* with a retry hint, never buffered
//!   without limit;
//! * **in-flight dedup** — a submission whose spec digest matches a
//!   queued or running job *joins* it: one simulation, N watchers, which
//!   is what makes the shared content-addressed cache a service-level
//!   feature rather than a per-process one.
//!
//! Completed jobs keep their report (and their event feed) available
//! for polling until evicted by the retention cap.

use crate::events::{EventRouter, JOB_ROOT_SPAN};
use crate::stats::ServeStats;
use belenos::campaign::CampaignSpec;
use belenos::figures::{scenario_row, SCENARIO_COLUMNS};
use belenos::report::Report;
use belenos::Experiment;
use belenos::SimOptions;
use belenos_json::{Json, ToJson};
use belenos_runner::{run_caught, JobSpec, RunPlan, Runner, WorkerPool};
use belenos_uarch::{CoreConfig, Fnv64};
use belenos_workloads::ScenarioSpec;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Completed/failed records retained for polling before eviction.
const MAX_RETAINED_JOBS: usize = 512;

/// What a job executes.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// A full campaign spec (the `POST /v1/campaigns` body).
    Campaign(CampaignSpec),
    /// A scenario batch (the `POST /v1/scenarios/run` body).
    Scenarios {
        /// The validated scenario definitions.
        specs: Vec<ScenarioSpec>,
        /// Options applied to every scenario run.
        options: SimOptions,
    },
}

impl JobKind {
    /// The options governing per-simulation cost (the admission knob).
    pub fn options(&self) -> &SimOptions {
        match self {
            JobKind::Campaign(spec) => &spec.options,
            JobKind::Scenarios { options, .. } => options,
        }
    }

    /// Short kind label for status documents and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Campaign(_) => "campaign",
            JobKind::Scenarios { .. } => "scenario_run",
        }
    }

    /// Human-readable name (campaign name, or the scenario id list).
    pub fn name(&self) -> String {
        match self {
            JobKind::Campaign(spec) => spec.name.clone(),
            JobKind::Scenarios { specs, .. } => specs
                .iter()
                .map(|s| s.id.as_str())
                .collect::<Vec<_>>()
                .join(","),
        }
    }

    /// Stable content digest: two submissions digest equal iff they
    /// request the same work. Built from the canonical JSON rendering
    /// (the same normal form the specs round-trip through), tagged by
    /// kind so a campaign can never collide with a scenario batch.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        match self {
            JobKind::Campaign(spec) => {
                h.write_str("campaign");
                h.write_str(&ToJson::to_json(spec).render());
            }
            JobKind::Scenarios { specs, options } => {
                h.write_str("scenarios");
                let doc = Json::obj(vec![
                    (
                        "scenarios",
                        Json::Arr(specs.iter().map(ToJson::to_json).collect()),
                    ),
                    ("options", options.to_json()),
                ]);
                h.write_str(&doc.render());
            }
        }
        h.finish()
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished with a report.
    Completed,
    /// Finished with an error.
    Failed,
}

impl JobState {
    /// The lower-case wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
        }
    }

    /// True once the job can no longer change.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Completed | JobState::Failed)
    }
}

struct JobRecord {
    digest: u64,
    kind: &'static str,
    name: String,
    state: JobState,
    /// Submissions that joined this job beyond the first.
    joined: u64,
    submitted: Instant,
    queue_wait_s: Option<f64>,
    wall_s: Option<f64>,
    error: Option<String>,
    /// The full report document (`CampaignReport`/`Report` JSON).
    report: Option<Json>,
}

#[derive(Default)]
struct ManagerInner {
    jobs: HashMap<u64, JobRecord>,
    /// Spec digest → job id, for queued/running jobs only.
    inflight: HashMap<u64, u64>,
    /// Submission order, for queue position and eviction.
    order: Vec<u64>,
    next_id: u64,
}

/// A point-in-time copy of one job's record, for the HTTP layer.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The job id.
    pub id: u64,
    /// `campaign` or `scenario_run`.
    pub kind: &'static str,
    /// Campaign name or scenario id list.
    pub name: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Submissions that joined this job beyond the first.
    pub joined: u64,
    /// Queued jobs ahead of this one (while queued).
    pub queue_position: Option<usize>,
    /// Seconds spent waiting for a worker (once running).
    pub queue_wait_s: Option<f64>,
    /// Execution wall time (once finished).
    pub wall_s: Option<f64>,
    /// Failure message (state `failed`).
    pub error: Option<String>,
    /// The report document (state `completed`).
    pub report: Option<Json>,
    /// The spec digest (dedup identity), for observability.
    pub digest: u64,
}

/// Accepted submission: which job, and whether it joined an existing one.
#[derive(Debug, Clone, Copy)]
pub struct Submission {
    /// The job id to poll.
    pub job: u64,
    /// True when this submission deduplicated onto an in-flight job.
    pub joined: bool,
    /// The job's state at submission time.
    pub state: JobState,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone)]
pub enum Reject {
    /// The queue is full; retry after the hinted delay.
    Busy {
        /// Tasks waiting (== capacity).
        queued: usize,
        /// The queue capacity.
        capacity: usize,
        /// Suggested client back-off, seconds.
        retry_after_s: u64,
    },
    /// The spec violates an admission limit.
    Budget {
        /// Human-readable rejection naming the limit.
        message: String,
        /// The offending spec field.
        field: &'static str,
    },
}

/// Owns the worker pool and every job record.
pub struct JobManager {
    pool: WorkerPool,
    runner: Runner,
    router: Arc<EventRouter>,
    stats: Arc<ServeStats>,
    inner: Arc<Mutex<ManagerInner>>,
    op_budget_ceiling: usize,
}

impl JobManager {
    /// A manager executing jobs on `workers` pool threads with a queue
    /// of `queue_depth`, simulating through `runner` (whose own thread
    /// count governs intra-job parallelism).
    pub fn new(
        runner: Runner,
        router: Arc<EventRouter>,
        stats: Arc<ServeStats>,
        workers: usize,
        queue_depth: usize,
        op_budget_ceiling: usize,
    ) -> JobManager {
        JobManager {
            pool: WorkerPool::new("serve-job", workers, queue_depth),
            runner,
            router,
            stats,
            inner: Arc::new(Mutex::new(ManagerInner::default())),
            op_budget_ceiling,
        }
    }

    /// Jobs waiting for a worker.
    pub fn queued(&self) -> usize {
        self.pool.queued()
    }

    /// Jobs executing right now.
    pub fn running(&self) -> usize {
        self.pool.running()
    }

    /// The pool's worker count.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Holds (`true`) or resumes (`false`) task pickup — the
    /// deterministic test seam for exercising dedup and queue-full
    /// paths over real sockets, and an operational drain valve.
    pub fn pause(&self, on: bool) {
        self.pool.pause(on);
    }

    /// Blocks until every accepted job has finished (graceful-shutdown
    /// drain; new submissions should be fenced off by the caller first).
    pub fn drain(&self) {
        self.pool.drain();
    }

    /// Admits a submission: budget check, in-flight dedup, bounded
    /// enqueue.
    ///
    /// # Errors
    ///
    /// [`Reject::Budget`] for an over-ceiling (or unlimited) op budget,
    /// [`Reject::Busy`] when the queue is at capacity.
    pub fn submit(&self, kind: JobKind) -> Result<Submission, Reject> {
        let tele = belenos_telemetry::global();
        if self.op_budget_ceiling > 0 {
            let max_ops = kind.options().max_ops;
            if max_ops == 0 || max_ops > self.op_budget_ceiling {
                self.stats.note_rejected_invalid();
                tele.counter("serve_jobs_rejected", 1, &[("reason", "budget".into())]);
                let asked = if max_ops == 0 {
                    "an unlimited op budget".to_string()
                } else {
                    format!("max_ops {max_ops}")
                };
                return Err(Reject::Budget {
                    message: format!(
                        "options.max_ops: {asked} exceeds this server's per-request \
                         ceiling of {} ops",
                        self.op_budget_ceiling
                    ),
                    field: "options.max_ops",
                });
            }
        }
        let digest = kind.digest();
        let mut inner = self.inner.lock().unwrap();
        if let Some(&job) = inner.inflight.get(&digest) {
            let record = inner.jobs.get_mut(&job).expect("inflight job has a record");
            record.joined += 1;
            let state = record.state;
            self.stats.note_joined();
            tele.counter("serve_jobs_joined", 1, &[("job", job.into())]);
            return Ok(Submission {
                job,
                joined: true,
                state,
            });
        }
        inner.next_id += 1;
        let job = inner.next_id;
        // Open the event feed before the job can possibly run, so no
        // event or subscriber can race its existence.
        self.router.open_job(job);
        inner.jobs.insert(
            job,
            JobRecord {
                digest,
                kind: kind.label(),
                name: kind.name(),
                state: JobState::Queued,
                joined: 0,
                submitted: Instant::now(),
                queue_wait_s: None,
                wall_s: None,
                error: None,
                report: None,
            },
        );
        inner.inflight.insert(digest, job);
        inner.order.push(job);
        evict_old_jobs(&mut inner, &self.router);
        drop(inner);

        let task = {
            let inner = self.inner.clone();
            let runner = self.runner.clone();
            let router = self.router.clone();
            let stats = self.stats.clone();
            move || execute_job(job, &kind, &inner, &runner, &router, &stats)
        };
        if let Err(full) = self.pool.try_submit(task) {
            // Roll the record back: the submission was never accepted.
            let mut inner = self.inner.lock().unwrap();
            inner.jobs.remove(&job);
            inner.inflight.remove(&digest);
            inner.order.retain(|&id| id != job);
            self.router.evict_job(job);
            self.stats.note_rejected_busy();
            tele.counter("serve_jobs_rejected", 1, &[("reason", "queue_full".into())]);
            return Err(Reject::Busy {
                queued: full.queued,
                capacity: full.capacity,
                retry_after_s: self.retry_after_s(full.queued),
            });
        }
        self.stats.note_submitted();
        tele.counter("serve_jobs_submitted", 1, &[("job", job.into())]);
        Ok(Submission {
            job,
            joined: false,
            state: JobState::Queued,
        })
    }

    /// A copy of one job's current record.
    pub fn snapshot(&self, job: u64) -> Option<JobSnapshot> {
        let inner = self.inner.lock().unwrap();
        let record = inner.jobs.get(&job)?;
        let queue_position = (record.state == JobState::Queued).then(|| {
            inner
                .order
                .iter()
                .take_while(|&&id| id != job)
                .filter(|id| {
                    inner
                        .jobs
                        .get(id)
                        .is_some_and(|r| r.state == JobState::Queued)
                })
                .count()
        });
        Some(JobSnapshot {
            id: job,
            kind: record.kind,
            name: record.name.clone(),
            state: record.state,
            joined: record.joined,
            queue_position,
            queue_wait_s: record.queue_wait_s,
            wall_s: record.wall_s,
            error: record.error.clone(),
            report: record.report.clone(),
            digest: record.digest,
        })
    }
}

/// Suggested client back-off when the queue is full: the median job
/// wall extrapolated over the queue, clamped to something a client
/// would actually honor.
impl JobManager {
    fn retry_after_s(&self, queued: usize) -> u64 {
        let p50 = self.stats.job_wall_p50_s().max(1.0);
        let workers = self.pool.workers().max(1);
        let estimate = (p50 * (queued + 1) as f64 / workers as f64).ceil() as u64;
        estimate.clamp(1, 600)
    }
}

fn evict_old_jobs(inner: &mut ManagerInner, router: &EventRouter) {
    while inner.order.len() > MAX_RETAINED_JOBS {
        // Evict the oldest *finished* job; never a live one.
        let Some(pos) = inner
            .order
            .iter()
            .position(|id| inner.jobs.get(id).is_none_or(|r| r.state.is_terminal()))
        else {
            return;
        };
        let id = inner.order.remove(pos);
        inner.jobs.remove(&id);
        router.evict_job(id);
    }
}

/// Runs one job on a pool worker: telemetry subtree root, execution,
/// record + feed finalization. Panics anywhere inside are contained to
/// a `failed` state.
fn execute_job(
    job: u64,
    kind: &JobKind,
    inner: &Mutex<ManagerInner>,
    runner: &Runner,
    router: &EventRouter,
    stats: &Arc<ServeStats>,
) {
    let queue_wait_s = {
        let mut guard = inner.lock().unwrap();
        let Some(record) = guard.jobs.get_mut(&job) else {
            return; // Evicted before running (shutdown edge); nothing to do.
        };
        record.state = JobState::Running;
        let wait = record.submitted.elapsed().as_secs_f64();
        record.queue_wait_s = Some(wait);
        wait
    };
    stats.record_queue_wait_s(queue_wait_s);
    let tele = belenos_telemetry::global();
    let started = Instant::now();
    let result = {
        // The job's subtree root: the router keys every descendant span,
        // counter and progress event off this span's `job` field.
        let _root = tele.span_at(
            0,
            JOB_ROOT_SPAN,
            &[
                ("job", job.into()),
                ("kind", kind.label().into()),
                ("name", kind.name().into()),
                ("queue_wait_s", queue_wait_s.into()),
            ],
        );
        run_caught(&format!("job {job} panicked"), || run_kind(kind, runner))
            .and_then(|outcome| outcome)
    };
    let wall_s = started.elapsed().as_secs_f64();
    stats.record_job_wall_s(wall_s);
    let state = {
        let mut guard = inner.lock().unwrap();
        let digest = guard.jobs.get(&job).map(|r| r.digest);
        // From here the job is no longer in flight: a later identical
        // submission is a *new* job (it will hit the result cache).
        if let Some(digest) = digest {
            if guard.inflight.get(&digest) == Some(&job) {
                guard.inflight.remove(&digest);
            }
        }
        let Some(record) = guard.jobs.get_mut(&job) else {
            return;
        };
        record.wall_s = Some(wall_s);
        match result {
            Ok(report) => {
                record.state = JobState::Completed;
                record.report = Some(report);
            }
            Err(message) => {
                record.state = JobState::Failed;
                record.error = Some(message);
            }
        }
        record.state
    };
    match state {
        JobState::Completed => stats.note_completed(),
        _ => stats.note_failed(),
    }
    tele.counter(
        if state == JobState::Completed {
            "serve_jobs_completed"
        } else {
            "serve_jobs_failed"
        },
        1,
        &[("job", job.into())],
    );
    router.finish_job(job, state.as_str());
}

/// Executes the work itself, returning the report document.
fn run_kind(kind: &JobKind, runner: &Runner) -> Result<Json, String> {
    match kind {
        JobKind::Campaign(spec) => {
            let campaign = spec.prepare().map_err(|e| e.to_string())?;
            let mut report = campaign.run(runner);
            // The server always has a telemetry sink installed (the event
            // router), which makes `Campaign::run` attach a rollup section.
            // Job reports promise byte-equivalence with the CLI's
            // `campaign run --json` in its default telemetry-off form, so
            // the rollup is dropped before rendering.
            report.rollup = None;
            Ok(ToJson::to_json(&report))
        }
        JobKind::Scenarios { specs, options } => {
            let exps: Vec<Experiment> = specs
                .iter()
                .map(|s| Experiment::prepare(s).map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?;
            let mut plan = RunPlan::new();
            for w in 0..exps.len() {
                plan.push(
                    JobSpec::new(
                        w,
                        "baseline",
                        options.configure(CoreConfig::gem5_baseline()),
                        options.max_ops,
                    )
                    .with_sampling(options.sampling.clone()),
                );
            }
            let results = runner.run(&exps, &plan);
            let mut report = Report::new("scenario_run");
            let section = report.section("Scenario runs (gem5 baseline config)", &SCENARIO_COLUMNS);
            let mut failures = Vec::new();
            for (exp, r) in exps.iter().zip(&results) {
                match &r.error {
                    Some(e) => failures.push(format!("{}: {e}", r.workload)),
                    None => {
                        section.row(scenario_row(exp, &r.stats));
                    }
                }
            }
            if !failures.is_empty() {
                return Err(format!(
                    "{} scenario simulation(s) failed: {}",
                    failures.len(),
                    failures.join("; ")
                ));
            }
            Ok(ToJson::to_json(&report))
        }
    }
}

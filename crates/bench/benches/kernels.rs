//! Timing benches over the linear-algebra and FE kernels (the paper's
//! hotspot functions: SpMV, assembly, factorization, triangular solves).

use belenos_bench::timing::bench;
use belenos_fem::material::LinearElastic;
use belenos_fem::mesh::Mesh;
use belenos_fem::model::FeModel;
use belenos_sparse::solver::ldl::LdlFactor;
use belenos_sparse::solver::skyline::SkylineMatrix;
use belenos_sparse::{CooMatrix, CsrMatrix};
use std::hint::black_box;

fn lap3d(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n * n * n, n * n * n);
    let idx = |i: usize, j: usize, k: usize| i * n * n + j * n + k;
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let p = idx(i, j, k);
                coo.push(p, p, 6.0);
                if i > 0 {
                    coo.push(p, idx(i - 1, j, k), -1.0);
                }
                if i + 1 < n {
                    coo.push(p, idx(i + 1, j, k), -1.0);
                }
                if j > 0 {
                    coo.push(p, idx(i, j - 1, k), -1.0);
                }
                if j + 1 < n {
                    coo.push(p, idx(i, j + 1, k), -1.0);
                }
                if k > 0 {
                    coo.push(p, idx(i, j, k - 1), -1.0);
                }
                if k + 1 < n {
                    coo.push(p, idx(i, j, k + 1), -1.0);
                }
            }
        }
    }
    coo.to_csr()
}

fn main() {
    let a = lap3d(16);
    let x = vec![1.0; a.ncols()];
    let mut y = vec![0.0; a.nrows()];
    bench("spmv_lap3d_16", 20, || {
        a.spmv_into(black_box(&x), black_box(&mut y)).unwrap()
    });

    let a8 = lap3d(8);
    bench("ldl_factorize_lap3d_8", 10, || {
        LdlFactor::new(black_box(&a8)).unwrap()
    });
    let f = LdlFactor::new(&a8).unwrap();
    let rhs = vec![1.0; a8.nrows()];
    bench("ldl_solve_lap3d_8", 20, || {
        f.solve(black_box(&rhs)).unwrap()
    });

    let a6 = lap3d(6);
    bench("skyline_factorize_lap3d_6", 10, || {
        SkylineMatrix::from_csr(black_box(&a6))
            .unwrap()
            .factorize()
            .unwrap()
    });

    bench("fe_assemble_solve_box4", 10, || {
        let mesh = Mesh::box_hex(4, 4, 4, 1.0, 1.0, 1.0);
        let mut m = FeModel::solid(mesh, Box::new(LinearElastic::new(1e3, 0.3)));
        m.fix_face("z0");
        m.prescribe_face("z1", 2, 0.02);
        black_box(m.solve().unwrap());
    });
}

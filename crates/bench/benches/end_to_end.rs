//! Criterion bench over the full experiment pipeline for one small
//! workload (solve + trace + simulate), the unit of every paper figure.

use belenos::experiment::Experiment;
use belenos_uarch::CoreConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let spec = belenos_workloads::by_id("pd").expect("pd workload");
    c.bench_function("experiment_prepare_pd", |b| {
        b.iter(|| black_box(Experiment::prepare(black_box(&spec)).unwrap()))
    });
    let exp = Experiment::prepare(&spec).unwrap();
    c.bench_function("experiment_simulate_pd_100k", |b| {
        b.iter(|| black_box(exp.simulate(&CoreConfig::gem5_baseline(), 100_000)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);

//! Timing bench over the full experiment pipeline for one small workload
//! (solve + trace + simulate), the unit of every paper figure — plus the
//! batch engine running a sweep grid in parallel vs serially.

use belenos::experiment::Experiment;
use belenos_bench::timing::bench;
use belenos_runner::{JobSpec, RunPlan, Runner};
use belenos_uarch::CoreConfig;
use std::hint::black_box;

fn main() {
    let spec = belenos_workloads::by_id("pd").expect("pd workload");
    bench("experiment_prepare_pd", 10, || {
        black_box(Experiment::prepare(black_box(&spec)).unwrap())
    });

    let exp = Experiment::prepare(&spec).unwrap();
    bench("experiment_simulate_pd_100k", 10, || {
        black_box(exp.simulate(&CoreConfig::gem5_baseline(), 100_000))
    });

    // The runner over a 12-point frequency grid: serial vs all-cores.
    let exps = [Experiment::prepare(&spec).unwrap()];
    let mut plan = RunPlan::new();
    for i in 0..12 {
        let f = 1.0 + i as f64 * 0.25;
        plan.push(JobSpec::new(
            0,
            format!("{f}GHz"),
            CoreConfig::gem5_baseline().with_frequency(f),
            100_000,
        ));
    }
    bench("runner_12pt_sweep_serial", 5, || {
        black_box(Runner::isolated(1).run(&exps, &plan))
    });
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    bench(&format!("runner_12pt_sweep_{threads}threads"), 5, || {
        black_box(Runner::isolated(threads).run(&exps, &plan))
    });
}

//! Criterion benches over the microarchitecture simulator: op throughput
//! of the O3 engine, cache and branch-predictor hot paths.

use belenos_trace::expand::Expander;
use belenos_trace::{KernelCall, PhaseLog};
use belenos_uarch::{CoreConfig, O3Core};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_o3_throughput(c: &mut Criterion) {
    let mut log = PhaseLog::new();
    for _ in 0..20 {
        log.record(KernelCall::Dot { n: 1000 });
        log.record(KernelCall::Axpy { n: 1000 });
    }
    c.bench_function("o3_blas_stream_280k_ops", |b| {
        b.iter(|| {
            let mut core = O3Core::new(CoreConfig::gem5_baseline());
            black_box(core.run(Expander::new(black_box(&log))))
        })
    });
}

fn bench_o3_spin(c: &mut Criterion) {
    let mut log = PhaseLog::new();
    log.record(KernelCall::OmpBarrier { spin_iters: 5000 });
    c.bench_function("o3_pause_serialized_20k_ops", |b| {
        b.iter(|| {
            let mut core = O3Core::new(CoreConfig::gem5_baseline());
            black_box(core.run(Expander::new(black_box(&log))))
        })
    });
}

fn bench_expander(c: &mut Criterion) {
    let mut log = PhaseLog::new();
    for _ in 0..50 {
        log.record(KernelCall::Dot { n: 2000 });
    }
    c.bench_function("trace_expand_600k_ops", |b| {
        b.iter(|| black_box(Expander::new(black_box(&log)).count()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_o3_throughput, bench_o3_spin, bench_expander
}
criterion_main!(benches);

//! Timing benches over the microarchitecture simulator: op throughput of
//! the O3 engine, cache and branch-predictor hot paths.

use belenos_bench::timing::bench;
use belenos_trace::expand::Expander;
use belenos_trace::{KernelCall, PhaseLog};
use belenos_uarch::{CoreConfig, O3Core};
use std::hint::black_box;

fn main() {
    let mut blas = PhaseLog::new();
    for _ in 0..20 {
        blas.record(KernelCall::Dot { n: 1000 });
        blas.record(KernelCall::Axpy { n: 1000 });
    }
    bench("o3_blas_stream_280k_ops", 10, || {
        let mut core = O3Core::new(CoreConfig::gem5_baseline());
        black_box(core.run(Expander::new(black_box(&blas))))
    });

    let mut spin = PhaseLog::new();
    spin.record(KernelCall::OmpBarrier { spin_iters: 5000 });
    bench("o3_pause_serialized_20k_ops", 10, || {
        let mut core = O3Core::new(CoreConfig::gem5_baseline());
        black_box(core.run(Expander::new(black_box(&spin))))
    });

    let mut dots = PhaseLog::new();
    for _ in 0..50 {
        dots.record(KernelCall::Dot { n: 2000 });
    }
    bench("trace_expand_600k_ops", 10, || {
        black_box(Expander::new(black_box(&dots)).count())
    });
}

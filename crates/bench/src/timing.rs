//! A minimal, dependency-free timing harness for the `benches/` targets.
//!
//! The container this repo builds in has no access to external crates,
//! so the benches use plain `main` functions (`harness = false`) driving
//! this module instead of Criterion: warm up, run a fixed number of
//! timed iterations, report min/median/mean.

use std::time::{Duration, Instant};

/// Runs `f` for `iters` timed iterations (after 2 warmup runs) and
/// prints a `name: min .. median .. mean` line.
pub fn bench<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) {
    assert!(iters > 0, "need at least one iteration");
    for _ in 0..2 {
        std::hint::black_box(f());
    }
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        samples.push(start.elapsed());
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} min {:>12} | median {:>12} | mean {:>12} ({iters} iters)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure() {
        let mut calls = 0usize;
        bench("noop", 3, || calls += 1);
        assert_eq!(calls, 3 + 2); // timed + warmup
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}

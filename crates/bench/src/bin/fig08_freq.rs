//! Regenerates Fig. 8: frequency sensitivity (execution time + IPC).
use belenos_bench::{max_ops, prepare_or_die, sampling};

fn main() {
    let exps = prepare_or_die(&belenos_workloads::gem5_set());
    println!(
        "{}",
        belenos::figures::fig08_frequency(&exps, max_ops(), &sampling())
    );
}

//! Regenerates Fig. 11: load/store-queue sensitivity.
use belenos_bench::{max_ops, prepare_or_die, sampling};

fn main() {
    let exps = prepare_or_die(&belenos_workloads::gem5_set());
    println!(
        "{}",
        belenos::figures::fig11_lsq(&exps, max_ops(), &sampling())
    );
}

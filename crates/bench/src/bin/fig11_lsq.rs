//! Regenerates Fig. 11. See `all_figures` for the full campaign.
use belenos_bench::{options, prepare_or_die, render};

fn main() {
    let exps = prepare_or_die(&belenos_workloads::gem5_set());
    println!("{}", render(belenos::figures::fig11_lsq(&exps, &options())));
}

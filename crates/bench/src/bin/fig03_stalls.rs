//! Regenerates Fig. 3: FE/BE stall breakdown for the VTune set.
use belenos_bench::{max_ops, prepare_or_die, sampling};

fn main() {
    let exps = prepare_or_die(&belenos_workloads::vtune_set());
    println!(
        "{}",
        belenos::figures::fig03_stalls(&exps, max_ops(), &sampling())
    );
}

//! Regenerates Fig. 3. See `all_figures` for the full campaign.
use belenos_bench::{options, prepare_or_die, render};

fn main() {
    let exps = prepare_or_die(&belenos_workloads::vtune_set());
    println!(
        "{}",
        render(belenos::figures::fig03_stalls(&exps, &options()))
    );
}

//! Regenerates Table II (baseline gem5 configuration).
fn main() {
    println!("{}", belenos::figures::table2());
}

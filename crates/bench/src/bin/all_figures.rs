//! Regenerates every table and figure in one run, sharing solved models
//! and simulated points: the whole grid executes through the
//! `belenos-runner` batch engine, so baseline configurations shared
//! between figures are simulated exactly once (see the cache summary
//! printed at the end). A failed figure prints an error marker and the
//! campaign continues with the remaining figures.
use belenos_bench::{options, prepare_or_die, print_run_summary, render};

fn main() {
    let opts = options();
    println!("{}", belenos::figures::table1());
    println!("{}", belenos::figures::table2());

    let vtune = prepare_or_die(&belenos_workloads::vtune_set());
    println!("{}", render(belenos::figures::fig02_topdown(&vtune, &opts)));
    println!("{}", render(belenos::figures::fig03_stalls(&vtune, &opts)));
    println!("{}", belenos::figures::fig06_exec_time(&vtune));
    println!(
        "{}",
        render(belenos::figures::memory_profiles(&vtune, &opts))
    );

    let cat = prepare_or_die(&belenos_workloads::catalog());
    println!("{}", render(belenos::figures::fig04_hotspots(&cat, &opts)));
    println!("{}", belenos::figures::fig05_scaling(&cat));

    let gem5 = prepare_or_die(&belenos_workloads::gem5_set());
    println!("{}", render(belenos::figures::fig07_pipeline(&gem5, &opts)));
    println!(
        "{}",
        render(belenos::figures::fig08_frequency(&gem5, &opts))
    );
    println!("{}", render(belenos::figures::fig09_cache(&gem5, &opts)));
    println!("{}", render(belenos::figures::fig10_width(&gem5, &opts)));
    println!("{}", render(belenos::figures::fig11_lsq(&gem5, &opts)));
    println!("{}", render(belenos::figures::fig12_branch(&gem5, &opts)));

    print_run_summary();
}

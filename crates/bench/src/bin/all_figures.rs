//! Regenerates every table and figure in one run, sharing solved models
//! and simulated points: the whole grid executes through the
//! `belenos-runner` batch engine, so baseline configurations shared
//! between figures are simulated exactly once (see the cache summary
//! printed at the end).
use belenos_bench::{max_ops, prepare_or_die, print_run_summary, sampling};

fn main() {
    let ops = max_ops();
    let smp = sampling();
    println!("{}", belenos::figures::table1());
    println!("{}", belenos::figures::table2());

    let vtune = prepare_or_die(&belenos_workloads::vtune_set());
    println!("{}", belenos::figures::fig02_topdown(&vtune, ops, &smp));
    println!("{}", belenos::figures::fig03_stalls(&vtune, ops, &smp));
    println!("{}", belenos::figures::fig06_exec_time(&vtune));
    println!("{}", belenos::figures::memory_profiles(&vtune, ops, &smp));

    let cat = prepare_or_die(&belenos_workloads::catalog());
    println!("{}", belenos::figures::fig04_hotspots(&cat, ops, &smp));
    println!("{}", belenos::figures::fig05_scaling(&cat));

    let gem5 = prepare_or_die(&belenos_workloads::gem5_set());
    println!("{}", belenos::figures::fig07_pipeline(&gem5, ops, &smp));
    println!("{}", belenos::figures::fig08_frequency(&gem5, ops, &smp));
    println!("{}", belenos::figures::fig09_cache(&gem5, ops, &smp));
    println!("{}", belenos::figures::fig10_width(&gem5, ops, &smp));
    println!("{}", belenos::figures::fig11_lsq(&gem5, ops, &smp));
    println!("{}", belenos::figures::fig12_branch(&gem5, ops, &smp));

    print_run_summary();
}

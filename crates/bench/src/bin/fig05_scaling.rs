//! Regenerates Fig. 5: simulation time vs model size over the catalog.
use belenos_bench::prepare_or_die;

fn main() {
    let exps = prepare_or_die(&belenos_workloads::catalog());
    println!("{}", belenos::figures::fig05_scaling(&exps));
}

//! Regenerates Fig. 9: L1/L2 cache sensitivity.
use belenos_bench::{max_ops, prepare_or_die, sampling};

fn main() {
    let exps = prepare_or_die(&belenos_workloads::gem5_set());
    println!(
        "{}",
        belenos::figures::fig09_cache(&exps, max_ops(), &sampling())
    );
}

//! The single `belenos` CLI: every paper table/figure, the declarative
//! campaign driver, and the agreement/digest/sampling/ablation
//! harnesses as subcommands. See `belenos help`.
fn main() {
    std::process::exit(belenos_bench::cli::main(std::env::args().skip(1).collect()));
}

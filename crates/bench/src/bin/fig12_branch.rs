//! Regenerates Fig. 12. See `all_figures` for the full campaign.
use belenos_bench::{options, prepare_or_die, render};

fn main() {
    let exps = prepare_or_die(&belenos_workloads::gem5_set());
    println!(
        "{}",
        render(belenos::figures::fig12_branch(&exps, &options()))
    );
}

//! Regenerates Fig. 6: execution time by model group (BP / FL / MA).
use belenos_bench::prepare_or_die;

fn main() {
    let exps = prepare_or_die(&belenos_workloads::vtune_set());
    println!("{}", belenos::figures::fig06_exec_time(&exps));
}

//! Regenerates Table I (dataset models breakdown).
fn main() {
    println!("{}", belenos::figures::table1());
}

//! Ablation from the paper's §IV-C4 text: "We also experimented with
//! increasing reorder buffer and issue queue sizes, but observed less
//! than 4% improvement in execution time across workloads."
use belenos::sweep;
use belenos_bench::{options, prepare_or_die};

fn main() {
    let exps = prepare_or_die(&belenos_workloads::gem5_set());
    let pts = match sweep::rob_iq(&exps, &[(224, 128), (448, 256)], &options()) {
        Ok(pts) => pts,
        Err(e) => {
            eprintln!("ablation failed: {e}");
            std::process::exit(1);
        }
    };
    let diffs = sweep::percent_diff_vs(&pts, "224_128");
    println!("ROB/IQ ablation: execution-time change going 224/128 -> 448/256");
    println!("(paper: < 4% improvement across workloads)\n");
    for (wl, _, d) in diffs {
        println!("  {wl:>4}: {d:+.2}%");
    }
}

//! Accuracy/speed harness for SMARTS-style interval sampling: for a few
//! small catalog workloads, compares the full-trace simulation against
//! (a) sampled runs at a 10x reduced op budget and (b) the historical
//! prefix truncation at the same budget, reporting IPC error, wall time
//! and where the measurement windows actually land in the trace.
//!
//! Knobs: `BELENOS_ACCURACY_WORKLOADS` (comma-separated ids, default
//! `pd,co`), `BELENOS_SAMPLING` (interval count for the sampled column,
//! default the library's recommended count), `BELENOS_MODEL` (backend).
//! Emits `BENCH_sampling_accuracy.json` (wall time + IPC per
//! workload/mode) for the perf-trajectory record.

use belenos::experiment::{sampling_windows, Experiment};
use belenos_bench::{emit_bench_json, BenchRecord, DEFAULT_SAMPLING_INTERVALS};
use belenos_profiler::report::{fmt, Table};
use belenos_runner::run_caught;
use belenos_uarch::{CoreConfig, SamplingConfig, SimStats};
use std::time::Instant;

fn timed(f: impl FnOnce() -> SimStats) -> (SimStats, f64) {
    let t0 = Instant::now();
    let stats = f();
    (stats, t0.elapsed().as_secs_f64())
}

fn pct_err(est: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        0.0
    } else {
        (est - reference) / reference * 100.0
    }
}

fn main() {
    let ids = std::env::var("BELENOS_ACCURACY_WORKLOADS").unwrap_or_else(|_| "pd,co".into());
    let intervals = match belenos_bench::sampling() {
        s if s.is_off() => DEFAULT_SAMPLING_INTERVALS,
        s => s.intervals,
    };
    let cfg = CoreConfig::gem5_baseline().with_model(belenos_bench::model());

    let mut t = Table::new(&[
        "Model",
        "Trace ops",
        "Budget",
        "Full IPC",
        "Sampled IPC",
        "err%",
        "Prefix IPC",
        "err%",
        "Full (s)",
        "Sampled (s)",
        "Speedup",
    ]);
    let mut records = Vec::new();
    for id in ids.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let spec = match belenos_workloads::by_id(id) {
            Some(s) => s,
            None => {
                eprintln!("unknown workload id `{id}`, skipping");
                continue;
            }
        };
        let exp = Experiment::prepare(&spec).unwrap_or_else(|e| panic!("prepare {id}: {e}"));
        let total = exp.total_trace_ops();
        let budget = (total as usize / 10).max(1);

        // A wedged simulation (stall-limit panic) surfaces as an error
        // line for this workload; the harness moves on to the next one.
        let smp = SamplingConfig::smarts(intervals);
        let outcome = run_caught(&format!("workload {id}"), || {
            let (full, full_s) = timed(|| exp.simulate(&cfg, 0));
            let (sampled, sampled_s) = timed(|| exp.simulate_sampled(&cfg, budget, &smp));
            let (prefix, _) = timed(|| exp.simulate(&cfg, budget));
            (full, full_s, sampled, sampled_s, prefix)
        });
        let (full, full_s, sampled, sampled_s, prefix) = match outcome {
            Ok(v) => v,
            Err(e) => {
                eprintln!("SIMULATION FAILED: {e}");
                continue;
            }
        };

        let windows = sampling_windows(total, budget as u64, intervals);
        let (last_start, last_len) = *windows.last().expect("non-empty");
        eprintln!(
            "{id}: {} windows of {} ops; first at {:.1}%, last ends at {:.1}% of the trace",
            windows.len(),
            last_len,
            windows[0].0 as f64 / total as f64 * 100.0,
            (last_start + last_len) as f64 / total as f64 * 100.0,
        );

        t.row(vec![
            id.to_string(),
            total.to_string(),
            budget.to_string(),
            fmt(full.ipc(), 4),
            fmt(sampled.ipc(), 4),
            fmt(pct_err(sampled.ipc(), full.ipc()), 2),
            fmt(prefix.ipc(), 4),
            fmt(pct_err(prefix.ipc(), full.ipc()), 2),
            fmt(full_s, 3),
            fmt(sampled_s, 3),
            fmt(full_s / sampled_s.max(1e-9), 2),
        ]);
        records.push(BenchRecord {
            workload: id.to_string(),
            backend: format!("{}-full", cfg.model),
            wall_s: full_s,
            ipc: full.ipc(),
        });
        records.push(BenchRecord {
            workload: id.to_string(),
            backend: format!("{}-sampled", cfg.model),
            wall_s: sampled_s,
            ipc: sampled.ipc(),
        });
    }
    println!(
        "Sampling accuracy at a 10x reduced op budget ({intervals} SMARTS intervals)\n\n{}",
        t.render()
    );
    emit_bench_json("sampling_accuracy", &records);
}

//! Regenerates Fig. 7: pipeline-stage breakdowns for the gem5 set.
use belenos_bench::{max_ops, prepare_or_die, sampling};

fn main() {
    let exps = prepare_or_die(&belenos_workloads::gem5_set());
    println!(
        "{}",
        belenos::figures::fig07_pipeline(&exps, max_ops(), &sampling())
    );
}

//! Regenerates Fig. 4. See `all_figures` for the full campaign.
use belenos_bench::{options, prepare_or_die, render};

fn main() {
    let exps = prepare_or_die(&belenos_workloads::catalog());
    println!(
        "{}",
        render(belenos::figures::fig04_hotspots(&exps, &options()))
    );
}

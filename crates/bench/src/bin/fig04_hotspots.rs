//! Regenerates Fig. 4: hotspot function-category prevalence.
use belenos_bench::{max_ops, prepare_or_die, sampling};

fn main() {
    let exps = prepare_or_die(&belenos_workloads::catalog());
    println!(
        "{}",
        belenos::figures::fig04_hotspots(&exps, max_ops(), &sampling())
    );
}

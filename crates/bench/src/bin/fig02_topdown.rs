//! Regenerates Fig. 2: top-down pipeline breakdown for the VTune set.
use belenos_bench::{max_ops, prepare_or_die, sampling};

fn main() {
    let exps = prepare_or_die(&belenos_workloads::vtune_set());
    println!(
        "{}",
        belenos::figures::fig02_topdown(&exps, max_ops(), &sampling())
    );
}

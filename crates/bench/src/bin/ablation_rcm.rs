//! Ablation of the fill-reducing ordering (DESIGN.md §6): how much does
//! RCM matter for factorization fill and bandwidth on an anatomically
//! shuffled mesh? This is the cache-locality lever behind the paper's
//! recommendation that solvers be reordering-aware.
use belenos_fem::assembly::build_pattern;
use belenos_fem::mesh::Mesh;
use belenos_sparse::reorder::rcm;
use belenos_sparse::solver::ldl::SymbolicLdl;
use belenos_sparse::{CooMatrix, CsrMatrix};

fn laplacian_like(pattern: &belenos_sparse::CsrPattern) -> CsrMatrix {
    let n = pattern.nrows();
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        let row = pattern.row(r);
        coo.push(r, r, row.len() as f64 + 1.0);
        for &c in row {
            if c as usize != r {
                coo.push(r, c as usize, -1.0);
            }
        }
    }
    coo.to_csr()
}

fn main() {
    println!("RCM reordering ablation (shuffled anatomical numbering)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10}",
        "mesh", "bw (orig)", "bw (rcm)", "fill(orig)", "fill(rcm)"
    );
    for (label, nx) in [("box4", 4usize), ("box6", 6), ("box8", 8)] {
        let mut mesh = Mesh::box_hex(nx, nx, nx, 1.0, 1.0, 1.0);
        mesh.shuffle_nodes(99);
        let pattern = build_pattern(&mesh, 1);
        let a = laplacian_like(&pattern);
        let bw0 = a.pattern().bandwidth();
        let sym0 = SymbolicLdl::analyze(&a).expect("spd");
        let p = rcm(a.pattern());
        let b = p.apply_matrix(&a).expect("square");
        let bw1 = b.pattern().bandwidth();
        let sym1 = SymbolicLdl::analyze(&b).expect("spd");
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>10}",
            label,
            bw0,
            bw1,
            sym0.l_nnz(),
            sym1.l_nnz()
        );
    }
    println!("\nLower bandwidth/fill = better cache locality in factor sweeps.");
}

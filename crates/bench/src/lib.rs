//! # belenos-bench
//!
//! The benchmark harness: one binary per paper table/figure (run with
//! `cargo run -p belenos-bench --release --bin <name>`), plus timing
//! benches over the computational kernels and the simulator itself
//! (`cargo bench -p belenos-bench`).
//!
//! All figure binaries execute their simulation grids through the
//! `belenos-runner` batch engine. Four environment variables control a
//! campaign (documented in the top-level README):
//!
//! * `BELENOS_MAX_OPS` — micro-op budget per simulation (default 1M);
//! * `BELENOS_JOBS` — runner worker threads (default: all cores);
//! * `BELENOS_SAMPLING` — how the budget is placed over the trace:
//!   unset/`off` = prefix truncation, `on` = SMARTS sampling with the
//!   default interval count, `N` = SMARTS sampling with `N` intervals;
//! * `BELENOS_MODEL` — core-model backend: `o3` (default, cycle-level
//!   out-of-order), `inorder` (scalar in-order) or `analytic` (bound
//!   model, ≥50x faster).
//!
//! Perf-tracking binaries additionally write machine-readable
//! `BENCH_<name>.json` records (wall time + IPC per workload/backend)
//! via [`emit_bench_json`], so the performance trajectory is tracked
//! across PRs.

use belenos::experiment::{prepare_all, Experiment};
use belenos::options::{SimFailure, SimOptions};
use belenos_uarch::{ModelKind, SamplingConfig};
use belenos_workloads::WorkloadSpec;

pub mod timing;

/// Default SMARTS interval count for `BELENOS_SAMPLING=on`. Few large
/// intervals alias with solver phase structure; ~a hundred or more
/// converge tightly (see `SamplingConfig::smarts`).
pub const DEFAULT_SAMPLING_INTERVALS: usize = 128;

/// Micro-op budget per simulation, from `BELENOS_MAX_OPS` (default 1M).
pub fn max_ops() -> usize {
    std::env::var("BELENOS_MAX_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Trace-sampling strategy from `BELENOS_SAMPLING` (default off).
///
/// * unset, empty, `off` or `0` — prefix truncation (historical mode);
/// * `on` — SMARTS sampling with [`DEFAULT_SAMPLING_INTERVALS`];
/// * `N` — SMARTS sampling with `N` intervals.
pub fn sampling() -> SamplingConfig {
    match std::env::var("BELENOS_SAMPLING") {
        Ok(v) => {
            let v = v.trim();
            if v.is_empty() || v.eq_ignore_ascii_case("off") {
                SamplingConfig::off()
            } else if v.eq_ignore_ascii_case("on") {
                SamplingConfig::smarts(DEFAULT_SAMPLING_INTERVALS)
            } else {
                match v.parse::<usize>() {
                    Ok(n) => SamplingConfig::smarts(n),
                    Err(_) => {
                        eprintln!("BELENOS_SAMPLING={v} not understood; sampling off");
                        SamplingConfig::off()
                    }
                }
            }
        }
        Err(_) => SamplingConfig::off(),
    }
}

/// Core-model backend from `BELENOS_MODEL` (default `o3`).
pub fn model() -> ModelKind {
    ModelKind::from_env()
}

/// The full campaign options from the environment: `BELENOS_MAX_OPS` +
/// `BELENOS_SAMPLING` + `BELENOS_MODEL`.
pub fn options() -> SimOptions {
    SimOptions::new(max_ops())
        .with_sampling(sampling())
        .with_model(model())
}

/// Prepares workloads, printing progress, and panics with a clear message
/// naming the failing workload (the harness cannot proceed without it).
pub fn prepare_or_die(specs: &[WorkloadSpec]) -> Vec<Experiment> {
    eprintln!("solving {} workload model(s)...", specs.len());
    prepare_all(specs).unwrap_or_else(|e| panic!("workload preparation failed: {e}"))
}

/// Renders a figure result for printing: the figure text on success, a
/// clearly marked failure line otherwise. A wedged simulation point
/// therefore surfaces in the output without killing the binary (or the
/// remaining figures of an `all_figures` campaign).
pub fn render(result: Result<String, SimFailure>) -> String {
    match result {
        Ok(text) => text,
        Err(e) => {
            eprintln!("FIGURE FAILED: {e}");
            format!("FIGURE FAILED: {e}")
        }
    }
}

/// Prints the process-lifetime runner-cache summary to stderr; figure
/// binaries call this last so shared-baseline reuse is visible.
pub fn print_run_summary() {
    eprintln!("{}", belenos_runner::process_summary());
}

/// One machine-readable benchmark record: how long one workload took
/// under one backend, and the IPC it reported.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Workload id.
    pub workload: String,
    /// Core-model backend label (`o3`/`inorder`/`analytic`), or another
    /// mode label for non-backend benches (e.g. `sampled`, `prefix`).
    pub backend: String,
    /// Wall-clock seconds of the simulation.
    pub wall_s: f64,
    /// Reported instructions per cycle.
    pub ipc: f64,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes bench records as a small self-describing JSON document.
pub fn bench_json(name: &str, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(name)));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"backend\": \"{}\", \"wall_s\": {:.6}, \"ipc\": {:.6}}}{}\n",
            json_escape(&r.workload),
            json_escape(&r.backend),
            r.wall_s,
            r.ipc,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `BENCH_<name>.json` (into `BELENOS_BENCH_DIR`, default the
/// current directory) so CI and later PRs can track the perf trajectory;
/// returns the path written. Failures are reported on stderr and
/// swallowed — metrics files must never break a bench run.
pub fn emit_bench_json(name: &str, records: &[BenchRecord]) -> std::path::PathBuf {
    let dir = std::env::var("BELENOS_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    if let Err(e) = std::fs::write(&path, bench_json(name, records)) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_shape() {
        let records = vec![
            BenchRecord {
                workload: "pd".into(),
                backend: "o3".into(),
                wall_s: 1.25,
                ipc: 0.91,
            },
            BenchRecord {
                workload: "co".into(),
                backend: "analytic".into(),
                wall_s: 0.02,
                ipc: 1.10,
            },
        ];
        let text = bench_json("model_agreement", &records);
        assert!(text.contains("\"bench\": \"model_agreement\""));
        assert!(text.contains("\"workload\": \"pd\""));
        assert!(text.contains("\"backend\": \"analytic\""));
        assert!(!text.contains("},\n  ]"), "no trailing comma: {text}");
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\tx"), "tab\\u0009x");
    }

    #[test]
    fn render_passes_success_through() {
        assert_eq!(render(Ok("table".into())), "table");
        let e = SimFailure {
            workload: "pd".into(),
            label: "x".into(),
            message: "wedged".into(),
        };
        assert!(render(Err(e)).contains("FIGURE FAILED"));
    }
}

//! # belenos-bench
//!
//! The benchmark harness: one binary per paper table/figure (run with
//! `cargo run -p belenos-bench --release --bin <name>`), plus Criterion
//! benches over the computational kernels and the simulator itself.
//!
//! The `BELENOS_MAX_OPS` environment variable caps the number of micro-ops
//! simulated per run (default 1M): raise it for higher-fidelity numbers,
//! lower it for quick smoke runs.

use belenos::experiment::{prepare_all, Experiment};
use belenos_workloads::WorkloadSpec;

/// Micro-op budget per simulation, from `BELENOS_MAX_OPS` (default 1M).
pub fn max_ops() -> usize {
    std::env::var("BELENOS_MAX_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Prepares workloads, printing progress, and panics with a clear message
/// if any model fails to solve (the harness cannot proceed without it).
pub fn prepare_or_die(specs: &[WorkloadSpec]) -> Vec<Experiment> {
    eprintln!("solving {} workload model(s)...", specs.len());
    prepare_all(specs).unwrap_or_else(|e| panic!("workload preparation failed: {e}"))
}

//! # belenos-bench
//!
//! The benchmark harness behind the single `belenos` CLI
//! (`cargo run -p belenos-bench --release --bin belenos -- <subcommand>`),
//! plus timing benches over the computational kernels and the simulator
//! itself (`cargo bench -p belenos-bench`).
//!
//! The CLI ([`cli`]) replaces the old one-binary-per-figure layout:
//! every paper table/figure, the campaign driver, the cross-backend
//! agreement table, the digest capture and the accuracy/ablation
//! harnesses are subcommands sharing one environment/flag layer
//! (`belenos::env::EnvOverrides` — the only place `BELENOS_MAX_OPS` /
//! `BELENOS_SAMPLING` / `BELENOS_MODEL` / `BELENOS_JOBS` are read, with
//! CLI flags layered on top).
//!
//! Perf-tracking subcommands additionally write machine-readable
//! `BENCH_<name>.json` records (wall time + IPC per workload/backend)
//! via [`emit_bench_json`], so the performance trajectory is tracked
//! across PRs.

use belenos::experiment::{prepare_all, Experiment};
use belenos_workloads::ScenarioSpec;

pub mod cli;
pub mod timing;

/// Prepares scenarios, printing progress, and panics with a clear message
/// naming the failing scenario (the harness cannot proceed without it).
pub fn prepare_or_die(specs: &[ScenarioSpec]) -> Vec<Experiment> {
    eprintln!("solving {} workload model(s)...", specs.len());
    prepare_all(specs).unwrap_or_else(|e| panic!("workload preparation failed: {e}"))
}

/// Prints the process-lifetime runner-cache summary to stderr; campaign
/// commands call this last so shared-baseline reuse is visible.
pub fn print_run_summary() {
    eprintln!("{}", belenos_runner::process_summary());
}

/// One machine-readable benchmark record: how long one workload took
/// under one backend, and the IPC it reported.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Workload id.
    pub workload: String,
    /// Core-model backend label (`o3`/`inorder`/`analytic`), or another
    /// mode label for non-backend benches (e.g. `sampled`, `prefix`).
    pub backend: String,
    /// Wall-clock seconds of the simulation.
    pub wall_s: f64,
    /// Reported instructions per cycle.
    pub ipc: f64,
}

impl belenos_json::ToJson for BenchRecord {
    fn to_json(&self) -> belenos_json::Json {
        belenos_json::Json::obj(vec![
            ("workload", belenos_json::Json::Str(self.workload.clone())),
            ("backend", belenos_json::Json::Str(self.backend.clone())),
            ("wall_s", belenos_json::Json::Num(self.wall_s)),
            ("ipc", belenos_json::Json::Num(self.ipc)),
        ])
    }
}

/// Serializes bench records as a small self-describing JSON document.
pub fn bench_json(name: &str, records: &[BenchRecord]) -> String {
    use belenos_json::{Json, ToJson};
    Json::obj(vec![
        ("bench", Json::Str(name.to_string())),
        (
            "records",
            Json::Arr(records.iter().map(ToJson::to_json).collect()),
        ),
    ])
    .pretty()
}

/// Writes `BENCH_<name>.json` (into `BELENOS_BENCH_DIR`, default the
/// current directory) so CI and later PRs can track the perf trajectory;
/// returns the path written. Failures are reported on stderr and
/// swallowed — metrics files must never break a bench run.
pub fn emit_bench_json(name: &str, records: &[BenchRecord]) -> std::path::PathBuf {
    let dir = std::env::var("BELENOS_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    if let Err(e) = std::fs::write(&path, bench_json(name, records)) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_shape() {
        let records = vec![
            BenchRecord {
                workload: "pd".into(),
                backend: "o3".into(),
                wall_s: 1.25,
                ipc: 0.91,
            },
            BenchRecord {
                workload: "co".into(),
                backend: "analytic".into(),
                wall_s: 0.02,
                ipc: 1.10,
            },
        ];
        let text = bench_json("model_agreement", &records);
        assert!(text.contains("\"bench\": \"model_agreement\""));
        assert!(text.contains("\"workload\": \"pd\""));
        assert!(text.contains("\"backend\": \"analytic\""));
        // The document must parse back cleanly.
        let v = belenos_json::Json::parse(&text).expect("valid JSON");
        assert_eq!(v.get("records").unwrap().as_arr().unwrap().len(), 2);
    }
}

//! # belenos-bench
//!
//! The benchmark harness: one binary per paper table/figure (run with
//! `cargo run -p belenos-bench --release --bin <name>`), plus timing
//! benches over the computational kernels and the simulator itself
//! (`cargo bench -p belenos-bench`).
//!
//! All figure binaries execute their simulation grids through the
//! `belenos-runner` batch engine. Three environment variables control a
//! campaign (documented in the top-level README):
//!
//! * `BELENOS_MAX_OPS` — micro-op budget per simulation (default 1M);
//! * `BELENOS_JOBS` — runner worker threads (default: all cores);
//! * `BELENOS_SAMPLING` — how the budget is placed over the trace:
//!   unset/`off` = prefix truncation, `on` = SMARTS sampling with the
//!   default interval count, `N` = SMARTS sampling with `N` intervals.

use belenos::experiment::{prepare_all, Experiment};
use belenos_uarch::SamplingConfig;
use belenos_workloads::WorkloadSpec;

pub mod timing;

/// Default SMARTS interval count for `BELENOS_SAMPLING=on`. Few large
/// intervals alias with solver phase structure; ~a hundred or more
/// converge tightly (see `SamplingConfig::smarts`).
pub const DEFAULT_SAMPLING_INTERVALS: usize = 128;

/// Micro-op budget per simulation, from `BELENOS_MAX_OPS` (default 1M).
pub fn max_ops() -> usize {
    std::env::var("BELENOS_MAX_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Trace-sampling strategy from `BELENOS_SAMPLING` (default off).
///
/// * unset, empty, `off` or `0` — prefix truncation (historical mode);
/// * `on` — SMARTS sampling with [`DEFAULT_SAMPLING_INTERVALS`];
/// * `N` — SMARTS sampling with `N` intervals.
pub fn sampling() -> SamplingConfig {
    match std::env::var("BELENOS_SAMPLING") {
        Ok(v) => {
            let v = v.trim();
            if v.is_empty() || v.eq_ignore_ascii_case("off") {
                SamplingConfig::off()
            } else if v.eq_ignore_ascii_case("on") {
                SamplingConfig::smarts(DEFAULT_SAMPLING_INTERVALS)
            } else {
                match v.parse::<usize>() {
                    Ok(n) => SamplingConfig::smarts(n),
                    Err(_) => {
                        eprintln!("BELENOS_SAMPLING={v} not understood; sampling off");
                        SamplingConfig::off()
                    }
                }
            }
        }
        Err(_) => SamplingConfig::off(),
    }
}

/// Prepares workloads, printing progress, and panics with a clear message
/// naming the failing workload (the harness cannot proceed without it).
pub fn prepare_or_die(specs: &[WorkloadSpec]) -> Vec<Experiment> {
    eprintln!("solving {} workload model(s)...", specs.len());
    prepare_all(specs).unwrap_or_else(|e| panic!("workload preparation failed: {e}"))
}

/// Prints the process-lifetime runner-cache summary to stderr; figure
/// binaries call this last so shared-baseline reuse is visible.
pub fn print_run_summary() {
    eprintln!("{}", belenos_runner::process_summary());
}

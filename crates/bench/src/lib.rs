//! # belenos-bench
//!
//! The benchmark harness: one binary per paper table/figure (run with
//! `cargo run -p belenos-bench --release --bin <name>`), plus timing
//! benches over the computational kernels and the simulator itself
//! (`cargo bench -p belenos-bench`).
//!
//! All figure binaries execute their simulation grids through the
//! `belenos-runner` batch engine. Two environment variables control a
//! campaign (documented in the top-level README):
//!
//! * `BELENOS_MAX_OPS` — micro-op budget per simulation (default 1M);
//! * `BELENOS_JOBS` — runner worker threads (default: all cores).

use belenos::experiment::{prepare_all, Experiment};
use belenos_workloads::WorkloadSpec;

pub mod timing;

/// Micro-op budget per simulation, from `BELENOS_MAX_OPS` (default 1M).
pub fn max_ops() -> usize {
    std::env::var("BELENOS_MAX_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Prepares workloads, printing progress, and panics with a clear message
/// naming the failing workload (the harness cannot proceed without it).
pub fn prepare_or_die(specs: &[WorkloadSpec]) -> Vec<Experiment> {
    eprintln!("solving {} workload model(s)...", specs.len());
    prepare_all(specs).unwrap_or_else(|e| panic!("workload preparation failed: {e}"))
}

/// Prints the process-lifetime runner-cache summary to stderr; figure
/// binaries call this last so shared-baseline reuse is visible.
pub fn print_run_summary() {
    eprintln!("{}", belenos_runner::process_summary());
}

//! # belenos-bench
//!
//! The benchmark harness behind the single `belenos` CLI
//! (`cargo run -p belenos-bench --release --bin belenos -- <subcommand>`),
//! plus timing benches over the computational kernels and the simulator
//! itself (`cargo bench -p belenos-bench`).
//!
//! The CLI ([`cli`]) replaces the old one-binary-per-figure layout:
//! every paper table/figure, the campaign driver, the cross-backend
//! agreement table, the digest capture and the accuracy/ablation
//! harnesses are subcommands sharing one environment/flag layer
//! (`belenos::env::EnvOverrides` — the only place `BELENOS_MAX_OPS` /
//! `BELENOS_SAMPLING` / `BELENOS_MODEL` / `BELENOS_JOBS` are read, with
//! CLI flags layered on top).
//!
//! Perf-tracking subcommands additionally write machine-readable
//! `BENCH_<name>.json` records (wall time + IPC per workload/backend)
//! via [`emit_bench_json`], so the performance trajectory is tracked
//! across PRs.

use belenos::experiment::{prepare_all, Experiment};
use belenos_workloads::ScenarioSpec;

pub mod cli;
pub mod timing;

/// Prepares scenarios, printing progress, and panics with a clear message
/// naming the failing scenario (the harness cannot proceed without it).
pub fn prepare_or_die(specs: &[ScenarioSpec]) -> Vec<Experiment> {
    eprintln!("solving {} workload model(s)...", specs.len());
    prepare_all(specs).unwrap_or_else(|e| panic!("workload preparation failed: {e}"))
}

/// Prints the process-lifetime runner-cache summary to stderr; campaign
/// commands call this last so shared-baseline reuse is visible.
pub fn print_run_summary() {
    eprintln!("{}", belenos_runner::process_summary());
}

/// One machine-readable benchmark record: how long one workload took
/// under one backend, and the IPC it reported.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Workload id.
    pub workload: String,
    /// Core-model backend label (`o3`/`inorder`/`analytic`), or another
    /// mode label for non-backend benches (e.g. `sampled`, `prefix`).
    pub backend: String,
    /// Wall-clock seconds of the simulation.
    pub wall_s: f64,
    /// Reported instructions per cycle.
    pub ipc: f64,
    /// Simulated MIPS: committed micro-ops per host wall second, in
    /// millions — the simulator-throughput metric the `bench compare`
    /// regression gate tracks.
    pub mips: f64,
}

impl belenos_json::ToJson for BenchRecord {
    fn to_json(&self) -> belenos_json::Json {
        belenos_json::Json::obj(vec![
            ("workload", belenos_json::Json::Str(self.workload.clone())),
            ("backend", belenos_json::Json::Str(self.backend.clone())),
            ("wall_s", belenos_json::Json::Num(self.wall_s)),
            ("ipc", belenos_json::Json::Num(self.ipc)),
            ("mips", belenos_json::Json::Num(self.mips)),
        ])
    }
}

impl belenos_json::FromJson for BenchRecord {
    fn from_json(v: &belenos_json::Json) -> Result<BenchRecord, belenos_json::JsonError> {
        let f = |k: &str| -> Result<f64, belenos_json::JsonError> {
            v.get(k)
                .and_then(belenos_json::Json::as_f64)
                .ok_or_else(|| belenos_json::JsonError::new(format!("record needs numeric `{k}`")))
        };
        let s = |k: &str| -> Result<String, belenos_json::JsonError> {
            v.get(k)
                .and_then(belenos_json::Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| belenos_json::JsonError::new(format!("record needs string `{k}`")))
        };
        Ok(BenchRecord {
            workload: s("workload")?,
            backend: s("backend")?,
            wall_s: f("wall_s")?,
            ipc: f("ipc")?,
            // Absent in pre-telemetry records; 0 marks "not measured".
            mips: v
                .get("mips")
                .and_then(belenos_json::Json::as_f64)
                .unwrap_or(0.0),
        })
    }
}

/// Serializes bench records as a small self-describing JSON document.
pub fn bench_json(name: &str, records: &[BenchRecord]) -> String {
    use belenos_json::{Json, ToJson};
    Json::obj(vec![
        ("bench", Json::Str(name.to_string())),
        (
            "records",
            Json::Arr(records.iter().map(ToJson::to_json).collect()),
        ),
    ])
    .pretty()
}

/// Writes `BENCH_<name>.json` (into `BELENOS_BENCH_DIR`, default the
/// current directory) so CI and later PRs can track the perf trajectory;
/// returns the path written. Failures are reported on stderr and
/// swallowed — metrics files must never break a bench run.
pub fn emit_bench_json(name: &str, records: &[BenchRecord]) -> std::path::PathBuf {
    let dir = std::env::var("BELENOS_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    if let Err(e) = std::fs::write(&path, bench_json(name, records)) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
    path
}

/// A committed performance baseline for the `bench compare` regression
/// gate: simulated-MIPS records plus the [`calibrate`] score of the
/// machine that captured them.
///
/// Comparisons are *calibration-normalized* — each record's MIPS is
/// divided by its document's calibration score before comparing — so a
/// baseline captured on a fast machine does not fail every slower
/// machine (and a slow-machine baseline does not wave regressions
/// through on fast ones).
#[derive(Debug, Clone)]
pub struct BenchBaseline {
    /// [`calibrate`] score (Mops/s of the fixed integer loop) of the
    /// machine that produced `records`.
    pub calibration: f64,
    /// Per-(workload, backend) measurements.
    pub records: Vec<BenchRecord>,
    /// Recapture note: why this baseline replaced its predecessor
    /// (`bench capture --note`). The audit trail for deliberate
    /// baseline moves — the improvement gate points at it when a
    /// suspiciously large speedup suggests the baseline went stale.
    pub note: Option<String>,
}

impl BenchBaseline {
    /// Serializes the baseline as a pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        use belenos_json::{Json, ToJson};
        let mut fields = vec![
            ("bench", Json::Str("baseline".to_string())),
            ("calibration", Json::Num(self.calibration)),
            (
                "records",
                Json::Arr(self.records.iter().map(ToJson::to_json).collect()),
            ),
        ];
        if let Some(note) = &self.note {
            fields.push(("note", Json::Str(note.clone())));
        }
        Json::obj(fields).pretty()
    }

    /// Parses a baseline document.
    ///
    /// # Errors
    ///
    /// A [`belenos_json::JsonError`] describing the malformed field.
    pub fn parse(text: &str) -> Result<BenchBaseline, belenos_json::JsonError> {
        use belenos_json::{FromJson, Json, JsonError};
        let v = Json::parse(text)?;
        let calibration = v
            .get("calibration")
            .and_then(Json::as_f64)
            .ok_or_else(|| JsonError::new("baseline needs numeric `calibration`"))?;
        if calibration.is_nan() || calibration <= 0.0 {
            return Err(JsonError::new("baseline `calibration` must be positive"));
        }
        let records = v
            .get("records")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError::new("baseline needs a `records` array"))?
            .iter()
            .map(BenchRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let note = v
            .get("note")
            .and_then(Json::as_str)
            .map(str::to_string)
            .filter(|s| !s.is_empty());
        Ok(BenchBaseline {
            calibration,
            records,
            note,
        })
    }
}

/// Scores this machine with a fixed CPU-bound integer loop (Mops/s),
/// best of three runs.
///
/// The loop is the same arithmetic for every machine and every commit,
/// so the ratio `simulated MIPS / calibration` cancels raw host speed
/// out of the regression gate: only *code* slowdowns move it. Taking
/// the best run (like the bench wall times) sheds scheduler noise —
/// interference only ever makes a run slower.
pub fn calibrate() -> f64 {
    const ITERS: u64 = 60_000_000;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = std::time::Instant::now();
        let mut acc: u64 = 0x9e3779b97f4a7c15;
        for i in 0..ITERS {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            acc ^= acc >> 29;
        }
        let secs = std::time::Instant::now()
            .duration_since(start)
            .as_secs_f64();
        std::hint::black_box(acc);
        best = best.min(secs);
    }
    ITERS as f64 / best.max(1e-9) / 1e6
}

/// Outcome of a baseline comparison: one human-readable line per
/// compared record, and whether every record stayed inside the allowed
/// regression.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-record verdict lines (`ok`/`REGRESSED`/`missing`).
    pub lines: Vec<String>,
    /// True when no record regressed beyond the threshold.
    pub passed: bool,
}

/// Ratio of current to baseline normalized MIPS above which an
/// *improvement* fails the gate: a >3x speedup without a baseline
/// recapture means the committed baseline is stale, and a stale
/// baseline silently masks every later regression smaller than the
/// improvement. Recapture (with `bench capture --note <why>`) to
/// acknowledge the new performance level.
pub const IMPROVEMENT_LIMIT: f64 = 3.0;

/// Compares `current` against `baseline` record-by-record (matched on
/// workload + backend), failing any record whose calibration-normalized
/// simulated MIPS fell more than `threshold` (e.g. `0.15` = 15%) below
/// the baseline's. Records the baseline has but `current` lacks fail
/// too (silently dropping a bench would defeat the gate); records with
/// an unmeasured (zero) MIPS on either side are reported but not gated.
///
/// Improvements beyond [`IMPROVEMENT_LIMIT`] also fail: the baseline is
/// stale and would mask any later regression smaller than the
/// improvement. The fix is a deliberate recapture carrying a
/// [`BenchBaseline::note`].
pub fn compare_baselines(
    baseline: &BenchBaseline,
    current: &BenchBaseline,
    threshold: f64,
) -> CompareReport {
    let mut lines = Vec::new();
    let mut passed = true;
    for base in &baseline.records {
        let key = format!("{} {}", base.workload, base.backend);
        let Some(cur) = current
            .records
            .iter()
            .find(|r| r.workload == base.workload && r.backend == base.backend)
        else {
            lines.push(format!("{key}: MISSING from current run"));
            passed = false;
            continue;
        };
        if base.mips <= 0.0 || cur.mips <= 0.0 {
            lines.push(format!("{key}: not gated (unmeasured MIPS)"));
            continue;
        }
        let base_norm = base.mips / baseline.calibration;
        let cur_norm = cur.mips / current.calibration;
        let delta = cur_norm / base_norm - 1.0;
        if delta < -threshold {
            lines.push(format!(
                "{key}: REGRESSED {:+.1}% (normalized {base_norm:.4} -> {cur_norm:.4}, limit -{:.0}%)",
                delta * 100.0,
                threshold * 100.0
            ));
            passed = false;
        } else if cur_norm / base_norm > IMPROVEMENT_LIMIT {
            lines.push(format!(
                "{key}: IMPROVED {:+.1}% beyond {IMPROVEMENT_LIMIT}x — stale baseline; \
                 recapture via `belenos bench capture --note <why>` so later \
                 regressions are not masked (normalized {base_norm:.4} -> {cur_norm:.4})",
                delta * 100.0
            ));
            passed = false;
        } else {
            lines.push(format!(
                "{key}: ok {:+.1}% (normalized {base_norm:.4} -> {cur_norm:.4})",
                delta * 100.0
            ));
        }
    }
    CompareReport { lines, passed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_shape() {
        let records = vec![
            BenchRecord {
                workload: "pd".into(),
                backend: "o3".into(),
                wall_s: 1.25,
                ipc: 0.91,
                mips: 3.2,
            },
            BenchRecord {
                workload: "co".into(),
                backend: "analytic".into(),
                wall_s: 0.02,
                ipc: 1.10,
                mips: 150.0,
            },
        ];
        let text = bench_json("model_agreement", &records);
        assert!(text.contains("\"bench\": \"model_agreement\""));
        assert!(text.contains("\"workload\": \"pd\""));
        assert!(text.contains("\"backend\": \"analytic\""));
        assert!(text.contains("\"mips\""));
        // The document must parse back cleanly.
        let v = belenos_json::Json::parse(&text).expect("valid JSON");
        assert_eq!(v.get("records").unwrap().as_arr().unwrap().len(), 2);
    }

    fn record(workload: &str, mips: f64) -> BenchRecord {
        BenchRecord {
            workload: workload.into(),
            backend: "o3".into(),
            wall_s: 1.0,
            ipc: 1.0,
            mips,
        }
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let base = BenchBaseline {
            calibration: 123.4,
            records: vec![record("pd", 3.5), record("co", 2.0)],
            note: None,
        };
        let parsed = BenchBaseline::parse(&base.to_json()).expect("round-trip");
        assert_eq!(parsed.calibration, 123.4);
        assert_eq!(parsed.records.len(), 2);
        assert_eq!(parsed.records[0].workload, "pd");
        assert_eq!(parsed.records[0].mips, 3.5);
        // Records without a mips field (pre-telemetry documents) parse
        // with mips = 0 and are excluded from gating.
        let legacy = r#"{"calibration": 10.0, "records":
            [{"workload": "pd", "backend": "o3", "wall_s": 1.0, "ipc": 0.9}]}"#;
        let b = BenchBaseline::parse(legacy).expect("legacy records parse");
        assert_eq!(b.records[0].mips, 0.0);
        assert!(BenchBaseline::parse(r#"{"records": []}"#).is_err());
        assert!(BenchBaseline::parse(r#"{"calibration": 0, "records": []}"#).is_err());
    }

    #[test]
    fn compare_passes_on_equal_and_faster_runs() {
        let base = BenchBaseline {
            calibration: 100.0,
            records: vec![record("pd", 3.0), record("co", 2.0)],
            note: None,
        };
        let equal = compare_baselines(&base, &base, 0.15);
        assert!(equal.passed, "{:?}", equal.lines);
        assert_eq!(equal.lines.len(), 2);
        let faster = BenchBaseline {
            calibration: 100.0,
            records: vec![record("pd", 4.0), record("co", 2.5)],
            note: None,
        };
        assert!(compare_baselines(&base, &faster, 0.15).passed);
    }

    #[test]
    fn compare_fails_on_a_20_percent_slowdown() {
        let base = BenchBaseline {
            calibration: 100.0,
            records: vec![record("pd", 3.0), record("co", 2.0)],
            note: None,
        };
        let slowed = BenchBaseline {
            calibration: 100.0,
            records: vec![record("pd", 3.0 * 0.8), record("co", 2.0)],
            note: None,
        };
        let report = compare_baselines(&base, &slowed, 0.15);
        assert!(!report.passed);
        assert!(
            report.lines.iter().any(|l| l.contains("REGRESSED")),
            "{:?}",
            report.lines
        );
        // A slowdown inside the threshold passes.
        let minor = BenchBaseline {
            calibration: 100.0,
            records: vec![record("pd", 3.0 * 0.9), record("co", 2.0)],
            note: None,
        };
        assert!(compare_baselines(&base, &minor, 0.15).passed);
    }

    #[test]
    fn compare_fails_on_unexplained_3x_improvement() {
        let base = BenchBaseline {
            calibration: 100.0,
            records: vec![record("pd", 3.0), record("co", 2.0)],
            note: None,
        };
        // A >3x normalized jump means the committed baseline is stale:
        // the gate demands a deliberate recapture instead of silently
        // absorbing headroom that would mask later regressions.
        let leapt = BenchBaseline {
            calibration: 100.0,
            records: vec![record("pd", 3.0 * 3.2), record("co", 2.0)],
            note: None,
        };
        let report = compare_baselines(&base, &leapt, 0.15);
        assert!(!report.passed, "{:?}", report.lines);
        assert!(
            report
                .lines
                .iter()
                .any(|l| l.contains("IMPROVED") && l.contains("--note")),
            "{:?}",
            report.lines
        );
        // Just inside the limit passes.
        let within = BenchBaseline {
            calibration: 100.0,
            records: vec![record("pd", 3.0 * 2.9), record("co", 2.0)],
            note: None,
        };
        assert!(compare_baselines(&base, &within, 0.15).passed);
    }

    #[test]
    fn baseline_note_round_trips_and_stays_optional() {
        let noted = BenchBaseline {
            calibration: 50.0,
            records: vec![record("pd", 3.0)],
            note: Some("PR 7: FlatTrace + SoA o3 rewrite".into()),
        };
        let parsed = BenchBaseline::parse(&noted.to_json()).expect("round-trip");
        assert_eq!(
            parsed.note.as_deref(),
            Some("PR 7: FlatTrace + SoA o3 rewrite")
        );
        // Pre-note documents parse with no note.
        let legacy = r#"{"calibration": 10.0, "records": []}"#;
        assert!(BenchBaseline::parse(legacy).expect("legacy").note.is_none());
    }

    #[test]
    fn compare_normalizes_away_host_speed() {
        // The same code on a machine twice as fast: calibration and MIPS
        // both double — no regression, no false pass the other way.
        let base = BenchBaseline {
            calibration: 100.0,
            records: vec![record("pd", 3.0)],
            note: None,
        };
        let fast_machine = BenchBaseline {
            calibration: 200.0,
            records: vec![record("pd", 6.0)],
            note: None,
        };
        assert!(compare_baselines(&base, &fast_machine, 0.15).passed);
        // A fast machine running regressed code still fails: MIPS only
        // rose 1.5x against a 2x calibration.
        let fast_but_regressed = BenchBaseline {
            calibration: 200.0,
            records: vec![record("pd", 4.5)],
            note: None,
        };
        assert!(!compare_baselines(&base, &fast_but_regressed, 0.15).passed);
    }

    #[test]
    fn compare_fails_on_missing_records_and_skips_unmeasured() {
        let base = BenchBaseline {
            calibration: 100.0,
            records: vec![record("pd", 3.0), record("co", 0.0)],
            note: None,
        };
        let current = BenchBaseline {
            calibration: 100.0,
            records: vec![record("co", 0.0)],
            note: None,
        };
        let report = compare_baselines(&base, &current, 0.15);
        assert!(!report.passed, "dropped record must fail the gate");
        assert!(report.lines.iter().any(|l| l.contains("MISSING")));
        assert!(report.lines.iter().any(|l| l.contains("not gated")));
    }
}

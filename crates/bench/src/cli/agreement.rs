//! `belenos agreement`: cross-backend bottleneck agreement over the
//! workload catalog — the reproduction's version of the paper's
//! gem5-vs-VTune cross-validation table, run across our own model stack
//! instead of across tools.
//!
//! Every selected workload is simulated under all three `CoreModel`
//! backends at the same op budget; for each run the TMA stall
//! categories are ranked, and the table reports the top bottleneck per
//! backend, per-backend IPC, top-1 agreement with the detailed o3
//! model, mean pairwise rank agreement, and wall-time totals.
//!
//! Workload selection: `--workloads` (or the historical
//! `BELENOS_AGREEMENT_WORKLOADS` id list), default the full catalog.
//! Emits `BENCH_model_agreement.json`.

use super::Invocation;
use crate::{emit_bench_json, prepare_or_die, BenchRecord};
use belenos::campaign::PaperSet;
use belenos::figures::{bottleneck_rank, TMA_CATEGORIES};
use belenos_profiler::report::{fmt, Table};
use belenos_runner::run_caught;
use belenos_uarch::{CoreConfig, ModelKind, SimStats};
use belenos_workloads::ScenarioSpec;
use std::time::Instant;

/// Fraction of the 6 pairwise category orderings two rankings share.
fn pairwise_agreement(a: &[usize; 4], b: &[usize; 4]) -> f64 {
    let pos = |order: &[usize; 4], cat: usize| order.iter().position(|&c| c == cat).unwrap();
    let mut agree = 0;
    let mut total = 0;
    for x in 0..4 {
        for y in (x + 1)..4 {
            total += 1;
            let a_says = pos(a, x) < pos(a, y);
            let b_says = pos(b, x) < pos(b, y);
            if a_says == b_says {
                agree += 1;
            }
        }
    }
    agree as f64 / total as f64
}

struct Run {
    stats: SimStats,
    wall_s: f64,
}

fn selected_specs(inv: &Invocation) -> Vec<ScenarioSpec> {
    if let Some(set) = &inv.workloads {
        return set.resolve(PaperSet::Catalog);
    }
    match std::env::var("BELENOS_AGREEMENT_WORKLOADS") {
        Ok(ids) => ids
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|id| belenos_workloads::by_id(id).unwrap_or_else(|| panic!("unknown id {id}")))
            .collect(),
        Err(_) => belenos_workloads::catalog(),
    }
}

/// `belenos agreement`.
pub fn run(inv: &Invocation) -> Result<(), String> {
    let opts = inv.overrides().options();
    let exps = prepare_or_die(&selected_specs(inv));

    // workload-major → backend-major grid of runs.
    let mut grid: Vec<Vec<Option<Run>>> = Vec::new();
    let mut records = Vec::new();
    for exp in &exps {
        let mut row = Vec::new();
        for kind in ModelKind::ALL {
            let cfg = CoreConfig::gem5_baseline().with_model(kind);
            let outcome = run_caught(&format!("{} under {kind}", exp.id), || {
                let t0 = Instant::now();
                let stats = exp.simulate_sampled(&cfg, opts.max_ops, &opts.sampling);
                (stats, t0.elapsed().as_secs_f64())
            });
            row.push(match outcome {
                Ok((stats, wall_s)) => {
                    records.push(BenchRecord {
                        workload: exp.id.clone(),
                        backend: kind.label().to_string(),
                        wall_s,
                        ipc: stats.ipc(),
                        mips: stats.committed_ops as f64 / wall_s.max(1e-9) / 1e6,
                    });
                    Some(Run { stats, wall_s })
                }
                Err(e) => {
                    eprintln!("SIMULATION FAILED: {e}");
                    None
                }
            });
        }
        grid.push(row);
    }

    let mut t = Table::new(&[
        "Model",
        "o3 top",
        "inorder top",
        "analytic top",
        "o3 IPC",
        "inorder IPC",
        "analytic IPC",
    ]);
    let mut top1 = [0usize; 3];
    let mut rank_sum = [0.0f64; 3];
    let mut compared = [0usize; 3];
    let mut wall = [0.0f64; 3];
    for (exp, row) in exps.iter().zip(&grid) {
        let tops: Vec<String> = row
            .iter()
            .map(|r| match r {
                Some(r) => TMA_CATEGORIES[bottleneck_rank(&r.stats)[0]].to_string(),
                None => "FAILED".to_string(),
            })
            .collect();
        let ipcs: Vec<String> = row
            .iter()
            .map(|r| match r {
                Some(r) => fmt(r.stats.ipc(), 3),
                None => "-".to_string(),
            })
            .collect();
        t.row(vec![
            exp.id.clone(),
            tops[0].clone(),
            tops[1].clone(),
            tops[2].clone(),
            ipcs[0].clone(),
            ipcs[1].clone(),
            ipcs[2].clone(),
        ]);
        if let Some(o3) = &row[0] {
            let o3_rank = bottleneck_rank(&o3.stats);
            for (b, r) in row.iter().enumerate() {
                let Some(r) = r else { continue };
                let rank = bottleneck_rank(&r.stats);
                compared[b] += 1;
                if rank[0] == o3_rank[0] {
                    top1[b] += 1;
                }
                rank_sum[b] += pairwise_agreement(&o3_rank, &rank);
            }
        }
        for (b, r) in row.iter().enumerate() {
            if let Some(r) = r {
                wall[b] += r.wall_s;
            }
        }
    }

    println!(
        "Model agreement over {} workload(s) at budget {} (sampling: {})\n\n{}",
        exps.len(),
        opts.max_ops,
        if opts.sampling.is_off() {
            "off".to_string()
        } else {
            format!("{} intervals", opts.sampling.intervals)
        },
        t.render()
    );
    for (b, kind) in ModelKind::ALL.iter().enumerate().skip(1) {
        if compared[b] == 0 {
            continue;
        }
        println!(
            "o3 vs {kind}: top-bottleneck agreement {}/{} ({:.0}%), mean rank agreement {:.0}%, \
             wall {:.2}s vs o3 {:.2}s ({:.1}x faster)",
            top1[b],
            compared[b],
            top1[b] as f64 / compared[b] as f64 * 100.0,
            rank_sum[b] / compared[b] as f64 * 100.0,
            wall[b],
            wall[0],
            wall[0] / wall[b].max(1e-9),
        );
    }
    emit_bench_json("model_agreement", &records);
    Ok(())
}

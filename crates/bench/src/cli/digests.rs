//! `belenos digests`: prints stable FNV digests of o3 `SimStats` over
//! the catalog — the capture harness for `tests/backends.rs`. Run after
//! an *intentional* model change and paste the output over the pinned
//! table; any unintentional drift there is a correctness regression.

use super::Invocation;
use belenos::experiment::Experiment;
use belenos_runner::cache::encode_stats;
use belenos_uarch::{CoreConfig, Fnv64, SamplingConfig};

fn digest(stats: &belenos_uarch::SimStats) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&encode_stats(stats));
    h.finish()
}

/// `belenos digests`.
pub fn run(_inv: &Invocation) -> Result<(), String> {
    let t0 = std::time::Instant::now();
    for spec in belenos_workloads::catalog() {
        let exp = Experiment::prepare(&spec).map_err(|e| format!("prepare {}: {e}", spec.id))?;
        let cfg = CoreConfig::gem5_baseline();
        let prefix = exp.simulate(&cfg, 40_000);
        let sampled = exp.simulate_sampled(&cfg, 30_000, &SamplingConfig::smarts(8));
        let host = exp.simulate(&CoreConfig::host_like(), 40_000);
        println!(
            "(\"{}\", 0x{:016x}, 0x{:016x}, 0x{:016x}),",
            spec.id,
            digest(&prefix),
            digest(&sampled),
            digest(&host)
        );
    }
    // One full-trace run on the smallest workload.
    let exp = Experiment::prepare(&belenos_workloads::by_id("pd").expect("pd"))
        .map_err(|e| format!("prepare pd: {e}"))?;
    let full = exp.simulate(&CoreConfig::gem5_baseline(), 0);
    println!("full pd: 0x{:016x}", digest(&full));
    eprintln!("captured in {:.1}s", t0.elapsed().as_secs_f64());
    Ok(())
}

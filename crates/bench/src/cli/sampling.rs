//! `belenos sampling`: accuracy/speed harness for SMARTS-style interval
//! sampling. For a few small catalog workloads, compares the full-trace
//! simulation against (a) sampled runs at a 10x reduced op budget and
//! (b) the historical prefix truncation at the same budget, reporting
//! IPC error, wall time and where the measurement windows land.
//!
//! Workload selection: `--workloads id,id` (or the historical
//! `BELENOS_ACCURACY_WORKLOADS`), default `pd,co`. `--sampling N`
//! chooses the interval count for the sampled column; `--model` the
//! backend. Emits `BENCH_sampling_accuracy.json`.

use super::Invocation;
use crate::{emit_bench_json, BenchRecord};
use belenos::campaign::PaperSet;
use belenos::env::DEFAULT_SAMPLING_INTERVALS;
use belenos::experiment::{sampling_windows, Experiment};
use belenos_profiler::report::{fmt, Table};
use belenos_runner::run_caught;
use belenos_uarch::{CoreConfig, SamplingConfig, SimStats};
use std::time::Instant;

fn timed(f: impl FnOnce() -> SimStats) -> (SimStats, f64) {
    let t0 = Instant::now();
    let stats = f();
    (stats, t0.elapsed().as_secs_f64())
}

fn pct_err(est: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        0.0
    } else {
        (est - reference) / reference * 100.0
    }
}

fn selected_ids(inv: &Invocation) -> Vec<String> {
    if let Some(set) = &inv.workloads {
        return set
            .resolve(PaperSet::Catalog)
            .iter()
            .map(|s| s.id.to_string())
            .collect();
    }
    std::env::var("BELENOS_ACCURACY_WORKLOADS")
        .unwrap_or_else(|_| "pd,co".into())
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// `belenos sampling`.
pub fn run(inv: &Invocation) -> Result<(), String> {
    let overrides = inv.overrides();
    let intervals = match &overrides.sampling {
        Some(s) if !s.is_off() => s.intervals,
        _ => DEFAULT_SAMPLING_INTERVALS,
    };
    let cfg = CoreConfig::gem5_baseline().with_model(overrides.model.unwrap_or_default());

    let mut t = Table::new(&[
        "Model",
        "Trace ops",
        "Budget",
        "Full IPC",
        "Sampled IPC",
        "err%",
        "Prefix IPC",
        "err%",
        "Full (s)",
        "Sampled (s)",
        "Speedup",
    ]);
    let mut records = Vec::new();
    for id in selected_ids(inv) {
        let spec = match belenos_workloads::by_id(&id) {
            Some(s) => s,
            None => {
                eprintln!("unknown workload id `{id}`, skipping");
                continue;
            }
        };
        let exp = Experiment::prepare(&spec).map_err(|e| format!("prepare {id}: {e}"))?;
        let total = exp.total_trace_ops();
        let budget = (total as usize / 10).max(1);

        // A wedged simulation (stall-limit panic) surfaces as an error
        // line for this workload; the harness moves on to the next one.
        let smp = SamplingConfig::smarts(intervals);
        let outcome = run_caught(&format!("workload {id}"), || {
            let (full, full_s) = timed(|| exp.simulate(&cfg, 0));
            let (sampled, sampled_s) = timed(|| exp.simulate_sampled(&cfg, budget, &smp));
            let (prefix, _) = timed(|| exp.simulate(&cfg, budget));
            (full, full_s, sampled, sampled_s, prefix)
        });
        let (full, full_s, sampled, sampled_s, prefix) = match outcome {
            Ok(v) => v,
            Err(e) => {
                eprintln!("SIMULATION FAILED: {e}");
                continue;
            }
        };

        let windows = sampling_windows(total, budget as u64, intervals);
        let (last_start, last_len) = *windows.last().expect("non-empty");
        eprintln!(
            "{id}: {} windows of {} ops; first at {:.1}%, last ends at {:.1}% of the trace",
            windows.len(),
            last_len,
            windows[0].0 as f64 / total as f64 * 100.0,
            (last_start + last_len) as f64 / total as f64 * 100.0,
        );

        t.row(vec![
            id.to_string(),
            total.to_string(),
            budget.to_string(),
            fmt(full.ipc(), 4),
            fmt(sampled.ipc(), 4),
            fmt(pct_err(sampled.ipc(), full.ipc()), 2),
            fmt(prefix.ipc(), 4),
            fmt(pct_err(prefix.ipc(), full.ipc()), 2),
            fmt(full_s, 3),
            fmt(sampled_s, 3),
            fmt(full_s / sampled_s.max(1e-9), 2),
        ]);
        records.push(BenchRecord {
            workload: id.to_string(),
            backend: format!("{}-full", cfg.model),
            wall_s: full_s,
            ipc: full.ipc(),
            mips: full.committed_ops as f64 / full_s.max(1e-9) / 1e6,
        });
        records.push(BenchRecord {
            workload: id.to_string(),
            backend: format!("{}-sampled", cfg.model),
            wall_s: sampled_s,
            ipc: sampled.ipc(),
            mips: sampled.committed_ops as f64 / sampled_s.max(1e-9) / 1e6,
        });
    }
    println!(
        "Sampling accuracy at a 10x reduced op budget ({intervals} SMARTS intervals)\n\n{}",
        t.render()
    );
    emit_bench_json("sampling_accuracy", &records);
    Ok(())
}

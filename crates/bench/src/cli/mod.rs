//! The `belenos` command-line interface.
//!
//! One binary, subcommands for everything the old per-figure binaries
//! did:
//!
//! ```text
//! belenos list                         what exists: workloads, analyses, backends
//! belenos table <1|2>                  Table I / Table II
//! belenos figure <id|all>              one paper figure, or the whole set
//! belenos scenario list|show|validate|run   first-class parametric workloads
//! belenos campaign run <spec.json>     run a declarative campaign spec
//! belenos campaign example             print a template spec
//! belenos campaign validate <spec>     check a spec without running it
//! belenos agreement                    cross-backend bottleneck agreement
//! belenos digests                      o3 SimStats digests (regression capture)
//! belenos sampling                     SMARTS sampling accuracy harness
//! belenos ablation <rcm|rob-iq>        reordering / instruction-window ablations
//! belenos bench capture|compare        perf baseline capture / regression gate
//! belenos bench prepare                cold vs warm-store prepare walls
//! ```
//!
//! Every subcommand shares one option layer: the `BELENOS_*`
//! environment variables are read once (`EnvOverrides::from_env`), and
//! the flags `--max-ops`, `--sampling`, `--model`, `--jobs` override
//! them. `--workloads` narrows the workload selection; `--format`
//! selects text/JSON/CSV output, and `--json PATH` / `--csv PATH`
//! additionally write those renderings to files.

mod ablation;
mod agreement;
mod bench_cmd;
mod cache_cmd;
mod campaign_cmd;
mod digests;
mod figures_cmd;
mod list;
mod sampling;
mod scenario_cmd;
mod serve_cmd;
mod worker_cmd;

use belenos::campaign::WorkloadSet;
use belenos::env::{parse_sampling, EnvOverrides};
use belenos_uarch::ModelKind;

/// Output rendering selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Historical plain-text tables (byte-identical to the old bins).
    #[default]
    Text,
    /// Structured JSON.
    Json,
    /// CSV (one block per report section).
    Csv,
}

/// A parsed invocation: positional words plus the shared option layer.
#[derive(Debug, Default)]
pub struct Invocation {
    /// Subcommand path and its positional arguments, in order.
    pub positionals: Vec<String>,
    /// Overrides sourced from the environment.
    pub env: EnvOverrides,
    /// Overrides sourced from flags (win over `env`).
    pub flags: EnvOverrides,
    /// `--workloads` selection, if given.
    pub workloads: Option<WorkloadSet>,
    /// `--format` selection.
    pub format: Format,
    /// `--json PATH`: also write the JSON rendering here.
    pub json_out: Option<String>,
    /// `--csv PATH`: also write the CSV rendering here.
    pub csv_out: Option<String>,
    /// `--telemetry V`: structured-event sink (`off`, `stderr`, or a
    /// JSONL path). `None` = leave the `BELENOS_TELEMETRY` selection.
    pub telemetry: Option<String>,
    /// `--note TEXT`: recapture note recorded in a `bench capture`
    /// baseline document.
    pub note: Option<String>,
    /// `--trace-dir PATH`: persistent trace store directory. `None` =
    /// leave the `BELENOS_TRACE_DIR` selection.
    pub trace_dir: Option<String>,
    /// `--cache-dir PATH`: disk result cache directory. `None` = leave
    /// the `BELENOS_CACHE_DIR` selection.
    pub cache_dir: Option<String>,
    /// `--addr HOST:PORT`: `serve` listen address.
    pub addr: Option<String>,
    /// `--serve-workers N`: concurrent jobs in the serve pool.
    pub serve_workers: Option<usize>,
    /// `--queue-depth N`: serve admission queue bound.
    pub queue_depth: Option<usize>,
    /// `--op-ceiling N`: serve per-request `max_ops` ceiling (0 = off).
    pub op_ceiling: Option<usize>,
    /// `--cache-budget BYTES`: serve background GC budget (0 = off).
    pub cache_budget: Option<u64>,
    /// `--max-bytes BYTES`: `cache gc` target size.
    pub max_bytes: Option<u64>,
    /// `--dist-dir PATH`: shared distributed job-board directory.
    /// `None` = the `BELENOS_DIST_DIR` selection, if any.
    pub dist_dir: Option<String>,
    /// `--distributed`: route `campaign run` cache misses through the
    /// job board instead of the local thread pool.
    pub distributed: bool,
    /// `--lease-ttl SECONDS`: age past which an unheartbeated lease is
    /// stealable.
    pub lease_ttl: Option<std::time::Duration>,
    /// `--heartbeat SECONDS`: lease mtime refresh interval.
    pub heartbeat: Option<std::time::Duration>,
    /// `--local-workers N`: in-process workers a distributed
    /// coordinator hosts alongside external `belenos worker`s.
    pub local_workers: Option<usize>,
    /// `--name ID`: worker name (defaults to a per-process unique id).
    pub worker_name: Option<String>,
    /// `--idle-timeout SECONDS`: a `belenos worker` exits after the
    /// board yields nothing for this long (default: run until killed).
    pub idle_timeout: Option<std::time::Duration>,
}

impl Invocation {
    /// Environment and flag overrides merged (flags win).
    pub fn overrides(&self) -> EnvOverrides {
        self.env.merged(&self.flags)
    }

    /// The runner every simulation of this invocation routes through.
    pub fn runner(&self) -> belenos_runner::Runner {
        self.overrides().runner_config().build()
    }

    /// Resolves `--workloads` with a fallback.
    pub fn workload_set(&self) -> WorkloadSet {
        self.workloads.clone().unwrap_or_default()
    }
}

/// Parses a byte size with an optional `K`/`M`/`G` binary suffix
/// (`512M` = 512 MiB), for `--cache-budget` and `--max-bytes`.
pub(crate) fn parse_byte_size(value: &str) -> Option<u64> {
    let v = value.trim();
    let (digits, multiplier) = match v.chars().last()? {
        'k' | 'K' => (&v[..v.len() - 1], 1u64 << 10),
        'm' | 'M' => (&v[..v.len() - 1], 1u64 << 20),
        'g' | 'G' => (&v[..v.len() - 1], 1u64 << 30),
        _ => (v, 1),
    };
    digits.trim().parse::<u64>().ok()?.checked_mul(multiplier)
}

/// Parses a positive seconds value (fractions allowed: `0.25`).
fn parse_seconds(flag: &str, value: &str) -> Result<std::time::Duration, String> {
    match value.parse::<f64>() {
        Ok(s) if s > 0.0 && s.is_finite() => Ok(std::time::Duration::from_secs_f64(s)),
        _ => Err(format!("{flag}: `{value}` is not a positive seconds value")),
    }
}

fn parse_workloads(value: &str) -> Result<WorkloadSet, String> {
    if let Some(named) = WorkloadSet::parse_named(value) {
        return Ok(named);
    }
    let ids: Vec<String> = value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if ids.is_empty() {
        return Err("--workloads: expected a set name or comma-separated ids".into());
    }
    for id in &ids {
        if belenos_workloads::by_id(id).is_none() {
            return Err(format!("--workloads: unknown workload id `{id}`"));
        }
    }
    Ok(WorkloadSet::Ids(ids))
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// A usage message for unknown flags, missing flag values, or
/// unparsable values.
pub fn parse(args: &[String]) -> Result<Invocation, String> {
    let mut inv = Invocation {
        env: EnvOverrides::from_env(),
        ..Invocation::default()
    };
    let mut it = args.iter().peekable();
    let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                 flag: &str|
     -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-ops" => {
                let v = value(&mut it, "--max-ops")?;
                inv.flags.max_ops = Some(
                    v.parse()
                        .map_err(|_| format!("--max-ops: `{v}` is not a budget"))?,
                );
            }
            "--sampling" => {
                let v = value(&mut it, "--sampling")?;
                inv.flags.sampling =
                    Some(parse_sampling(&v).map_err(|e| format!("--sampling: {e}"))?);
            }
            "--model" => {
                let v = value(&mut it, "--model")?;
                inv.flags.model = Some(
                    ModelKind::parse(&v)
                        .ok_or_else(|| format!("--model: unknown backend `{v}`"))?,
                );
            }
            "--jobs" => {
                let v = value(&mut it, "--jobs")?;
                inv.flags.jobs = match v.parse::<usize>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => return Err(format!("--jobs: `{v}` is not a worker count")),
                };
            }
            "--workloads" => {
                let v = value(&mut it, "--workloads")?;
                inv.workloads = Some(parse_workloads(&v)?);
            }
            "--format" => {
                let v = value(&mut it, "--format")?;
                inv.format = match v.to_ascii_lowercase().as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    _ => return Err(format!("--format: expected text, json or csv, got `{v}`")),
                };
            }
            "--json" => inv.json_out = Some(value(&mut it, "--json")?),
            "--csv" => inv.csv_out = Some(value(&mut it, "--csv")?),
            "--telemetry" => inv.telemetry = Some(value(&mut it, "--telemetry")?),
            "--trace-dir" => inv.trace_dir = Some(value(&mut it, "--trace-dir")?),
            "--cache-dir" => inv.cache_dir = Some(value(&mut it, "--cache-dir")?),
            "--note" => inv.note = Some(value(&mut it, "--note")?),
            "--addr" => inv.addr = Some(value(&mut it, "--addr")?),
            "--serve-workers" => {
                let v = value(&mut it, "--serve-workers")?;
                inv.serve_workers = match v.parse::<usize>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => return Err(format!("--serve-workers: `{v}` is not a worker count")),
                };
            }
            "--queue-depth" => {
                let v = value(&mut it, "--queue-depth")?;
                inv.queue_depth = Some(
                    v.parse()
                        .map_err(|_| format!("--queue-depth: `{v}` is not a queue size"))?,
                );
            }
            "--op-ceiling" => {
                let v = value(&mut it, "--op-ceiling")?;
                inv.op_ceiling = Some(
                    v.parse()
                        .map_err(|_| format!("--op-ceiling: `{v}` is not an op budget"))?,
                );
            }
            "--cache-budget" => {
                let v = value(&mut it, "--cache-budget")?;
                inv.cache_budget = Some(parse_byte_size(&v).ok_or_else(|| {
                    format!("--cache-budget: `{v}` is not a byte size (K/M/G suffixes ok)")
                })?);
            }
            "--max-bytes" => {
                let v = value(&mut it, "--max-bytes")?;
                inv.max_bytes = Some(parse_byte_size(&v).ok_or_else(|| {
                    format!("--max-bytes: `{v}` is not a byte size (K/M/G suffixes ok)")
                })?);
            }
            "--dist-dir" => inv.dist_dir = Some(value(&mut it, "--dist-dir")?),
            "--distributed" => inv.distributed = true,
            "--lease-ttl" => {
                let v = value(&mut it, "--lease-ttl")?;
                inv.lease_ttl = Some(parse_seconds("--lease-ttl", &v)?);
            }
            "--heartbeat" => {
                let v = value(&mut it, "--heartbeat")?;
                inv.heartbeat = Some(parse_seconds("--heartbeat", &v)?);
            }
            "--idle-timeout" => {
                let v = value(&mut it, "--idle-timeout")?;
                inv.idle_timeout = Some(parse_seconds("--idle-timeout", &v)?);
            }
            "--local-workers" => {
                let v = value(&mut it, "--local-workers")?;
                inv.local_workers = Some(
                    v.parse()
                        .map_err(|_| format!("--local-workers: `{v}` is not a worker count"))?,
                );
            }
            "--name" => inv.worker_name = Some(value(&mut it, "--name")?),
            "--help" | "-h" => {
                inv.positionals = vec!["help".into()];
                return Ok(inv);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            word => inv.positionals.push(word.to_string()),
        }
    }
    Ok(inv)
}

const USAGE: &str = "\
belenos — the Belenos reproduction harness

USAGE: belenos <subcommand> [flags]

SUBCOMMANDS
  list                        workloads, analyses, backends, workload sets
  table <1|2>                 print Table I / Table II
  figure <id|all>             one analysis (topdown, stalls, hotspots,
                              scaling, exec_time, pipeline, frequency, cache,
                              width, lsq, branch, memory, rob_iq,
                              mesh_scaling; figNN aliases work), or the
                              full paper set
  scenario list               catalog presets and scenario families
  scenario show <id|file>     print a scenario's explicit JSON normal form
  scenario validate <file>    check a scenario document without running it
  scenario run <id|file>      run scenarios end-to-end (presets or JSON)
  campaign run <spec.json>    execute a declarative campaign spec
  campaign example            print a template campaign spec
  campaign validate <spec>    parse + validate a spec without running it
  agreement                   cross-backend bottleneck agreement table
  digests                     o3 SimStats digests (backend regression capture)
  sampling                    SMARTS sampling accuracy/speed harness
  ablation <rcm|rob-iq>       RCM reordering / ROB-IQ window ablations
  bench capture [path]        measure the fixed perf bench, write a baseline
                              (--note TEXT records why it was recaptured)
  bench compare [path]        gate current perf against a committed baseline
                              (default path BENCH_baseline.json, 15% threshold;
                              >3x unexplained improvement also fails — stale
                              baseline, recapture with --note)
  bench prepare               cold-vs-warm trace-store prepare walls over a
                              preset set (default gem5; --workloads narrows)
  serve                       long-running HTTP simulation server: submit
                              campaign/scenario specs, poll jobs, stream
                              NDJSON telemetry (see README \"Serving\")
  worker --dist-dir D         distributed campaign worker: claim jobs off the
                              shared board, simulate, publish results (see
                              README \"Distributed campaigns\")
  cache stats                 disk result cache + trace store usage
                              (+ job-board census when a dist dir is set)
  cache gc --max-bytes B      LRU-evict the stores down to a byte budget

FLAGS (shared; flags override BELENOS_* environment variables)
  --max-ops N        micro-op budget per simulation   [BELENOS_MAX_OPS, 1000000]
  --sampling V       off | on | N intervals           [BELENOS_SAMPLING, off]
  --model V          o3 | inorder | analytic          [BELENOS_MODEL, o3]
  --jobs N           runner worker threads            [BELENOS_JOBS, all cores]
  --workloads V      paper | vtune | gem5 | catalog | id,id,...
  --format V         text | json | csv                [text]
  --json PATH        also write the JSON report to PATH
  --csv PATH         also write the CSV report to PATH
  --telemetry V      off | stderr | PATH (JSONL events) [BELENOS_TELEMETRY, off]
  --trace-dir PATH   persistent trace store directory   [BELENOS_TRACE_DIR, off]
  --cache-dir PATH   disk result cache directory        [BELENOS_CACHE_DIR, off]

SERVE / CACHE FLAGS
  --addr HOST:PORT   serve listen address       [BELENOS_SERVE_ADDR, 127.0.0.1:7878]
  --serve-workers N  concurrent jobs (pool threads)                    [2]
  --queue-depth N    jobs that may wait before 429                     [32]
  --op-ceiling N     per-request max_ops ceiling, 0 = unlimited        [100000000]
  --cache-budget B   background GC byte budget (K/M/G ok), 0 = off     [off]
  --max-bytes B      cache gc target size (K/M/G ok)

DISTRIBUTED FLAGS
  --dist-dir D       shared job-board directory         [BELENOS_DIST_DIR]
  --distributed      campaign run: execute via the job board
  --local-workers N  in-process workers beside the coordinator         [1]
  --lease-ttl S      steal leases unheartbeated for S seconds          [30]
  --heartbeat S      lease refresh interval                            [ttl/4]
  --name ID          worker name (lease files, merged summary)  [w<pid>-<rand>]
  --idle-timeout S   worker exits after S idle seconds       [run until killed]
";

/// Runs the CLI; returns the process exit code.
pub fn main(args: Vec<String>) -> i32 {
    let inv = match parse(&args) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("belenos: {e}");
            eprintln!("run `belenos help` for usage");
            return 2;
        }
    };
    // Install the telemetry selection before anything else runs: the
    // flag wins over BELENOS_TELEMETRY (which `global()` would read).
    if let Some(sel) = &inv.telemetry {
        match belenos_telemetry::Telemetry::parse(sel) {
            Ok(t) => {
                belenos_telemetry::install(t);
            }
            Err(e) => {
                eprintln!("belenos: --telemetry: {e}");
                return 2;
            }
        }
    }
    // Same for the trace store: the flag wins over BELENOS_TRACE_DIR
    // (which `trace_store::global()` would read on first use).
    if let Some(dir) = &inv.trace_dir {
        belenos::trace_store::install_dir(dir);
    }
    // And the disk result cache: `Cache::global()` reads
    // BELENOS_CACHE_DIR on first use, which is still ahead of us here.
    if let Some(dir) = &inv.cache_dir {
        std::env::set_var("BELENOS_CACHE_DIR", dir);
    }
    // Env-parse warnings route through telemetry: structured when a sink
    // is active, stderr when unconfigured, silent under `off`.
    let tele = belenos_telemetry::global();
    for w in &inv.overrides().warnings {
        tele.warn(&format!("belenos: {w}"));
    }
    let command = inv
        .positionals
        .first()
        .map(String::as_str)
        .unwrap_or("help");
    let outcome = match command {
        "help" => {
            print!("{USAGE}");
            Ok(())
        }
        "list" => list::run(&inv),
        "table" => figures_cmd::run_table(&inv),
        "figure" => figures_cmd::run_figure(&inv),
        "scenario" => scenario_cmd::run(&inv),
        "campaign" => campaign_cmd::run(&inv),
        "agreement" => agreement::run(&inv),
        "digests" => digests::run(&inv),
        "sampling" => sampling::run(&inv),
        "ablation" => ablation::run(&inv),
        "bench" => bench_cmd::run(&inv),
        "serve" => serve_cmd::run(&inv),
        "worker" => worker_cmd::run(&inv),
        "cache" => cache_cmd::run(&inv),
        other => Err(format!("unknown subcommand `{other}`")),
    };
    match outcome {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("belenos: {e}");
            if matches!(command, "help" | "list") {
                1
            } else {
                // Usage-shaped errors (bad subcommand arguments) exit 2,
                // operational failures 1 — both carry the message above.
                if e.starts_with("usage:") || e.starts_with("unknown subcommand") {
                    2
                } else {
                    1
                }
            }
        }
    }
}

/// Writes the optional `--json` / `--csv` side outputs of a rendered
/// report; the closures lazily produce the renderings.
pub(crate) fn write_side_outputs(
    inv: &Invocation,
    json: impl FnOnce() -> String,
    csv: impl FnOnce() -> String,
) -> Result<(), String> {
    if let Some(path) = &inv.json_out {
        std::fs::write(path, json()).map_err(|e| format!("could not write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = &inv.csv_out {
        std::fs::write(path, csv()).map_err(|e| format!("could not write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_and_override() {
        let inv = parse(&args(&[
            "figure",
            "topdown",
            "--max-ops",
            "5000",
            "--model",
            "analytic",
            "--sampling",
            "8",
            "--jobs",
            "2",
            "--format",
            "json",
        ]))
        .unwrap();
        assert_eq!(inv.positionals, ["figure", "topdown"]);
        assert_eq!(inv.flags.max_ops, Some(5000));
        assert_eq!(inv.flags.model, Some(ModelKind::Analytic));
        assert_eq!(inv.flags.jobs, Some(2));
        assert_eq!(inv.format, Format::Json);
        let opts = inv.overrides().options();
        assert_eq!(opts.max_ops, 5000);
        assert_eq!(opts.sampling.intervals, 8);
    }

    #[test]
    fn workload_flag_accepts_sets_and_ids() {
        let inv = parse(&args(&["figure", "all", "--workloads", "gem5"])).unwrap();
        assert_eq!(inv.workloads, Some(WorkloadSet::Gem5));
        let inv = parse(&args(&["figure", "all", "--workloads", "pd,co"])).unwrap();
        assert_eq!(
            inv.workloads,
            Some(WorkloadSet::Ids(vec!["pd".into(), "co".into()]))
        );
        assert!(parse(&args(&["figure", "all", "--workloads", "zz"])).is_err());
    }

    #[test]
    fn bad_flags_are_usage_errors() {
        assert!(parse(&args(&["--max-ops"])).is_err());
        assert!(parse(&args(&["--max-ops", "many"])).is_err());
        assert!(parse(&args(&["--frobnicate"])).is_err());
        assert!(parse(&args(&["--format", "xml"])).is_err());
        assert!(parse(&args(&["--telemetry"])).is_err());
    }

    #[test]
    fn serve_and_cache_flags_parse() {
        let inv = parse(&args(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--serve-workers",
            "4",
            "--queue-depth",
            "8",
            "--op-ceiling",
            "200000",
            "--cache-budget",
            "512M",
        ]))
        .unwrap();
        assert_eq!(inv.positionals, ["serve"]);
        assert_eq!(inv.addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(inv.serve_workers, Some(4));
        assert_eq!(inv.queue_depth, Some(8));
        assert_eq!(inv.op_ceiling, Some(200_000));
        assert_eq!(inv.cache_budget, Some(512 * 1024 * 1024));
        let inv = parse(&args(&["cache", "gc", "--max-bytes", "64k"])).unwrap();
        assert_eq!(inv.positionals, ["cache", "gc"]);
        assert_eq!(inv.max_bytes, Some(64 * 1024));
        assert!(parse(&args(&["serve", "--serve-workers", "0"])).is_err());
        assert!(parse(&args(&["cache", "gc", "--max-bytes", "lots"])).is_err());
    }

    #[test]
    fn byte_sizes_parse_with_suffixes() {
        assert_eq!(parse_byte_size("1024"), Some(1024));
        assert_eq!(parse_byte_size("2K"), Some(2048));
        assert_eq!(parse_byte_size("3m"), Some(3 << 20));
        assert_eq!(parse_byte_size("1G"), Some(1 << 30));
        assert_eq!(parse_byte_size(""), None);
        assert_eq!(parse_byte_size("G"), None);
        assert_eq!(parse_byte_size("-1"), None);
    }

    #[test]
    fn dist_flags_parse() {
        let inv = parse(&args(&[
            "campaign",
            "run",
            "spec.json",
            "--distributed",
            "--dist-dir",
            "/tmp/dist",
            "--local-workers",
            "0",
            "--lease-ttl",
            "2.5",
            "--heartbeat",
            "0.5",
        ]))
        .unwrap();
        assert!(inv.distributed);
        assert_eq!(inv.dist_dir.as_deref(), Some("/tmp/dist"));
        assert_eq!(inv.local_workers, Some(0));
        assert_eq!(inv.lease_ttl, Some(std::time::Duration::from_millis(2500)));
        assert_eq!(inv.heartbeat, Some(std::time::Duration::from_millis(500)));
        let inv = parse(&args(&[
            "worker",
            "--dist-dir",
            "/tmp/dist",
            "--name",
            "w1",
            "--idle-timeout",
            "10",
        ]))
        .unwrap();
        assert_eq!(inv.positionals, ["worker"]);
        assert_eq!(inv.worker_name.as_deref(), Some("w1"));
        assert_eq!(inv.idle_timeout, Some(std::time::Duration::from_secs(10)));
        assert!(parse(&args(&["worker", "--lease-ttl", "0"])).is_err());
        assert!(parse(&args(&["worker", "--lease-ttl", "soon"])).is_err());
        assert!(parse(&args(&["worker", "--local-workers", "two"])).is_err());
    }

    #[test]
    fn telemetry_flag_parses() {
        let inv = parse(&args(&["campaign", "run", "spec.json"])).unwrap();
        assert_eq!(inv.telemetry, None);
        let inv = parse(&args(&["figure", "all", "--telemetry", "out.jsonl"])).unwrap();
        assert_eq!(inv.telemetry.as_deref(), Some("out.jsonl"));
        let inv = parse(&args(&["agreement", "--telemetry", "off"])).unwrap();
        assert_eq!(inv.telemetry.as_deref(), Some("off"));
    }
}

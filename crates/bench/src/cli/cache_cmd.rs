//! `belenos cache <stats|gc>` — inspect and bound the disk stores.
//!
//! Both the disk result cache (`BELENOS_CACHE_DIR`/`--cache-dir`) and
//! the persistent trace store (`BELENOS_TRACE_DIR`/`--trace-dir`) grow
//! without bound; `stats` sizes them and `gc --max-bytes B` evicts
//! least-recently-written entries across *both* stores until at most
//! `B` bytes remain (in-flight write temps are never touched — see
//! [`belenos_runner::gc`]).

use super::{serve_cmd::store_dirs, worker_cmd, Invocation};
use belenos_dist::board_stats;
use belenos_runner::gc;

/// `belenos cache <stats|gc> [--max-bytes B]`.
pub fn run(inv: &Invocation) -> Result<(), String> {
    match inv.positionals.get(1).map(String::as_str) {
        Some("stats") => stats(inv),
        Some("gc") => collect(inv),
        _ => Err("usage: belenos cache <stats|gc> [--max-bytes B]".into()),
    }
}

fn dirs_or_usage(inv: &Invocation) -> Result<Vec<std::path::PathBuf>, String> {
    let dirs = store_dirs(inv);
    if dirs.is_empty() {
        return Err(
            "cache: no stores configured — set --cache-dir/BELENOS_CACHE_DIR \
             and/or --trace-dir/BELENOS_TRACE_DIR"
                .into(),
        );
    }
    Ok(dirs)
}

fn stats(inv: &Invocation) -> Result<(), String> {
    // A configured dist dir is a store in its own right: its census
    // prints even when no cache/trace store is configured separately.
    let dist = worker_cmd::dist_dir(inv);
    let dirs = match dirs_or_usage(inv) {
        Ok(dirs) => dirs,
        Err(_) if dist.is_some() => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut total = gc::DirUsage::default();
    for dir in &dirs {
        let usage = gc::dir_usage(dir).map_err(|e| format!("cache: {}: {e}", dir.display()))?;
        println!(
            "{:<40} {:>8} file(s) {:>14} bytes",
            dir.display(),
            usage.files,
            usage.bytes
        );
        total.files += usage.files;
        total.bytes += usage.bytes;
    }
    if !dirs.is_empty() {
        println!(
            "{:<40} {:>8} file(s) {:>14} bytes",
            "total", total.files, total.bytes
        );
    }
    if let Some(dist) = dist {
        dist_stats(inv, &dist)?;
    }
    Ok(())
}

/// The `cache stats` job-board census: dist dir size plus the board's
/// open/claimed/stale/done counts under the effective lease TTL.
fn dist_stats(inv: &Invocation, dist: &str) -> Result<(), String> {
    let cfg = worker_cmd::dist_config(inv, "census")?;
    // `dir_usage` is flat by design (the stores it was built for are);
    // the dist dir is all subdirectories, so sum the layout's pieces.
    let mut usage = gc::DirUsage::default();
    for sub in [
        cfg.board_dir(),
        cfg.leases_dir(),
        cfg.done_dir(),
        cfg.cache_dir(),
        cfg.traces_dir(),
    ] {
        if let Ok(part) = gc::dir_usage(&sub) {
            usage.files += part.files;
            usage.bytes += part.bytes;
        }
    }
    let board = board_stats(&cfg.dir, cfg.lease_ttl);
    println!(
        "dist {:<35} {:>8} file(s) {:>14} bytes",
        dist, usage.files, usage.bytes
    );
    println!(
        "  job board: {} open, {} claimed ({} stale at ttl {:.1}s), {} done",
        board.open,
        board.claimed,
        board.stale,
        cfg.lease_ttl.as_secs_f64(),
        board.done
    );
    Ok(())
}

fn collect(inv: &Invocation) -> Result<(), String> {
    let Some(max_bytes) = inv.max_bytes else {
        return Err("usage: belenos cache gc --max-bytes B (K/M/G suffixes ok)".into());
    };
    let dirs = dirs_or_usage(inv)?;
    let outcome = gc::gc_dirs(&dirs, max_bytes).map_err(|e| format!("cache gc: {e}"))?;
    println!(
        "deleted {} file(s), {} bytes; {} file(s), {} bytes remain (budget {max_bytes})",
        outcome.deleted_files,
        outcome.deleted_bytes,
        outcome.after().files,
        outcome.after().bytes
    );
    Ok(())
}

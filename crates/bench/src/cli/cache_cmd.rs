//! `belenos cache <stats|gc>` — inspect and bound the disk stores.
//!
//! Both the disk result cache (`BELENOS_CACHE_DIR`/`--cache-dir`) and
//! the persistent trace store (`BELENOS_TRACE_DIR`/`--trace-dir`) grow
//! without bound; `stats` sizes them and `gc --max-bytes B` evicts
//! least-recently-written entries across *both* stores until at most
//! `B` bytes remain (in-flight write temps are never touched — see
//! [`belenos_runner::gc`]).

use super::{serve_cmd::store_dirs, Invocation};
use belenos_runner::gc;

/// `belenos cache <stats|gc> [--max-bytes B]`.
pub fn run(inv: &Invocation) -> Result<(), String> {
    match inv.positionals.get(1).map(String::as_str) {
        Some("stats") => stats(inv),
        Some("gc") => collect(inv),
        _ => Err("usage: belenos cache <stats|gc> [--max-bytes B]".into()),
    }
}

fn dirs_or_usage(inv: &Invocation) -> Result<Vec<std::path::PathBuf>, String> {
    let dirs = store_dirs(inv);
    if dirs.is_empty() {
        return Err(
            "cache: no stores configured — set --cache-dir/BELENOS_CACHE_DIR \
             and/or --trace-dir/BELENOS_TRACE_DIR"
                .into(),
        );
    }
    Ok(dirs)
}

fn stats(inv: &Invocation) -> Result<(), String> {
    let dirs = dirs_or_usage(inv)?;
    let mut total = gc::DirUsage::default();
    for dir in &dirs {
        let usage = gc::dir_usage(dir).map_err(|e| format!("cache: {}: {e}", dir.display()))?;
        println!(
            "{:<40} {:>8} file(s) {:>14} bytes",
            dir.display(),
            usage.files,
            usage.bytes
        );
        total.files += usage.files;
        total.bytes += usage.bytes;
    }
    println!(
        "{:<40} {:>8} file(s) {:>14} bytes",
        "total", total.files, total.bytes
    );
    Ok(())
}

fn collect(inv: &Invocation) -> Result<(), String> {
    let Some(max_bytes) = inv.max_bytes else {
        return Err("usage: belenos cache gc --max-bytes B (K/M/G suffixes ok)".into());
    };
    let dirs = dirs_or_usage(inv)?;
    let outcome = gc::gc_dirs(&dirs, max_bytes).map_err(|e| format!("cache gc: {e}"))?;
    println!(
        "deleted {} file(s), {} bytes; {} file(s), {} bytes remain (budget {max_bytes})",
        outcome.deleted_files,
        outcome.deleted_bytes,
        outcome.after().files,
        outcome.after().bytes
    );
    Ok(())
}

//! `belenos list`: what exists — workloads, analyses, backends, sets.

use super::Invocation;
use belenos::campaign::Analysis;
use belenos_uarch::ModelKind;

/// `belenos list`.
pub fn run(_inv: &Invocation) -> Result<(), String> {
    let vtune: Vec<String> = belenos_workloads::vtune_set()
        .iter()
        .map(|s| s.id.clone())
        .collect();
    let gem5: Vec<String> = belenos_workloads::gem5_set()
        .iter()
        .map(|s| s.id.clone())
        .collect();

    println!("WORKLOAD PRESETS (scenarios; see `belenos scenario list` for parameters)");
    for spec in &belenos_workloads::distinct_presets() {
        let mut sets = Vec::new();
        if belenos_workloads::catalog().iter().any(|s| s.id == spec.id) {
            sets.push("catalog");
        }
        if vtune.contains(&spec.id) {
            sets.push("vtune");
        }
        if gem5.contains(&spec.id) {
            sets.push("gem5");
        }
        println!(
            "  {:<4} {:<16} [{}]",
            spec.id,
            spec.category().name(),
            sets.join(",")
        );
    }

    println!("\nWORKLOAD SETS");
    println!("  paper    per-analysis paper sets (default)");
    println!(
        "  vtune    the VTune profiling set ({} workloads)",
        vtune.len()
    );
    println!(
        "  gem5     the gem5 sensitivity set ({} workloads)",
        gem5.len()
    );
    println!(
        "  catalog  the full Table I catalog ({} workloads)",
        belenos_workloads::catalog().len()
    );

    println!("\nANALYSES (use with `belenos figure <id>` or in a campaign spec)");
    for a in Analysis::ALL {
        println!("  {:<10} {}", a.id(), a.describe());
    }

    println!("\nBACKENDS (--model / BELENOS_MODEL)");
    for kind in ModelKind::ALL {
        let note = match kind {
            ModelKind::O3 => "cycle-level out-of-order (default, reference)",
            ModelKind::InOrder => "scalar in-order scoreboard (~10-20x faster)",
            ModelKind::Analytic => "port-pressure/MLP bound model (>=50x faster)",
        };
        println!("  {:<9} {note}", kind.label());
    }
    Ok(())
}

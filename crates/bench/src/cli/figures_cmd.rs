//! `belenos figure <id|all>` and `belenos table <1|2>`.
//!
//! Single-figure invocations reproduce the retired per-figure binaries
//! byte-for-byte at the default options; `figure all` reproduces the
//! retired `all_figures` campaign (same analyses, same order, shared
//! runner cache).

use super::{write_side_outputs, Format, Invocation};
use belenos::campaign::{Analysis, CampaignSpec};

/// Runs a prepared single-or-multi-analysis campaign and emits it in
/// the invocation's format(s).
pub(crate) fn emit_campaign(inv: &Invocation, spec: CampaignSpec) -> Result<(), String> {
    emit_campaign_with(inv, spec, &inv.runner(), |_| {})
}

/// [`emit_campaign`] against an explicit runner (a distributed
/// campaign installs its coordinator on it), with a decoration hook
/// applied to the finished report before any rendering — the
/// distributed path folds its merged cross-worker summary into the
/// telemetry roll-up there, keeping telemetry-off reports byte-
/// identical to single-process runs.
pub(crate) fn emit_campaign_with(
    inv: &Invocation,
    spec: CampaignSpec,
    runner: &belenos_runner::Runner,
    decorate: impl FnOnce(&mut belenos::campaign::CampaignReport),
) -> Result<(), String> {
    let campaign = spec.prepare().map_err(|e| e.to_string())?;
    let mut report = campaign.run(runner);
    decorate(&mut report);
    let report = report;
    match inv.format {
        Format::Text => print!("{}", report.to_text()),
        Format::Json => print!("{}", report.to_json()),
        Format::Csv => print!("{}", report.to_csv()),
    }
    if !report.failures().is_empty() {
        eprintln!(
            "belenos: {} analysis/analyses had a failed simulation point (see the \
             FIGURE FAILED markers)",
            report.failures().len()
        );
    }
    write_side_outputs(inv, || report.to_json(), || report.to_csv())?;
    Ok(())
}

fn single(inv: &Invocation, analysis: Analysis) -> CampaignSpec {
    CampaignSpec::new(analysis.id())
        .with_workloads(inv.workload_set())
        .with_options(inv.overrides().options())
        .with_analysis(analysis)
}

/// `belenos figure <id|all>`.
pub fn run_figure(inv: &Invocation) -> Result<(), String> {
    let Some(id) = inv.positionals.get(1) else {
        return Err("usage: belenos figure <id|all> (see `belenos list` for ids)".into());
    };
    if id == "all" {
        let spec = CampaignSpec::paper_campaign(inv.overrides().options())
            .with_workloads(inv.workload_set());
        emit_campaign(inv, spec)?;
        crate::print_run_summary();
        return Ok(());
    }
    let analysis = Analysis::parse(id)
        .ok_or_else(|| format!("unknown figure `{id}` (see `belenos list` for ids)"))?;
    emit_campaign(inv, single(inv, analysis))
}

/// `belenos table <1|2>`.
pub fn run_table(inv: &Invocation) -> Result<(), String> {
    let analysis = match inv.positionals.get(1).map(String::as_str) {
        Some("1") => Analysis::Table1,
        Some("2") => Analysis::Table2,
        _ => return Err("usage: belenos table <1|2>".into()),
    };
    emit_campaign(inv, single(inv, analysis))
}

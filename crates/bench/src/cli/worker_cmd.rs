//! `belenos worker` — join a distributed campaign as a worker process.
//!
//! Thin assembly over [`belenos_dist::run_worker`]: resolve the dist
//! directory and lease knobs, point the shared stores (result cache,
//! trace store) inside it unless the operator configured them
//! elsewhere, install the SIGTERM/SIGINT flag so a drain finishes the
//! in-flight job before exiting, and loop.

use super::Invocation;
use belenos_dist::{run_worker, DistConfig};
use belenos_serve::signal;
use std::time::SystemTime;

/// `belenos worker --dist-dir D [--name ID] [--lease-ttl S]
/// [--heartbeat S] [--idle-timeout S]`.
pub fn run(inv: &Invocation) -> Result<(), String> {
    let cfg = dist_config(inv, &worker_name(inv))?;
    // The shared stores default to living inside the dist dir so every
    // participant resolves identical cache keys to identical files; an
    // explicit --cache-dir/--trace-dir (or env) still wins.
    install_shared_stores(inv, &cfg);
    eprintln!(
        "belenos worker {}: board {} (lease-ttl {:.1}s, heartbeat {:.1}s)",
        cfg.worker,
        cfg.dir.display(),
        cfg.lease_ttl.as_secs_f64(),
        cfg.heartbeat.as_secs_f64()
    );
    let stop = signal::termination_flag();
    let summary = run_worker(&cfg, &stop, inv.idle_timeout)
        .map_err(|e| format!("worker: dist dir {}: {e}", cfg.dir.display()))?;
    eprintln!(
        "belenos worker {}: executed {} job(s) ({} stolen, {} failed, {:.2}s busy)",
        summary.worker,
        summary.executed,
        summary.stolen,
        summary.failed,
        summary.busy.as_secs_f64()
    );
    Ok(())
}

/// Resolves the dist directory (`--dist-dir` wins over
/// `BELENOS_DIST_DIR`) and lease knobs into a [`DistConfig`].
///
/// # Errors
///
/// A usage-shaped message when no dist directory is configured.
pub(crate) fn dist_config(inv: &Invocation, worker: &str) -> Result<DistConfig, String> {
    let dir = dist_dir(inv).ok_or(
        "usage: a dist directory is required — pass --dist-dir PATH or set BELENOS_DIST_DIR",
    )?;
    let mut cfg = DistConfig::new(dir, worker);
    if let Some(ttl) = inv.lease_ttl {
        cfg = cfg.with_lease_ttl(ttl);
    }
    if let Some(hb) = inv.heartbeat {
        cfg = cfg.with_heartbeat(hb);
    }
    Ok(cfg)
}

/// The configured dist directory, if any (flag wins over environment).
pub(crate) fn dist_dir(inv: &Invocation) -> Option<String> {
    inv.dist_dir.clone().or_else(|| {
        std::env::var("BELENOS_DIST_DIR")
            .ok()
            .filter(|d| !d.is_empty())
    })
}

/// Points the process-wide result cache and trace store into the dist
/// directory unless the operator already chose locations (flags were
/// installed by `cli::main` before dispatch; env counts as chosen).
pub(crate) fn install_shared_stores(inv: &Invocation, cfg: &DistConfig) {
    let unset = |var: &str| std::env::var(var).map(|v| v.is_empty()).unwrap_or(true);
    if inv.cache_dir.is_none() && unset("BELENOS_CACHE_DIR") {
        std::env::set_var("BELENOS_CACHE_DIR", cfg.cache_dir());
    }
    if inv.trace_dir.is_none() && unset("BELENOS_TRACE_DIR") {
        belenos::trace_store::install_dir(cfg.traces_dir());
    }
}

/// `--name`, or a name unique enough for one shared board: pid plus a
/// clock-derived suffix (two workers launched the same nanosecond on
/// different hosts still differ by pid).
pub(crate) fn worker_name(inv: &Invocation) -> String {
    if let Some(name) = &inv.worker_name {
        return name.clone();
    }
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    format!("w{}-{:04x}", std::process::id(), nanos & 0xffff)
}

//! `belenos serve` — run the long-running simulation server.
//!
//! Thin assembly over [`belenos_serve::Server`]: resolve the listen
//! address (`--addr` wins over `BELENOS_SERVE_ADDR`), size the pool and
//! queue, wire the optional cache GC budget to the disk cache and trace
//! store directories, install the SIGTERM/SIGINT watcher, and block in
//! the accept loop until a graceful drain completes.

use super::Invocation;
use belenos_serve::{signal, ServeConfig, Server};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// `belenos serve [--addr A] [--serve-workers N] [--queue-depth N]
/// [--op-ceiling N] [--cache-budget B]`.
pub fn run(inv: &Invocation) -> Result<(), String> {
    let mut config = ServeConfig::default();
    if let Ok(addr) = std::env::var("BELENOS_SERVE_ADDR") {
        if !addr.is_empty() {
            config.addr = addr;
        }
    }
    if let Some(addr) = &inv.addr {
        config.addr = addr.clone();
    }
    if let Some(workers) = inv.serve_workers {
        config.workers = workers;
    }
    if let Some(depth) = inv.queue_depth {
        config.queue_depth = depth;
    }
    if let Some(ceiling) = inv.op_ceiling {
        config.op_budget_ceiling = ceiling;
    }
    if let Some(jobs) = inv.overrides().jobs {
        config.runner_threads = jobs;
    }
    if let Some(budget) = inv.cache_budget {
        let dirs = store_dirs(inv);
        if budget > 0 && dirs.is_empty() {
            return Err(
                "--cache-budget: nothing to collect — set --cache-dir/BELENOS_CACHE_DIR \
                 and/or --trace-dir/BELENOS_TRACE_DIR"
                    .into(),
            );
        }
        config.cache_budget_bytes = budget;
        config.gc_dirs = dirs;
    }
    let server = Server::bind(config).map_err(|e| format!("serve: could not bind: {e}"))?;
    let handle = server.handle();
    eprintln!("belenos serve: listening on http://{}", server.local_addr());

    // SIGTERM/SIGINT → graceful drain: the handler just flips a flag;
    // this watcher turns the flag into a shutdown request.
    let term = signal::termination_flag();
    let watcher = handle.clone();
    std::thread::Builder::new()
        .name("serve-signals".into())
        .spawn(move || loop {
            if term.load(Ordering::SeqCst) {
                eprintln!("belenos serve: termination signal, draining");
                watcher.shutdown();
                return;
            }
            if watcher.is_shutdown() {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        })
        .map_err(|e| format!("serve: could not spawn signal watcher: {e}"))?;

    server.run().map_err(|e| format!("serve: {e}"))?;
    eprintln!("belenos serve: drained, exiting");
    Ok(())
}

/// The disk stores a cache budget governs: the result cache and the
/// trace store, whichever are configured (flags win over environment).
pub(crate) fn store_dirs(inv: &Invocation) -> Vec<PathBuf> {
    let mut dirs = Vec::new();
    let cache = inv
        .cache_dir
        .clone()
        .or_else(|| std::env::var("BELENOS_CACHE_DIR").ok());
    if let Some(dir) = cache.filter(|d| !d.is_empty()) {
        dirs.push(PathBuf::from(dir));
    }
    let trace = inv
        .trace_dir
        .clone()
        .or_else(|| std::env::var("BELENOS_TRACE_DIR").ok());
    if let Some(dir) = trace.filter(|d| !d.is_empty()) {
        dirs.push(PathBuf::from(dir));
    }
    dirs
}

//! `belenos bench`: the performance-regression gate.
//!
//! * `bench capture [path]` runs a fixed, small simulation benchmark
//!   (workloads `pd` + `co`, o3 backend, 60k-op budget, best of 7
//!   runs × 3 attempts), scores the host with the [`crate::calibrate`]
//!   loop, and
//!   writes the result as a baseline document (default
//!   `BENCH_baseline.json` — commit it).
//! * `bench compare [path]` re-measures the same benchmark and compares
//!   calibration-normalized simulated MIPS against the committed
//!   baseline, failing (non-zero exit) on any regression beyond 15% —
//!   or any *improvement* beyond [`crate::IMPROVEMENT_LIMIT`], which
//!   means the baseline went stale and must be deliberately recaptured
//!   (`bench capture --note <why>`) before it can mask real
//!   regressions.
//!
//! The calibration loop cancels raw host speed out of the comparison,
//! so one committed baseline gates every machine: only code slowdowns
//! move the normalized ratio. `BELENOS_BENCH_HANDICAP=<factor>`
//! multiplies measured wall times (dividing MIPS) — an injectable fake
//! slowdown for testing that the gate actually fails, used by CI's
//! negative check.

use super::Invocation;
use crate::{
    calibrate, compare_baselines, emit_bench_json, BenchBaseline, BenchRecord, CompareReport,
};
use belenos::campaign::{PaperSet, WorkloadSet};
use belenos::experiment::Experiment;
use belenos::trace_store::TraceStore;
use belenos_uarch::CoreConfig;

/// Allowed normalized-MIPS regression before the gate fails.
const THRESHOLD: f64 = 0.15;
/// Fixed bench shape: changing any of these invalidates committed
/// baselines, so bump them only together with `BENCH_baseline.json`.
const WORKLOADS: [&str; 2] = ["pd", "co"];
const MAX_OPS: usize = 60_000;
const RUNS: usize = 7;
/// Prepare runs are whole FE solves, so best-of fewer runs than the
/// (much cheaper) simulation bench.
const PREPARE_RUNS: usize = 3;
const ATTEMPTS: usize = 3;
const DEFAULT_PATH: &str = "BENCH_baseline.json";

/// Measures the fixed benchmark: best-of-`RUNS` wall time per
/// workload under the o3 baseline config, as calibrated records.
fn measure() -> Result<BenchBaseline, String> {
    let handicap = std::env::var("BELENOS_BENCH_HANDICAP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&f| f > 0.0 && f.is_finite())
        .unwrap_or(1.0);
    let cfg = CoreConfig::gem5_baseline();
    let mut records = Vec::new();
    for id in WORKLOADS {
        let spec = belenos_workloads::by_id(id).ok_or_else(|| format!("unknown preset `{id}`"))?;
        let exp = Experiment::prepare(&spec).map_err(|e| format!("prepare {id}: {e}"))?;
        // Warm once (trace memo, allocator) so the measured runs time
        // simulation, not first-touch setup.
        let stats = exp.simulate(&cfg, MAX_OPS);
        let mut walls: Vec<f64> = (0..RUNS)
            .map(|_| {
                let t0 = std::time::Instant::now();
                let s = exp.simulate(&cfg, MAX_OPS);
                assert_eq!(s, stats, "fixed bench must be deterministic");
                t0.elapsed().as_secs_f64()
            })
            .collect();
        // Best-of-N, not median: on a loaded host, interference only
        // ever slows a run down, so the minimum is the least noisy
        // estimate of what the code actually costs.
        walls.sort_by(|a, b| a.total_cmp(b));
        let wall_s = walls[0] * handicap;
        records.push(BenchRecord {
            workload: id.to_string(),
            backend: "o3".to_string(),
            wall_s,
            ipc: stats.ipc(),
            mips: stats.committed_ops as f64 / wall_s.max(1e-9) / 1e6,
        });
    }
    // Prepare-phase records: the cold wall (full FE solve, no store) and
    // the warm wall (content-addressed trace-store hit) per workload.
    // `mips` holds phase-log kernel calls per second — the unit doesn't
    // matter to the gate, which compares calibration-normalized ratios.
    let store_dir =
        std::env::temp_dir().join(format!("belenos-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = TraceStore::at(&store_dir);
    for id in WORKLOADS {
        let spec = belenos_workloads::by_id(id).ok_or_else(|| format!("unknown preset `{id}`"))?;
        let (cold, warm, calls) = prepare_walls(&spec, &store)?;
        for (backend, wall) in [("prepare", cold), ("prepare-warm", warm)] {
            let wall_s = wall * handicap;
            records.push(BenchRecord {
                workload: id.to_string(),
                backend: backend.to_string(),
                wall_s,
                ipc: 0.0,
                mips: calls / wall_s.max(1e-9),
            });
        }
    }
    let _ = std::fs::remove_dir_all(&store_dir);
    Ok(BenchBaseline {
        calibration: calibrate(),
        records,
        note: None,
    })
}

/// Best-of-[`PREPARE_RUNS`] cold (storeless) and warm (store-hit)
/// prepare walls for one scenario, plus its phase-log kernel-call count.
/// The store entry is populated by a separate untimed prepare, and the
/// warm path is verified to actually reproduce the cold trace.
fn prepare_walls(
    spec: &belenos_workloads::ScenarioSpec,
    store: &TraceStore,
) -> Result<(f64, f64, f64), String> {
    let id = &spec.id;
    let populate = Experiment::prepare_with_store(spec, Some(store))
        .map_err(|e| format!("prepare {id}: {e}"))?;
    let entry = store.entry_path(spec.stable_digest(), &spec.expand_config());
    if !entry.exists() {
        return Err(format!(
            "prepare bench: store entry for `{id}` was not written ({})",
            entry.display()
        ));
    }
    let best = |store: Option<&TraceStore>| -> Result<f64, String> {
        let mut walls = Vec::with_capacity(PREPARE_RUNS);
        for _ in 0..PREPARE_RUNS {
            let t0 = std::time::Instant::now();
            let exp =
                Experiment::prepare_with_store(spec, store).map_err(|e| format!("{id}: {e}"))?;
            walls.push(t0.elapsed().as_secs_f64());
            if exp.trace_fingerprint() != populate.trace_fingerprint() {
                return Err(format!(
                    "prepare bench: `{id}` replayed a different trace fingerprint"
                ));
            }
        }
        walls.sort_by(|a, b| a.total_cmp(b));
        Ok(walls[0])
    };
    let cold = best(None)?;
    let warm = best(Some(store))?;
    Ok((cold, warm, populate.log().len() as f64))
}

/// Runs [`measure`] `attempts` times and keeps, per record, the fastest
/// observation (and the best calibration score).
///
/// Virtualized hosts show multi-second "slow phases" (host memory or
/// scheduler contention) that outlast a whole best-of-`RUNS` batch; a
/// genuine code regression slows *every* attempt, so taking the best
/// across well-separated attempts sheds the noise without weakening
/// the gate.
fn measure_best(attempts: usize) -> Result<BenchBaseline, String> {
    let mut best = measure()?;
    for _ in 1..attempts {
        let cur = measure()?;
        best.calibration = best.calibration.max(cur.calibration);
        for (b, c) in best.records.iter_mut().zip(cur.records) {
            if c.mips > b.mips {
                *b = c;
            }
        }
    }
    Ok(best)
}

fn path_arg(inv: &Invocation) -> String {
    inv.positionals
        .get(2)
        .cloned()
        .unwrap_or_else(|| DEFAULT_PATH.to_string())
}

/// `belenos bench <capture|compare> [path]`.
pub fn run(inv: &Invocation) -> Result<(), String> {
    match inv.positionals.get(1).map(String::as_str) {
        Some("capture") => {
            let mut baseline = measure_best(ATTEMPTS)?;
            baseline.note = inv.note.clone();
            let path = path_arg(inv);
            std::fs::write(&path, baseline.to_json())
                .map_err(|e| format!("could not write {path}: {e}"))?;
            eprintln!(
                "wrote {path} (calibration {:.1} Mops/s)",
                baseline.calibration
            );
            for r in &baseline.records {
                println!("{} {}: {:.3} simulated MIPS", r.workload, r.backend, r.mips);
            }
            Ok(())
        }
        Some("compare") => {
            let path = path_arg(inv);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("could not read baseline {path}: {e}"))?;
            let baseline =
                BenchBaseline::parse(&text).map_err(|e| format!("baseline {path}: {e}"))?;
            let current = measure_best(ATTEMPTS)?;
            emit_bench_json("perf_gate", &current.records);
            let CompareReport { lines, passed } = compare_baselines(&baseline, &current, THRESHOLD);
            println!(
                "perf gate vs {path} (calibration {:.1} -> {:.1} Mops/s, threshold {:.0}%)",
                baseline.calibration,
                current.calibration,
                THRESHOLD * 100.0
            );
            for line in &lines {
                println!("  {line}");
            }
            if passed {
                println!("perf gate: PASS");
                Ok(())
            } else {
                Err("perf gate: simulated-MIPS regression beyond threshold".to_string())
            }
        }
        Some("prepare") => {
            // Cold-vs-warm prepare wall over a preset set (default: the
            // gem5 set, the presets every sensitivity sweep re-prepares).
            let specs = inv
                .workloads
                .clone()
                .unwrap_or(WorkloadSet::Gem5)
                .resolve(PaperSet::Gem5);
            if specs.is_empty() {
                return Err("bench prepare: the workload set resolved to no scenarios".into());
            }
            let store_dir =
                std::env::temp_dir().join(format!("belenos-bench-prepare-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&store_dir);
            let store = TraceStore::at(&store_dir);
            let mut records = Vec::new();
            let (mut total_cold, mut total_warm) = (0.0f64, 0.0f64);
            for spec in &specs {
                let (cold, warm, calls) = prepare_walls(spec, &store)?;
                total_cold += cold;
                total_warm += warm;
                println!(
                    "{:>12}: cold {:>9.2} ms, warm {:>9.3} ms ({:>7.1}x)",
                    spec.id,
                    cold * 1e3,
                    warm * 1e3,
                    cold / warm.max(1e-9)
                );
                for (backend, wall) in [("prepare", cold), ("prepare-warm", warm)] {
                    records.push(BenchRecord {
                        workload: spec.id.clone(),
                        backend: backend.to_string(),
                        wall_s: wall,
                        ipc: 0.0,
                        mips: calls / wall.max(1e-9),
                    });
                }
            }
            let _ = std::fs::remove_dir_all(&store_dir);
            println!(
                "prepare wall: {:.2} s cold, {:.3} s warm — {:.1}x with a warm trace store",
                total_cold,
                total_warm,
                total_cold / total_warm.max(1e-9)
            );
            emit_bench_json("prepare", &records);
            Ok(())
        }
        _ => Err("usage: belenos bench <capture|compare|prepare> [baseline.json]".to_string()),
    }
}

//! `belenos campaign <run|example|validate>`.
//!
//! Campaign specs are data: `run` executes a JSON spec through the
//! cache-aware runner, `example` prints a template to start from, and
//! `validate` checks a spec without simulating anything.
//!
//! Precedence inside `run`: the spec's own `options` are authoritative
//! over the environment (a spec is a reproducible artifact), but
//! explicit CLI flags override the spec — `--max-ops 2000` turns any
//! campaign into a smoke run.

use super::{figures_cmd, worker_cmd, Invocation};
use belenos::campaign::CampaignSpec;
use belenos::env::DEFAULT_MAX_OPS;
use belenos::SimOptions;
use belenos_dist::Coordinator;
use std::sync::Arc;

/// `belenos campaign run|example|validate ...`.
pub fn run(inv: &Invocation) -> Result<(), String> {
    match inv.positionals.get(1).map(String::as_str) {
        Some("run") => run_spec(inv),
        Some("example") => {
            print!("{}", example_spec().to_json());
            Ok(())
        }
        Some("validate") => {
            let spec = load_spec(inv)?;
            println!(
                "spec `{}` is valid: {} analysis/analyses on workload set `{}`",
                spec.name,
                spec.analyses.len(),
                spec.workloads.label()
            );
            Ok(())
        }
        _ => Err("usage: belenos campaign <run|example|validate> [spec.json]".into()),
    }
}

fn load_spec(inv: &Invocation) -> Result<CampaignSpec, String> {
    let Some(path) = inv.positionals.get(2) else {
        return Err("usage: belenos campaign run|validate <spec.json>".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))?;
    CampaignSpec::parse(&text).map_err(|e| e.to_string())
}

fn run_spec(inv: &Invocation) -> Result<(), String> {
    let mut spec = load_spec(inv)?;
    // CLI flags override the spec; the environment does not.
    spec.options = inv.flags.apply(spec.options);
    if let Some(workloads) = &inv.workloads {
        spec.workloads = workloads.clone();
    }
    if inv.distributed {
        run_spec_distributed(inv, spec)?;
    } else {
        figures_cmd::emit_campaign(inv, spec)?;
    }
    crate::print_run_summary();
    Ok(())
}

/// `campaign run --distributed`: same campaign, but the cache-miss
/// jobs route through the shared job board, where in-process workers
/// and any number of external `belenos worker` processes claim them.
/// Results are bit-identical to a single-process run — the report only
/// gains a `distributed` roll-up section when telemetry is on.
fn run_spec_distributed(inv: &Invocation, spec: CampaignSpec) -> Result<(), String> {
    let cfg = worker_cmd::dist_config(inv, &worker_cmd::worker_name(inv))?;
    // The shared stores move into the dist dir (unless explicitly
    // configured) so this coordinator, its local workers, and every
    // external worker resolve the same cache keys to the same files —
    // that is what makes kill -9 + rerun a pure cache replay.
    worker_cmd::install_shared_stores(inv, &cfg);
    let coordinator =
        Arc::new(Coordinator::new(cfg).with_local_workers(inv.local_workers.unwrap_or(1)));
    let runner = inv.runner().with_distributor(Arc::clone(&coordinator) as _);
    let cache = runner.cache().clone();
    figures_cmd::emit_campaign_with(inv, spec, &runner, |report| {
        if let Some(rollup) = report.rollup.as_mut() {
            coordinator.append_rollup(rollup, &cache.stats());
        }
    })?;
    coordinator.print_summary();
    Ok(())
}

/// The template `campaign example` prints: the full paper campaign at
/// the historical default budget.
pub fn example_spec() -> CampaignSpec {
    CampaignSpec::paper_campaign(SimOptions::new(DEFAULT_MAX_OPS))
}

//! `belenos campaign <run|example|validate>`.
//!
//! Campaign specs are data: `run` executes a JSON spec through the
//! cache-aware runner, `example` prints a template to start from, and
//! `validate` checks a spec without simulating anything.
//!
//! Precedence inside `run`: the spec's own `options` are authoritative
//! over the environment (a spec is a reproducible artifact), but
//! explicit CLI flags override the spec — `--max-ops 2000` turns any
//! campaign into a smoke run.

use super::{figures_cmd, Invocation};
use belenos::campaign::CampaignSpec;
use belenos::env::DEFAULT_MAX_OPS;
use belenos::SimOptions;

/// `belenos campaign run|example|validate ...`.
pub fn run(inv: &Invocation) -> Result<(), String> {
    match inv.positionals.get(1).map(String::as_str) {
        Some("run") => run_spec(inv),
        Some("example") => {
            print!("{}", example_spec().to_json());
            Ok(())
        }
        Some("validate") => {
            let spec = load_spec(inv)?;
            println!(
                "spec `{}` is valid: {} analysis/analyses on workload set `{}`",
                spec.name,
                spec.analyses.len(),
                spec.workloads.label()
            );
            Ok(())
        }
        _ => Err("usage: belenos campaign <run|example|validate> [spec.json]".into()),
    }
}

fn load_spec(inv: &Invocation) -> Result<CampaignSpec, String> {
    let Some(path) = inv.positionals.get(2) else {
        return Err("usage: belenos campaign run|validate <spec.json>".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))?;
    CampaignSpec::parse(&text).map_err(|e| e.to_string())
}

fn run_spec(inv: &Invocation) -> Result<(), String> {
    let mut spec = load_spec(inv)?;
    // CLI flags override the spec; the environment does not.
    spec.options = inv.flags.apply(spec.options);
    if let Some(workloads) = &inv.workloads {
        spec.workloads = workloads.clone();
    }
    figures_cmd::emit_campaign(inv, spec)?;
    crate::print_run_summary();
    Ok(())
}

/// The template `campaign example` prints: the full paper campaign at
/// the historical default budget.
pub fn example_spec() -> CampaignSpec {
    CampaignSpec::paper_campaign(SimOptions::new(DEFAULT_MAX_OPS))
}

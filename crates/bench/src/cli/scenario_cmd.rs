//! `belenos scenario <list|show|validate|run>`.
//!
//! Scenarios are data: `list` prints every catalog preset with its
//! family and parameters, `show` prints one scenario's fully explicit
//! JSON normal form (a preset id or a JSON file), `validate` checks a
//! scenario document without building anything, and `run` takes
//! scenarios — presets or off-catalog JSON definitions — end to end:
//! validate → build → solve → simulate through the cache-aware runner →
//! structured report.

use super::{write_side_outputs, Format, Invocation};
use belenos::experiment::Experiment;
use belenos::figures::{scenario_row, SCENARIO_COLUMNS};
use belenos::report::Report;
use belenos_json::{FromJson, Json, ToJson};
use belenos_runner::{JobSpec, RunPlan};
use belenos_uarch::CoreConfig;
use belenos_workloads::{by_id, distinct_presets, ScenarioSpec};

/// `belenos scenario <list|show|validate|run> ...`.
pub fn run(inv: &Invocation) -> Result<(), String> {
    match inv.positionals.get(1).map(String::as_str) {
        Some("list") => list(),
        Some("show") => show(inv),
        Some("validate") => validate(inv),
        Some("run") => run_scenarios(inv),
        _ => Err("usage: belenos scenario <list|show|validate|run> [id|file.json]".into()),
    }
}

fn list() -> Result<(), String> {
    println!("SCENARIO PRESETS (each is a plain ScenarioSpec; `belenos scenario show <id>`)");
    println!(
        "  {:<5} {:<18} {:<6} {:<7} {:<18} digest",
        "id", "family", "mesh", "steps", "knobs"
    );
    for spec in distinct_presets() {
        println!(
            "  {:<5} {:<18} {:<6} {:<7} bloat={:<2} sample={:<2} spin={:<4} {:016x}",
            spec.id,
            spec.family.label(),
            spec.mesh.resolution_label(),
            spec.stepping.steps,
            spec.expand.code_bloat,
            spec.expand.sample,
            spec.spin_scale,
            spec.stable_digest(),
        );
    }
    println!("\nFAMILIES (the `family` field of a scenario document)");
    for family in belenos_workloads::Family::all_canonical() {
        println!(
            "  {:<18} category {}",
            family.label(),
            family.category().name()
        );
    }
    Ok(())
}

/// Loads scenarios from a positional argument: a preset id, or a path to
/// a JSON document holding one scenario object or an array of them.
fn load_scenarios(arg: &str) -> Result<Vec<ScenarioSpec>, String> {
    if let Some(spec) = by_id(arg) {
        return Ok(vec![spec]);
    }
    let text = std::fs::read_to_string(arg)
        .map_err(|e| format!("`{arg}` is neither a preset id nor a readable file: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{arg}: {e}"))?;
    let items: Vec<&Json> = match &json {
        Json::Arr(items) => items.iter().collect(),
        one => vec![one],
    };
    let mut specs: Vec<ScenarioSpec> = Vec::with_capacity(items.len());
    for item in items {
        let spec = ScenarioSpec::from_json(item).map_err(|e| format!("{arg}: {e}"))?;
        spec.validate().map_err(|e| format!("{arg}: {e}"))?;
        if specs.iter().any(|s| s.id == spec.id) {
            // Same rule as campaign workload lists: duplicate ids would
            // produce indistinguishable report rows.
            return Err(format!("{arg}: duplicate scenario id `{}`", spec.id));
        }
        specs.push(spec);
    }
    if specs.is_empty() {
        return Err(format!("{arg}: the document lists no scenarios"));
    }
    Ok(specs)
}

fn scenario_arg(inv: &Invocation) -> Result<&str, String> {
    inv.positionals
        .get(2)
        .map(String::as_str)
        .ok_or_else(|| "usage: belenos scenario show|validate|run <id|file.json>".into())
}

fn show(inv: &Invocation) -> Result<(), String> {
    let specs = load_scenarios(scenario_arg(inv)?)?;
    // One scenario prints as an object, several as an array — either way
    // the output is a single JSON document `scenario validate`/`run`
    // accept back unchanged.
    match specs.as_slice() {
        [one] => println!("{}", one.to_json()),
        many => println!(
            "{}",
            Json::Arr(many.iter().map(ToJson::to_json).collect()).pretty()
        ),
    }
    Ok(())
}

fn validate(inv: &Invocation) -> Result<(), String> {
    let arg = scenario_arg(inv)?;
    let specs = load_scenarios(arg)?;
    for spec in &specs {
        println!(
            "scenario `{}` is valid: family {}, mesh {}, digest {:016x}",
            spec.id,
            spec.family.label(),
            spec.mesh.resolution_label(),
            spec.stable_digest()
        );
    }
    Ok(())
}

fn run_scenarios(inv: &Invocation) -> Result<(), String> {
    let specs = load_scenarios(scenario_arg(inv)?)?;
    let opts = inv.overrides().options();
    eprintln!("solving {} scenario model(s)...", specs.len());
    let exps: Vec<Experiment> = specs
        .iter()
        .map(|s| Experiment::prepare(s).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let mut plan = RunPlan::new();
    for w in 0..exps.len() {
        plan.push(
            JobSpec::new(
                w,
                "baseline",
                opts.configure(CoreConfig::gem5_baseline()),
                opts.max_ops,
            )
            .with_sampling(opts.sampling.clone()),
        );
    }
    let results = inv.runner().run(&exps, &plan);

    let mut report = Report::new("scenario_run");
    let s = report.section("Scenario runs (gem5 baseline config)", &SCENARIO_COLUMNS);
    let mut failed = 0usize;
    for (exp, r) in exps.iter().zip(&results) {
        if let Some(e) = &r.error {
            eprintln!("SIMULATION FAILED: {e}");
            failed += 1;
            continue;
        }
        s.row(scenario_row(exp, &r.stats));
    }
    match inv.format {
        Format::Text => print!("{}", report.to_text()),
        Format::Json => print!("{}", report.to_json()),
        Format::Csv => print!("{}", report.to_csv()),
    }
    write_side_outputs(inv, || report.to_json(), || report.to_csv())?;
    crate::print_run_summary();
    if failed > 0 {
        return Err(format!("{failed} scenario simulation(s) failed"));
    }
    Ok(())
}

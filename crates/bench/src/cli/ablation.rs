//! `belenos ablation <rcm|rob-iq>`.
//!
//! * `rcm` — fill-reducing-ordering ablation: how much RCM matters for
//!   factorization fill and bandwidth on an anatomically shuffled mesh
//!   (the cache-locality lever behind the paper's recommendation that
//!   solvers be reordering-aware).
//! * `rob-iq` — the §IV-C4 instruction-window ablation, as a regular
//!   campaign analysis (also available as `belenos figure rob_iq`).

use super::{figures_cmd, Invocation};
use belenos::campaign::{Analysis, CampaignSpec};
use belenos_fem::assembly::build_pattern;
use belenos_fem::mesh::Mesh;
use belenos_sparse::reorder::rcm;
use belenos_sparse::solver::ldl::SymbolicLdl;
use belenos_sparse::{CooMatrix, CsrMatrix};

fn laplacian_like(pattern: &belenos_sparse::CsrPattern) -> CsrMatrix {
    let n = pattern.nrows();
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        let row = pattern.row(r);
        coo.push(r, r, row.len() as f64 + 1.0);
        for &c in row {
            if c as usize != r {
                coo.push(r, c as usize, -1.0);
            }
        }
    }
    coo.to_csr()
}

fn run_rcm() -> Result<(), String> {
    println!("RCM reordering ablation (shuffled anatomical numbering)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10}",
        "mesh", "bw (orig)", "bw (rcm)", "fill(orig)", "fill(rcm)"
    );
    for (label, nx) in [("box4", 4usize), ("box6", 6), ("box8", 8)] {
        let mut mesh = Mesh::box_hex(nx, nx, nx, 1.0, 1.0, 1.0);
        mesh.shuffle_nodes(99);
        let pattern = build_pattern(&mesh, 1);
        let a = laplacian_like(&pattern);
        let bw0 = a.pattern().bandwidth();
        let sym0 = SymbolicLdl::analyze(&a).map_err(|e| format!("symbolic LDL: {e:?}"))?;
        let p = rcm(a.pattern());
        let b = p.apply_matrix(&a).map_err(|e| format!("permute: {e:?}"))?;
        let bw1 = b.pattern().bandwidth();
        let sym1 = SymbolicLdl::analyze(&b).map_err(|e| format!("symbolic LDL: {e:?}"))?;
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>10}",
            label,
            bw0,
            bw1,
            sym0.l_nnz(),
            sym1.l_nnz()
        );
    }
    println!("\nLower bandwidth/fill = better cache locality in factor sweeps.");
    Ok(())
}

/// `belenos ablation <rcm|rob-iq>`.
pub fn run(inv: &Invocation) -> Result<(), String> {
    match inv.positionals.get(1).map(String::as_str) {
        Some("rcm") => run_rcm(),
        Some("rob-iq" | "rob_iq") => {
            let spec = CampaignSpec::new("rob_iq")
                .with_workloads(inv.workload_set())
                .with_options(inv.overrides().options())
                .with_analysis(Analysis::RobIq);
            figures_cmd::emit_campaign(inv, spec)
        }
        _ => Err("usage: belenos ablation <rcm|rob-iq>".into()),
    }
}

//! Minimal property-testing shim, API-compatible with the subset of
//! [proptest](https://crates.io/crates/proptest) used by this workspace's
//! test suites.
//!
//! The build environment has no access to external crates, so this
//! in-repo stand-in supplies the pieces the tests need: the
//! [`proptest!`] macro, range / tuple / vec strategies, [`any`],
//! `prop_map`, and the `prop_assert*` macros. Sampling is a deterministic
//! splitmix64 stream seeded from the test name, so failures reproduce
//! exactly across runs; there is no shrinking.

use std::ops::Range;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` samples.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a of the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. Mirrors proptest's `Strategy` minus shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

/// A constant strategy (always yields a clone of its value).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary {
    /// The strategy type [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range boolean strategy.
#[derive(Debug, Clone, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_int {
    ($($t:ty => $any:ident),*) => {$(
        /// Full-range integer strategy.
        #[derive(Debug, Clone, Default)]
        pub struct $any;

        impl Strategy for $any {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = $any;

            fn arbitrary() -> $any {
                $any
            }
        }
    )*};
}

arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize);

/// The canonical strategy for `A` (`any::<bool>()`, ...).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Length specification for collection strategies: a fixed size or a
    /// half-open range, as in proptest's `SizeRange`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy for `Vec`s with sampled length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// `Vec` strategy: each element from `elem`, length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start < self.len.end {
                self.len.start + (rng.next_u64() as usize) % (self.len.end - self.len.start)
            } else {
                self.len.start
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines `#[test]` functions that run their body over sampled inputs.
///
/// Supports the `proptest!` surface this workspace uses: an optional
/// `#![proptest_config(...)]` inner attribute followed by `#[test]`
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
        $(
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for _ in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current sampled case when its precondition fails.
///
/// Expands to `continue`, so it is only usable directly inside a
/// [`proptest!`] body (where the case loop encloses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let u = crate::Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&u));
            let f = crate::Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = crate::Strategy::sample(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let draw = || {
            let mut rng = crate::TestRng::from_name("fixed");
            let strat = prop::collection::vec((0usize..10, -1.0f64..1.0), 1..20);
            crate::Strategy::sample(&strat, &mut rng)
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn prop_map_transforms_samples() {
        let mut rng = crate::TestRng::from_name("map");
        let strat = (0usize..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = crate::Strategy::sample(&strat, &mut rng);
            assert_eq!(v % 2, 0);
            assert!(v < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(
            n in 1usize..50,
            pair in (0u32..4, any::<bool>()),
            xs in prop::collection::vec(-1.0f64..1.0, 0..8)
        ) {
            prop_assert!((1..50).contains(&n));
            prop_assert!(pair.0 < 4);
            prop_assume!(xs.len() != 3);
            prop_assert_ne!(xs.len(), 3);
        }
    }
}

//! # belenos-telemetry
//!
//! Structured observability for the Belenos stack: hierarchical spans
//! with wall-time, monotonic counters, gauges, and `warn`/`progress`
//! events, serialized as JSONL (one compact [`belenos_json`] object per
//! line) to a sink selected by `BELENOS_TELEMETRY=<path|stderr|off>`.
//! Like `belenos-json` and the proptest shim, the crate is std-only —
//! the build environment has no registry access, so the usual tracing
//! ecosystem is out of reach.
//!
//! ## Design
//!
//! * **Near-zero cost when disabled.** A [`Telemetry`] handle is an
//!   `Option<Arc<Sink>>`; every emit method begins with an `is_none`
//!   check and returns immediately, allocating nothing and touching no
//!   shared state. Simulation results are *never* affected either way —
//!   telemetry only observes, and the o3 digest-pin tests prove it.
//! * **Hierarchical spans.** [`Telemetry::span`] opens a span whose
//!   parent is the thread's current span (a thread-local), emits a
//!   `span_open` event, and returns a [`Span`] guard that emits
//!   `span_close` with the measured wall time on drop. The campaign
//!   layer produces the `campaign > analysis` levels, the runner the
//!   `job` level (parented explicitly across worker threads with
//!   [`Telemetry::span_at`]), and the experiment layer the `phase`
//!   level — nesting follows automatically.
//! * **One process-wide handle.** Layers that cannot thread a handle
//!   through their call graph (the `Simulate` trait, `ModelKind::from_env`)
//!   use [`global`]; the CLI [`install`]s the `--telemetry` selection
//!   before running a command.
//!
//! ## Event schema
//!
//! Every line is a JSON object with an `ev` discriminant and `t_s`
//! (seconds since the sink opened):
//!
//! | `ev`         | fields                                              |
//! |--------------|-----------------------------------------------------|
//! | `span_open`  | `id`, `parent` (0 = root), `name`, + caller fields  |
//! | `span_close` | `id`, `name`, `wall_s`, + caller fields             |
//! | `counter`    | `name`, `value` (integer), `span`, + caller fields  |
//! | `gauge`      | `name`, `value` (float), `span`, + caller fields    |
//! | `warn`       | `msg`                                               |
//! | `progress`   | `msg`, `span`                                       |

use belenos_json::Json;
use std::cell::Cell;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A field value attached to an event.
///
/// Conversions exist for the common primitives, so call sites write
/// `("jobs", plan.len().into())`.
#[derive(Debug, Clone)]
pub enum Value {
    /// An integer counter-like value.
    U64(u64),
    /// A floating-point measurement.
    F64(f64),
    /// A label.
    Str(String),
    /// A flag.
    Bool(bool),
}

impl Value {
    fn to_json(&self) -> Json {
        match self {
            Value::U64(n) => Json::Num(*n as f64),
            Value::F64(x) => Json::Num(*x),
            Value::Str(s) => Json::Str(s.clone()),
            Value::Bool(b) => Json::Bool(*b),
        }
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::U64(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::U64(n as u64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::F64(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

/// Where events go: a line-buffered writer behind a mutex (events from
/// worker threads interleave whole lines, never bytes).
enum Output {
    Stderr,
    File(std::fs::File),
    Buffer(Arc<Mutex<Vec<u8>>>),
    /// Each rendered line is handed (without its newline) to a callback
    /// — the serve layer's per-job event router. The callback runs under
    /// the sink lock, so it must not emit telemetry back into this sink.
    Callback(Box<dyn Fn(&str) + Send + Sync>),
}

struct Sink {
    out: Mutex<Output>,
    next_id: AtomicU64,
    start: Instant,
}

impl Sink {
    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().unwrap();
        // Sink failures must never break a run; drop the event instead.
        let _ = match &mut *out {
            Output::Stderr => writeln!(std::io::stderr(), "{line}"),
            Output::File(f) => writeln!(f, "{line}"),
            Output::Buffer(buf) => writeln!(buf.lock().unwrap(), "{line}"),
            Output::Callback(f) => {
                f(line);
                Ok(())
            }
        };
    }
}

impl std::fmt::Debug for Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sink").finish_non_exhaustive()
    }
}

thread_local! {
    /// The innermost open span on this thread (0 = none). New spans
    /// parent under it; [`Span`] guards maintain it as a stack.
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// A cheap, cloneable handle to the telemetry sink.
///
/// Disabled handles (the default) are a `None` and every method is a
/// no-op. The `quiet` flag distinguishes *explicitly* silenced telemetry
/// (`BELENOS_TELEMETRY=off`, which also suppresses the stderr fallback
/// of [`Telemetry::warn`]) from merely unconfigured telemetry.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<Sink>>,
    quiet: bool,
}

/// An in-memory event buffer for tests: read the emitted JSONL back
/// with [`TelemetryBuffer::contents`] / [`TelemetryBuffer::lines`].
#[derive(Debug, Clone)]
pub struct TelemetryBuffer(Arc<Mutex<Vec<u8>>>);

impl TelemetryBuffer {
    /// The raw JSONL text emitted so far.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
    }

    /// The emitted lines (one event each), in emission order.
    pub fn lines(&self) -> Vec<String> {
        self.contents().lines().map(str::to_string).collect()
    }
}

impl Telemetry {
    /// A disabled handle: every emit is a no-op, but [`Telemetry::warn`]
    /// still falls back to stderr (telemetry was not *asked* to be off).
    pub fn disabled() -> Telemetry {
        Telemetry {
            sink: None,
            quiet: false,
        }
    }

    /// An explicitly-off handle (`BELENOS_TELEMETRY=off`): every emit is
    /// a no-op *and* the stderr warning fallback is suppressed.
    pub fn off() -> Telemetry {
        Telemetry {
            sink: None,
            quiet: true,
        }
    }

    /// A handle writing JSONL events to stderr.
    pub fn to_stderr() -> Telemetry {
        Telemetry::with_output(Output::Stderr)
    }

    /// A handle appending JSONL events to the file at `path` (created or
    /// truncated).
    ///
    /// # Errors
    ///
    /// The I/O error message when the file cannot be created.
    pub fn to_path(path: &str) -> Result<Telemetry, String> {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("telemetry: could not create {path}: {e}"))?;
        Ok(Telemetry::with_output(Output::File(file)))
    }

    /// A handle writing into an in-memory buffer, plus the buffer —
    /// the test harness for span-nesting and round-trip assertions.
    pub fn to_buffer() -> (Telemetry, TelemetryBuffer) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let t = Telemetry::with_output(Output::Buffer(buf.clone()));
        (t, TelemetryBuffer(buf))
    }

    /// A handle delivering each rendered JSONL line (without its
    /// newline) to `f` — how the serve layer routes every event through
    /// its per-job dispatcher while the simulation stack keeps emitting
    /// through the ordinary [`global`] handle.
    ///
    /// `f` runs under the sink's line lock: lines arrive whole and in
    /// emission order, and `f` must not emit telemetry back into this
    /// same handle (forwarding to a *different* handle via
    /// [`Telemetry::emit_raw`] is fine).
    pub fn to_callback(f: impl Fn(&str) + Send + Sync + 'static) -> Telemetry {
        Telemetry::with_output(Output::Callback(Box::new(f)))
    }

    /// Writes an already-rendered JSONL event line verbatim (no-op when
    /// disabled). This is the fan-out primitive: a callback sink that
    /// also wants events in a file/stderr/buffer sink forwards each line
    /// here instead of re-rendering it.
    pub fn emit_raw(&self, line: &str) {
        if let Some(sink) = &self.sink {
            sink.write_line(line);
        }
    }

    fn with_output(out: Output) -> Telemetry {
        Telemetry {
            sink: Some(Arc::new(Sink {
                out: Mutex::new(out),
                next_id: AtomicU64::new(1),
                start: Instant::now(),
            })),
            quiet: false,
        }
    }

    /// Parses a sink selection: `off` (silent), `stderr`, or a file
    /// path. This is the `BELENOS_TELEMETRY` / `--telemetry` vocabulary.
    ///
    /// # Errors
    ///
    /// The I/O error message when a path sink cannot be created.
    pub fn parse(value: &str) -> Result<Telemetry, String> {
        match value.trim() {
            "" | "off" | "0" | "none" => Ok(Telemetry::off()),
            "stderr" => Ok(Telemetry::to_stderr()),
            path => Telemetry::to_path(path),
        }
    }

    /// The handle `BELENOS_TELEMETRY` selects: unset → disabled (warnings
    /// still reach stderr), `off` → fully silent, `stderr` or a path →
    /// enabled. An unusable path disables telemetry with a stderr note
    /// rather than failing the run.
    pub fn from_env() -> Telemetry {
        match std::env::var("BELENOS_TELEMETRY") {
            Ok(v) => Telemetry::parse(&v).unwrap_or_else(|e| {
                eprintln!("{e}; telemetry disabled");
                Telemetry::disabled()
            }),
            Err(_) => Telemetry::disabled(),
        }
    }

    /// True when events are actually recorded.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Opens a span named `name` under the thread's current span,
    /// emitting `span_open` with `fields`. The returned guard emits
    /// `span_close` with the measured wall time when dropped, and makes
    /// this span the thread's current one until then.
    ///
    /// Field keys must not reuse the reserved event keys (`ev`, `id`,
    /// `parent`, `name`, `t_s` — and `value`/`span` for counter/gauge
    /// events): a duplicate key makes the JSONL line ambiguous.
    pub fn span(&self, name: &str, fields: &[(&str, Value)]) -> Span {
        let parent = CURRENT_SPAN.with(Cell::get);
        self.span_at(parent, name, fields)
    }

    /// Opens a span under an explicit `parent` id — the cross-thread
    /// variant: the runner's worker threads parent their `job` spans
    /// under the batch span opened on the submitting thread.
    pub fn span_at(&self, parent: u64, name: &str, fields: &[(&str, Value)]) -> Span {
        let Some(sink) = &self.sink else {
            return Span {
                sink: None,
                id: 0,
                prev: 0,
                name: String::new(),
                start: Instant::now(),
            };
        };
        let id = sink.next_id.fetch_add(1, Ordering::Relaxed);
        let mut pairs = vec![
            ("ev", Json::Str("span_open".into())),
            ("id", Json::Num(id as f64)),
            ("parent", Json::Num(parent as f64)),
            ("name", Json::Str(name.to_string())),
            ("t_s", Json::Num(sink.start.elapsed().as_secs_f64())),
        ];
        pairs.extend(fields.iter().map(|(k, v)| (*k, v.to_json())));
        sink.write_line(&Json::obj(pairs).render());
        let prev = CURRENT_SPAN.with(|c| c.replace(id));
        Span {
            sink: Some(sink.clone()),
            id,
            prev,
            name: name.to_string(),
            start: Instant::now(),
        }
    }

    fn event(&self, ev: &str, name: &str, value: Json, fields: &[(&str, Value)]) {
        let Some(sink) = &self.sink else { return };
        let mut pairs = vec![
            ("ev", Json::Str(ev.to_string())),
            ("name", Json::Str(name.to_string())),
            ("value", value),
            ("span", Json::Num(CURRENT_SPAN.with(Cell::get) as f64)),
            ("t_s", Json::Num(sink.start.elapsed().as_secs_f64())),
        ];
        pairs.extend(fields.iter().map(|(k, v)| (*k, v.to_json())));
        sink.write_line(&Json::obj(pairs).render());
    }

    /// Emits a monotonic-counter observation (`value` is the amount
    /// counted by this observation, not a running total).
    pub fn counter(&self, name: &str, value: u64, fields: &[(&str, Value)]) {
        self.event("counter", name, Json::Num(value as f64), fields);
    }

    /// Emits a point-in-time gauge measurement.
    pub fn gauge(&self, name: &str, value: f64, fields: &[(&str, Value)]) {
        self.event("gauge", name, Json::Num(value), fields);
    }

    /// Emits a structured warning. With telemetry merely unconfigured the
    /// message falls back to stderr (misconfiguration must stay visible);
    /// `BELENOS_TELEMETRY=off` suppresses it entirely.
    pub fn warn(&self, msg: &str) {
        match &self.sink {
            Some(sink) => sink.write_line(
                &Json::obj(vec![
                    ("ev", Json::Str("warn".into())),
                    ("msg", Json::Str(msg.to_string())),
                    ("t_s", Json::Num(sink.start.elapsed().as_secs_f64())),
                ])
                .render(),
            ),
            None if !self.quiet => eprintln!("{msg}"),
            None => {}
        }
    }

    /// Emits a structured progress line (no-op unless enabled — stderr
    /// progress streaming stays the runner `progress` flag's business).
    pub fn progress(&self, msg: &str) {
        let Some(sink) = &self.sink else { return };
        sink.write_line(
            &Json::obj(vec![
                ("ev", Json::Str("progress".into())),
                ("msg", Json::Str(msg.to_string())),
                ("span", Json::Num(CURRENT_SPAN.with(Cell::get) as f64)),
                ("t_s", Json::Num(sink.start.elapsed().as_secs_f64())),
            ])
            .render(),
        );
    }
}

/// An open span. Dropping it emits `span_close` with the wall time and
/// restores the thread's previous current span.
#[derive(Debug)]
pub struct Span {
    sink: Option<Arc<Sink>>,
    id: u64,
    prev: u64,
    name: String,
    start: Instant,
}

impl Span {
    /// This span's id (0 when telemetry is disabled) — the explicit
    /// parent for [`Telemetry::span_at`] across threads.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(sink) = &self.sink else { return };
        sink.write_line(
            &Json::obj(vec![
                ("ev", Json::Str("span_close".into())),
                ("id", Json::Num(self.id as f64)),
                ("name", Json::Str(self.name.clone())),
                ("t_s", Json::Num(sink.start.elapsed().as_secs_f64())),
                ("wall_s", Json::Num(self.start.elapsed().as_secs_f64())),
            ])
            .render(),
        );
        CURRENT_SPAN.with(|c| {
            // Only restore if this span is still the innermost one on
            // this thread (guards dropped out of order, or across
            // threads, must not clobber an unrelated stack).
            if c.get() == self.id {
                c.set(self.prev);
            }
        });
    }
}

static GLOBAL: OnceLock<Mutex<Telemetry>> = OnceLock::new();

fn global_slot() -> &'static Mutex<Telemetry> {
    GLOBAL.get_or_init(|| Mutex::new(Telemetry::from_env()))
}

/// The process-wide telemetry handle, initialized from
/// `BELENOS_TELEMETRY` on first access. Layers that cannot thread a
/// handle through their call graph (the runner's `Simulate` trait, the
/// uarch env parser) emit through this.
pub fn global() -> Telemetry {
    global_slot().lock().unwrap().clone()
}

/// Replaces the process-wide handle (the CLI's `--telemetry` flag, test
/// buffer sinks), returning the previous one so tests can restore it.
pub fn install(t: Telemetry) -> Telemetry {
    std::mem::replace(&mut *global_slot().lock().unwrap(), t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_no_op() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        let span = t.span("campaign", &[("campaign", "x".into())]);
        assert_eq!(span.id(), 0);
        t.counter("hits", 3, &[]);
        t.gauge("mips", 1.5, &[]);
        t.progress("nothing happens");
        drop(span);
        // Off is also disabled, just additionally quiet for warn().
        assert!(!Telemetry::off().enabled());
    }

    #[test]
    fn spans_nest_and_every_line_parses() {
        let (t, buf) = Telemetry::to_buffer();
        {
            let campaign = t.span("campaign", &[("campaign", "smoke".into())]);
            let analysis = t.span("analysis", &[("analysis", "topdown".into())]);
            t.counter("cache_hits", 2, &[]);
            t.gauge("simulated_mips", 12.5, &[("workload", "pd".into())]);
            drop(analysis);
            drop(campaign);
        }
        let lines = buf.lines();
        assert_eq!(lines.len(), 6);
        let events: Vec<Json> = lines
            .iter()
            .map(|l| Json::parse(l).expect("every event line is valid JSON"))
            .collect();
        // Open order and parent chain: campaign is a root, analysis its
        // child, and the counter/gauge attach to the analysis span.
        let id = |e: &Json, k: &str| e.get(k).unwrap().as_f64().unwrap() as u64;
        assert_eq!(events[0].get("ev").unwrap().as_str(), Some("span_open"));
        assert_eq!(id(&events[0], "parent"), 0);
        assert_eq!(id(&events[1], "parent"), id(&events[0], "id"));
        assert_eq!(events[2].get("ev").unwrap().as_str(), Some("counter"));
        assert_eq!(id(&events[2], "span"), id(&events[1], "id"));
        assert_eq!(id(&events[3], "span"), id(&events[1], "id"));
        // Close order is inner-first, with non-negative wall times.
        assert_eq!(events[4].get("ev").unwrap().as_str(), Some("span_close"));
        assert_eq!(events[4].get("name").unwrap().as_str(), Some("analysis"));
        assert_eq!(events[5].get("name").unwrap().as_str(), Some("campaign"));
        assert!(events[4].get("wall_s").unwrap().as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn span_at_parents_across_threads() {
        let (t, buf) = Telemetry::to_buffer();
        let batch = t.span("batch", &[]);
        let batch_id = batch.id();
        std::thread::scope(|s| {
            s.spawn(|| {
                let job = t.span_at(batch_id, "job", &[("workload", "pd".into())]);
                // The worker's thread-local current is now the job span:
                // nested phase spans parent under it automatically.
                let phase = t.span("phase", &[("phase", "simulate".into())]);
                drop(phase);
                drop(job);
            });
        });
        drop(batch);
        let events: Vec<Json> = buf
            .lines()
            .iter()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        let id = |e: &Json, k: &str| e.get(k).unwrap().as_f64().unwrap() as u64;
        let job_open = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("job"))
            .unwrap();
        assert_eq!(id(job_open, "parent"), batch_id);
        let phase_open = events
            .iter()
            .find(|e| {
                e.get("ev").unwrap().as_str() == Some("span_open")
                    && e.get("name").unwrap().as_str() == Some("phase")
            })
            .unwrap();
        assert_eq!(id(phase_open, "parent"), id(job_open, "id"));
    }

    #[test]
    fn warn_goes_to_the_sink_when_enabled() {
        let (t, buf) = Telemetry::to_buffer();
        t.warn("BELENOS_MODEL=x86 not understood");
        let line = &buf.lines()[0];
        let e = Json::parse(line).unwrap();
        assert_eq!(e.get("ev").unwrap().as_str(), Some("warn"));
        assert!(e.get("msg").unwrap().as_str().unwrap().contains("x86"));
    }

    #[test]
    fn sink_values_parse() {
        assert!(!Telemetry::parse("off").unwrap().enabled());
        assert!(!Telemetry::parse("").unwrap().enabled());
        assert!(Telemetry::parse("stderr").unwrap().enabled());
        let dir = std::env::temp_dir().join("belenos-telemetry-test.jsonl");
        let t = Telemetry::parse(dir.to_str().unwrap()).unwrap();
        assert!(t.enabled());
        t.counter("c", 1, &[]);
        drop(t);
        let text = std::fs::read_to_string(&dir).unwrap();
        assert!(text.contains("\"counter\""));
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn callback_sink_sees_whole_lines_in_order() {
        let seen = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = seen.clone();
        let t = Telemetry::to_callback(move |line| sink.lock().unwrap().push(line.to_string()));
        assert!(t.enabled());
        let span = t.span("batch", &[("jobs", 2usize.into())]);
        t.counter("cache_hits", 1, &[]);
        drop(span);
        let lines = seen.lock().unwrap().clone();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let e = Json::parse(line).expect("callback lines are single JSON events");
            assert!(e.get("ev").is_some());
        }
        assert_eq!(
            Json::parse(&lines[1])
                .unwrap()
                .get("name")
                .unwrap()
                .as_str(),
            Some("cache_hits")
        );
    }

    #[test]
    fn emit_raw_forwards_lines_verbatim() {
        let (t, buf) = Telemetry::to_buffer();
        t.emit_raw(r#"{"ev":"counter","name":"x","value":1}"#);
        assert_eq!(buf.lines(), [r#"{"ev":"counter","name":"x","value":1}"#]);
        // Disabled handles stay no-ops.
        Telemetry::disabled().emit_raw("dropped");
    }

    #[test]
    fn progress_events_carry_the_message() {
        let (t, buf) = Telemetry::to_buffer();
        t.progress("runner: 1/2 simulated");
        let e = Json::parse(&buf.lines()[0]).unwrap();
        assert_eq!(e.get("ev").unwrap().as_str(), Some("progress"));
        assert_eq!(
            e.get("msg").unwrap().as_str(),
            Some("runner: 1/2 simulated")
        );
    }
}
